//! Property-based integration test: the §3.1 "Scale" bit-slice
//! construction, end to end through real platform delivery.
//!
//! For arbitrary group sizes and member choices, a user holding one value
//! of a group must decode exactly that value from the bit Treads the
//! platform delivers — and a user holding none must decode nothing.

use proptest::prelude::*;
use treads_repro::adplatform::attributes::{AttributeCatalog, AttributeSource};
use treads_repro::adplatform::auction::AuctionConfig;
use treads_repro::adplatform::profile::Gender;
use treads_repro::adplatform::{Platform, PlatformConfig};
use treads_repro::adsim_types::Money;
use treads_repro::treads::encoding::Encoding;
use treads_repro::treads::planner::{bits_needed, CampaignPlan};
use treads_repro::treads::provider::TransparencyProvider;
use treads_repro::treads::TreadClient;
use treads_repro::websim::extension::ExtensionLog;

/// Full pipeline: returns what the holder of `member_idx` (or nobody, if
/// `None`) decodes for the group.
fn run_group(m: usize, member_idx: Option<usize>, seed: u64) -> Option<String> {
    let mut catalog = AttributeCatalog::new();
    for i in 0..m {
        catalog.register(
            format!("Band {i}"),
            AttributeSource::Partner {
                broker: "NorthStar Data".into(),
            },
            Some("band".into()),
            0.1,
        );
    }
    let mut platform = Platform::new(
        PlatformConfig {
            seed,
            auction: AuctionConfig {
                competitor_rate: 0.0,
                ..AuctionConfig::default()
            },
            frequency_cap: 2,
            ..PlatformConfig::default()
        },
        catalog,
    );
    let mut provider =
        TransparencyProvider::register(&mut platform, "KYD", seed, Money::dollars(10))
            .expect("provider registers");
    let (page, audience) = provider
        .setup_page_optin(&mut platform)
        .expect("page opt-in");
    let user = platform.register_user(30, Gender::Unspecified, "Ohio", "43004");
    if let Some(idx) = member_idx {
        let id = platform
            .attributes
            .id_of(&format!("Band {idx}"))
            .expect("band");
        platform.profiles.grant_attribute(user, id).expect("user");
    }
    platform.user_likes_page(user, page).expect("like");

    let plan = CampaignPlan::group_bits_in_ad("bits", "band", m, Encoding::CodebookToken);
    assert_eq!(plan.len(), bits_needed(m) as usize);
    provider
        .run_plan(&mut platform, &plan, audience)
        .expect("plan runs");

    let mut log = ExtensionLog::for_user(user);
    // Enough opportunities for every bit Tread (≤ bits * freq-cap).
    for _ in 0..(2 * bits_needed(m) as usize + 4) {
        if let Ok(treads_repro::adplatform::auction::AuctionOutcome::Won { ad, .. }) =
            platform.browse(user)
        {
            let creative = platform.campaigns.ad(ad).expect("won").creative.clone();
            log.observe(ad, creative, platform.clock.now());
        }
    }
    let client = TreadClient::new(provider.codebook.clone(), &platform.attributes);
    let profile = client.decode_log(&log, |_| None);
    assert!(
        profile.corrupt_groups.is_empty(),
        "no corrupt decodes expected"
    );
    profile.group_values.get("band").cloned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any member of any group size decodes to exactly itself.
    #[test]
    fn holder_decodes_their_exact_value(m in 2usize..40, pick in any::<prop::sample::Index>(), seed in 1u64..1000) {
        let idx = pick.index(m);
        let decoded = run_group(m, Some(idx), seed);
        prop_assert_eq!(decoded, Some(format!("Band {}", idx)));
    }

    /// Holding no member of the group decodes to nothing.
    #[test]
    fn non_holder_decodes_nothing(m in 2usize..40, seed in 1u64..1000) {
        prop_assert_eq!(run_group(m, None, seed), None);
    }
}

#[test]
fn the_paper_net_worth_shape() {
    // 9 bands, 4 Treads — every band decodes correctly.
    for idx in 0..9 {
        assert_eq!(
            run_group(9, Some(idx), 7),
            Some(format!("Band {idx}")),
            "band {idx}"
        );
    }
}
