//! Integration test: the delivery-receipt ledger (DESIGN.md §15).
//!
//! The transparency-ledger contract has four clauses:
//!
//! 1. **Honest runs verify clean.** At 1, 2, and 8 shards the emission
//!    commitment (chain heads and counts) is identical, the chains
//!    materialized from the impression log reproduce it byte for byte,
//!    an honest publish audits clean, and every extension user's feed
//!    matches the ledger's claims about it (proptest over run seeds).
//! 2. **Serving ≡ batch.** The serving front end fed the batch engine's
//!    own arrival stream maintains the identical commitment and
//!    materializes the identical chains.
//! 3. **Dishonesty is detected exactly.** For any seeded
//!    `DishonestPlatform` schedule, the auditor's detected set equals
//!    the injected set — same chains, same fault kinds, same receipt
//!    indices (chaos proptest: soundness *and* completeness).
//! 4. **Resume cannot rewrite history.** A checkpoint whose committed
//!    heads disagree with chains recomputed from its own impression log
//!    is refused before any state is restored.

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::OnceLock;
use treads_repro::adplatform::campaign::AdCreative;
use treads_repro::adplatform::targeting::{TargetingExpr, TargetingSpec};
use treads_repro::adsim_types::{Money, UserId};
use treads_repro::engine::{
    Engine, EngineCheckpoint, EngineConfig, FaultPlan, ResilienceOptions, DAY_MS,
};
use treads_repro::resilience::{receipts_from_impressions, ReceiptLedger, LEDGER_CHAINS};
use treads_repro::serving::{OpportunityRequest, ServingConfig, ServingEngine, Ticket};
use treads_repro::treads::encoding::Encoding;
use treads_repro::treads::planner::CampaignPlan;
use treads_repro::websim::{
    ArrivalSchedule, ExtensionLog, ReceiptClaim, SessionConfig, SiteRegistry,
};
use treads_repro::workload::CohortScenario;

const DAYS: u64 = 3;

/// The seeded ledger scenario: a cohort with one Tread campaign plus
/// two always-on broad campaigns, so every page view can deliver and
/// the receipt chains are populated.
fn scenario(seed: u64) -> (CohortScenario, SiteRegistry) {
    let mut s = CohortScenario::setup(seed, 40, 20);
    let names: Vec<String> = s
        .platform
        .attributes
        .partner_attributes()
        .iter()
        .take(12)
        .map(|d| d.name.clone())
        .collect();
    let plan = CampaignPlan::binary_in_ad("ledger", &names, Encoding::CodebookToken);
    s.provider
        .run_plan(&mut s.platform, &plan, s.optin_audience)
        .expect("plan runs");

    let adv = s.platform.register_advertiser("ledger-filler");
    let acct = s.platform.open_account(adv).expect("account");
    for (name, cpm) in [("brand", 2), ("promo", 3)] {
        let camp = s
            .platform
            .create_campaign(acct, name, Money::dollars(cpm), None)
            .expect("campaign");
        s.platform
            .submit_ad(
                camp,
                AdCreative::text(name, "ledger test"),
                TargetingSpec::including(TargetingExpr::Everyone),
            )
            .expect("ad");
    }

    let mut sites = SiteRegistry::new();
    sites.create("feed.example", 2);
    sites.create("news.example", 1);
    (s, sites)
}

fn session() -> SessionConfig {
    SessionConfig {
        views_per_user_per_day: 6.0,
        days: DAYS,
    }
}

fn engine(seed: u64, shards: usize) -> Engine {
    Engine::new(EngineConfig {
        shards,
        session: session(),
        seed,
        ..EngineConfig::default()
    })
}

/// Everything one ledger-on batch run yields: the emission commitment,
/// the chains materialized from the impression log, the per-user
/// extension logs, and the impression count.
struct LedgerRun {
    commitment: ReceiptLedger,
    full: ReceiptLedger,
    extensions: BTreeMap<UserId, ExtensionLog>,
    impressions: u64,
}

/// One plain engine run (ledger on by default) over the seeded
/// scenario; scenario setup is itself seed-deterministic.
fn batch_run(seed: u64, shards: usize) -> LedgerRun {
    let (mut s, sites) = scenario(seed);
    let extension_users: BTreeSet<UserId> = s.opted_in.iter().copied().collect();
    let outcome = engine(seed, shards).run(&mut s.platform, &sites, &s.users, &extension_users);
    let commitment = outcome.ledger.expect("ledger is on by default");
    let full = receipts_from_impressions(
        commitment.seed(),
        commitment.tick_ms(),
        s.platform.log.all(),
    );
    LedgerRun {
        commitment,
        full,
        extensions: outcome.extensions,
        impressions: outcome.report.impressions,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Clause 1: honest runs verify clean at every shard count, and the
    /// commitment is shard-count-invariant.
    #[test]
    fn honest_runs_verify_clean_at_every_shard_count(seed in 0u64..1000) {
        let reference = batch_run(seed, 1);
        prop_assert_eq!(reference.commitment.len(), reference.impressions,
            "one receipt per delivered impression");
        prop_assert_eq!(reference.full.heads(), reference.commitment.heads(),
            "materialized chains must reproduce the emission commitment");

        // An honest publish audits clean.
        let (published, injected) = reference.full.publish(&FaultPlan::new());
        prop_assert!(injected.is_empty());
        let report = reference.full.audit(&published);
        prop_assert!(report.is_clean(), "honest publish must audit clean: {:?}", report.findings);
        prop_assert_eq!(report.receipts_checked, reference.full.len());

        // Every extension user's rendered feed matches the ledger's
        // claims about it.
        for (user, log) in &reference.extensions {
            let claims: Vec<ReceiptClaim> = reference
                .full
                .claims_for(*user)
                .into_iter()
                .map(|(ad, at)| ReceiptClaim { ad, at })
                .collect();
            let audit = log.verify_claims(&claims);
            prop_assert!(audit.is_clean(),
                "user {} feed mismatch: {} unobserved, {} unreceipted",
                user, audit.unobserved.len(), audit.unreceipted.len());
        }

        // Shard-count invariance: 2- and 8-shard runs emit the same
        // commitment and materialize the same chains.
        for shards in [2usize, 8] {
            let other = batch_run(seed, shards);
            prop_assert_eq!(&other.commitment, &reference.commitment,
                "commitment differs at {} shards", shards);
            prop_assert_eq!(&other.full, &reference.full,
                "materialized chains differ at {} shards", shards);
        }
    }
}

/// Clause 3's fixture: one materialized ledger, reused across the chaos
/// proptest's cases (the engine run is the expensive part; publish and
/// audit are cheap).
fn chaos_ledger() -> &'static ReceiptLedger {
    static LEDGER: OnceLock<ReceiptLedger> = OnceLock::new();
    LEDGER.get_or_init(|| {
        let run = batch_run(31, 2);
        assert!(run.full.len() > 100, "chaos fixture needs populated chains");
        run.full
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Clause 3: every seeded dishonest publish is detected with exact
    /// attribution — the auditor finds all injected tamperings
    /// (completeness) and nothing else (soundness).
    #[test]
    fn dishonest_publishes_detected_exactly(fault_seed in 0u64..10_000) {
        let ledger = chaos_ledger();
        let plan = FaultPlan::random_dishonest(fault_seed, LEDGER_CHAINS);
        let (published, injected) = ledger.publish(&plan);
        let report = ledger.audit(&published);
        let mut detected = report.detected_set();
        let mut expected: Vec<_> = injected.iter().map(|i| (i.chain, i.kind, i.index)).collect();
        detected.sort();
        expected.sort();
        prop_assert_eq!(detected, expected, "fault seed {}", fault_seed);
    }
}

/// Clause 2: the serving front end fed the batch engine's arrival
/// stream emits the identical ledger.
#[test]
fn serving_emits_the_batch_ledger() {
    const SEED: u64 = 31;
    let batch = batch_run(SEED, 2);

    let (mut s, sites) = scenario(SEED);
    let arrivals = ArrivalSchedule::from_sessions(&s.users, &sites.ids(), &session(), SEED);
    let engine = ServingEngine::new(ServingConfig {
        shards: 2,
        tick_ms: DAY_MS,
        horizon_ms: DAYS * DAY_MS,
        seed: SEED,
        queue_watermark: u64::MAX,
        ..ServingConfig::default()
    });
    let extension_users: BTreeSet<UserId> = s.opted_in.iter().copied().collect();
    let (outcome, _) = engine.serve(&mut s.platform, &sites, &extension_users, |frontend| {
        let tickets: Vec<_> = arrivals
            .arrivals()
            .iter()
            .map(|a| {
                frontend.submit(OpportunityRequest {
                    user: a.user,
                    site: a.site,
                    at: a.at,
                })
            })
            .collect();
        tickets.into_iter().map(Ticket::wait).collect::<Vec<_>>()
    });
    let commitment = outcome.ledger.expect("serving ledger is on by default");
    assert_eq!(
        commitment, batch.commitment,
        "serving and batch emission commitments differ"
    );
    let full = receipts_from_impressions(
        commitment.seed(),
        commitment.tick_ms(),
        s.platform.log.all(),
    );
    assert_eq!(full, batch.full, "serving and batch chains differ");
}

/// Clause 4: a checkpoint whose committed heads were rewritten is
/// refused at resume.
#[test]
fn resume_refuses_rewritten_ledger_heads() {
    const SEED: u64 = 31;
    let options = ResilienceOptions {
        checkpoint_every_ticks: 1,
        ..ResilienceOptions::default()
    };

    let (mut s, sites) = scenario(SEED);
    let extension_users: BTreeSet<UserId> = s.opted_in.iter().copied().collect();
    let resilient = engine(SEED, 2)
        .run_resilient(
            &mut s.platform,
            &sites,
            &s.users,
            &extension_users,
            &options,
        )
        .expect("supervised run completes");
    let mut cp = resilient
        .checkpoints
        .into_iter()
        .find(|cp| cp.ledger.iter().any(|h| h.count > 0))
        .expect("some checkpoint has receipts");

    let resume = |cp: &EngineCheckpoint| {
        let (mut s, sites) = scenario(SEED);
        let extension_users: BTreeSet<UserId> = s.opted_in.iter().copied().collect();
        engine(SEED, 2).resume_from(
            &mut s.platform,
            &sites,
            &s.users,
            &extension_users,
            &options,
            cp,
        )
    };

    // An untampered checkpoint resumes fine on a fresh host...
    resume(&cp).expect("honest checkpoint resumes");

    // ...but rewriting any committed head is refused before restore.
    let target = cp
        .ledger
        .iter()
        .position(|h| h.count > 0)
        .expect("a chain has receipts");
    cp.ledger[target].head ^= 1;
    let err = resume(&cp).expect_err("tampered checkpoint must be refused");
    assert!(
        err.to_string().contains("ledger heads"),
        "unexpected error: {err}"
    );
}
