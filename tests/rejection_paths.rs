//! Integration test: policy rejection and enforcement suspension paths.
//!
//! The platform's two rejection channels — per-creative policy review
//! (`policy.rs`) and per-account enforcement sweeps (`enforcement.rs`) —
//! must fail *closed*: a rejected ad never serves and never bills, a
//! suspended account loses its whole advertiser API, and in both cases a
//! compliant re-submission brings the campaign back through the normal
//! path with nothing leaked from the rejected attempt.

use treads_repro::adplatform::enforcement::EnforcementConfig;
use treads_repro::adplatform::{AdStatus, Gender, Platform, PlatformConfig};
use treads_repro::adsim_types::{AudienceId, Error, Money, UserId};
use treads_repro::treads::encoding::Encoding;
use treads_repro::treads::planner::CampaignPlan;
use treads_repro::treads::provider::TransparencyProvider;

const ATTR: &str = "Net worth: $2M+";

/// A platform, a provider with a page opt-in audience, and one opted-in
/// user holding the partner attribute every test targets.
fn staged(seed: u64) -> (Platform, TransparencyProvider, UserId, AudienceId) {
    let mut platform = Platform::us_2018(PlatformConfig {
        seed,
        ..PlatformConfig::default()
    });
    platform.config.auction.competitor_rate = 0.0;
    let provider = TransparencyProvider::register(&mut platform, "KYD", seed, Money::dollars(10))
        .expect("provider registers");
    let (page, audience) = provider.setup_page_optin(&mut platform).expect("optin");
    let user = platform.register_user(44, Gender::Female, "Vermont", "05401");
    let attr = platform.attributes.id_of(ATTR).expect("catalog attribute");
    platform
        .profiles
        .grant_attribute(user, attr)
        .expect("grant");
    platform.user_likes_page(user, page).expect("like");
    (platform, provider, user, audience)
}

#[test]
fn rejected_ad_never_delivers_and_never_bills() {
    let (mut p, mut prov, user, audience) = staged(11);
    let plan = CampaignPlan::binary_in_ad("explicit", &[ATTR], Encoding::Explicit);
    let receipt = prov.run_plan(&mut p, &plan, audience).expect("run");
    assert_eq!(receipt.rejected_count(), 1);
    let rejected = &receipt.placed[0];
    assert!(!rejected.approved);
    assert!(matches!(
        p.ad_status(rejected.ad).expect("status"),
        AdStatus::Rejected { .. }
    ));

    // Heavy browsing by a perfectly matching user: the rejected ad must
    // never appear in the impression log.
    for _ in 0..50 {
        p.browse(user).expect("browse");
    }
    assert!(
        p.log.all().iter().all(|i| i.ad != rejected.ad),
        "rejected ad delivered"
    );
    // And therefore nothing was charged — per ad, per campaign, and on
    // the account invoice.
    assert_eq!(p.billing.ad_spend(rejected.ad), Money::ZERO);
    assert_eq!(p.billing.campaign_spend(rejected.campaign), Money::ZERO);
    assert_eq!(p.billing.account_spend(receipt.account), Money::ZERO);
    assert_eq!(p.invoice(receipt.account).due, Money::ZERO);
}

#[test]
fn resubmission_with_compliant_creative_recovers() {
    let (mut p, mut prov, user, audience) = staged(13);

    // First attempt: explicit wording, rejected.
    let explicit = CampaignPlan::binary_in_ad("try1", &[ATTR], Encoding::Explicit);
    let first = prov.run_plan(&mut p, &explicit, audience).expect("run");
    assert_eq!(first.approved_count(), 0);

    // Re-submission of the same disclosure, re-encoded through the
    // codebook: approved, delivers, and bills through the normal path.
    let obfuscated = CampaignPlan::binary_in_ad("try2", &[ATTR], Encoding::CodebookToken);
    let second = prov.run_plan(&mut p, &obfuscated, audience).expect("rerun");
    assert_eq!(second.approved_count(), 1);
    let placed = &second.placed[0];
    assert_eq!(p.ad_status(placed.ad).expect("status"), &AdStatus::Approved);

    for _ in 0..50 {
        p.browse(user).expect("browse");
    }
    let delivered = p.log.all().iter().filter(|i| i.ad == placed.ad).count();
    assert!(delivered > 0, "approved re-submission never delivered");
    assert!(p.billing.ad_spend(placed.ad) > Money::ZERO);
    // The rejected first attempt stayed dark even while its sibling ran.
    let rejected_ad = first.placed[0].ad;
    assert!(p.log.all().iter().all(|i| i.ad != rejected_ad));
    assert_eq!(p.billing.ad_spend(rejected_ad), Money::ZERO);
}

#[test]
fn suspended_account_loses_the_advertiser_api() {
    // A single account running one campaign per partner attribute trips
    // the pattern detector (ceil(n/1) >= threshold), and suspension takes
    // down every advertiser-facing call — including re-submission.
    let (mut p, mut prov, user, audience) = staged(17);
    p.config.enforcement = EnforcementConfig {
        pattern_threshold: 50,
        review_sample_rate: 0.0,
    };
    let names: Vec<String> = p
        .attributes
        .partner_attributes()
        .iter()
        .map(|d| d.name.clone())
        .collect();
    assert!(names.len() >= 50, "us_2018 catalog feeds the detector");
    let plan = CampaignPlan::binary_in_ad("bulk", &names, Encoding::CodebookToken);
    let receipt = prov.run_plan(&mut p, &plan, audience).expect("run");
    let spend_before = p.billing.account_spend(receipt.account);

    let reports = p.run_enforcement_sweep();
    assert!(
        reports
            .iter()
            .any(|r| r.account == receipt.account && r.flagged()),
        "bulk singleton campaigns should be flagged"
    );
    assert!(p.suspended.contains(&receipt.account));

    // Every advertiser-facing operation now fails with AccountSuspended.
    let retry = CampaignPlan::binary_in_ad("retry", &[ATTR], Encoding::CodebookToken);
    let err = prov.run_plan(&mut p, &retry, audience).unwrap_err();
    assert!(matches!(err, Error::AccountSuspended { .. }), "got {err}");
    let err = p
        .create_campaign(receipt.account, "direct", Money::dollars(2), None)
        .unwrap_err();
    assert!(matches!(err, Error::AccountSuspended { .. }));

    // Suspended ads stop serving, so the ledger freezes where it was.
    for _ in 0..20 {
        p.browse(user).expect("browse");
    }
    assert_eq!(p.billing.account_spend(receipt.account), spend_before);
}
