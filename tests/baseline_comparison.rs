//! Integration test: the correlation baseline (E10's comparator) against
//! the simulated platform, plus the headline comparison with Treads.

use std::collections::BTreeMap;
use treads_repro::adplatform::attributes::{AttributeCatalog, AttributeSource};
use treads_repro::adplatform::auction::AuctionConfig;
use treads_repro::adplatform::campaign::AdCreative;
use treads_repro::adplatform::targeting::{TargetingExpr, TargetingSpec};
use treads_repro::adplatform::{Platform, PlatformConfig};
use treads_repro::adsim_types::rng::substream;
use treads_repro::adsim_types::{AdId, AttributeId, Money};
use treads_repro::baseline::infer::{infer_targeting, score, Correction};
use treads_repro::baseline::{collect_exposures, spawn_controls, ControlDesign};

fn rig(seed: u64, k: usize) -> (Platform, Vec<AttributeId>, BTreeMap<AdId, AttributeId>) {
    let mut catalog = AttributeCatalog::new();
    let attrs: Vec<AttributeId> = (0..k)
        .map(|i| catalog.register(format!("Cand {i}"), AttributeSource::Platform, None, 0.1))
        .collect();
    let mut platform = Platform::new(
        PlatformConfig {
            seed,
            auction: AuctionConfig {
                competitor_rate: 0.0,
                ..AuctionConfig::default()
            },
            frequency_cap: 4,
            ..PlatformConfig::default()
        },
        catalog,
    );
    let adv = platform.register_advertiser("adv");
    let acct = platform.open_account(adv).expect("account");
    let camp = platform
        .create_campaign(acct, "c", Money::dollars(10), None)
        .expect("campaign");
    let mut truth = BTreeMap::new();
    for &attr in &attrs {
        let ad = platform
            .submit_ad(
                camp,
                AdCreative::text(format!("ad {attr}"), "b"),
                TargetingSpec::including(TargetingExpr::Attr(attr)),
            )
            .expect("ad");
        truth.insert(ad, attr);
    }
    (platform, attrs, truth)
}

#[test]
fn baseline_recovers_targeting_with_enough_accounts() {
    let (mut platform, attrs, truth) = rig(1, 6);
    let mut rng = substream(1, "it-baseline");
    let pop = spawn_controls(
        &mut platform,
        &attrs,
        &ControlDesign {
            accounts: 64,
            assignment_probability: 0.5,
        },
        &mut rng,
    );
    let matrix = collect_exposures(&mut platform, &pop.accounts, 18);
    // alpha 0.01: the test demands *zero* false positives across 36
    // hypotheses, and at alpha 0.05 a single chance correlation slips
    // through ~4% of the time. True pairs sit at p ~ 1e-15, so recall is
    // unaffected by the tighter threshold.
    let inferred = infer_targeting(&matrix, &pop, Correction::Bonferroni { alpha: 0.01 });
    let acc = score(&inferred, &truth);
    assert_eq!(acc.false_positives, 0, "{inferred:?}");
    assert!(acc.recall() >= 0.8, "recall {}", acc.recall());
}

#[test]
fn baseline_power_curve_is_monotone_in_population() {
    let mut recalls = Vec::new();
    for accounts in [6usize, 24, 96] {
        let (mut platform, attrs, truth) = rig(2, 6);
        let mut rng = substream(2, "it-baseline-sweep");
        let pop = spawn_controls(
            &mut platform,
            &attrs,
            &ControlDesign {
                accounts,
                assignment_probability: 0.5,
            },
            &mut rng,
        );
        let matrix = collect_exposures(&mut platform, &pop.accounts, 18);
        let inferred = infer_targeting(&matrix, &pop, Correction::Bonferroni { alpha: 0.05 });
        recalls.push(score(&inferred, &truth).recall());
    }
    assert!(
        recalls[0] <= recalls[1] && recalls[1] <= recalls[2],
        "recall curve {recalls:?} must be non-decreasing"
    );
    assert!(recalls[0] < 0.5, "tiny populations must lack power");
    assert!(recalls[2] >= 0.8, "large populations must succeed");
}

#[test]
fn treads_achieve_the_goal_without_any_control_accounts() {
    use treads_repro::treads::encoding::Encoding;
    use treads_repro::treads::planner::CampaignPlan;
    use treads_repro::treads::provider::TransparencyProvider;
    use treads_repro::treads::TreadClient;
    use treads_repro::websim::extension::ExtensionLog;

    let (mut platform, attrs, _truth) = rig(3, 6);
    let before_users = platform.profiles.len();
    let mut provider = TransparencyProvider::register(&mut platform, "KYD", 3, Money::dollars(10))
        .expect("provider registers");
    let (page, audience) = provider
        .setup_page_optin(&mut platform)
        .expect("page opt-in");
    let user = platform.register_user(
        30,
        treads_repro::adplatform::profile::Gender::Female,
        "Ohio",
        "43004",
    );
    platform
        .profiles
        .grant_attribute(user, attrs[2])
        .expect("user");
    platform.user_likes_page(user, page).expect("like");
    let names: Vec<String> = attrs
        .iter()
        .map(|&a| platform.attributes.get(a).expect("attr").name.clone())
        .collect();
    let plan = CampaignPlan::binary_in_ad("kyd", &names, Encoding::CodebookToken);
    provider
        .run_plan(&mut platform, &plan, audience)
        .expect("plan runs");
    let mut log = ExtensionLog::for_user(user);
    for _ in 0..40 {
        if let Ok(treads_repro::adplatform::auction::AuctionOutcome::Won { ad, .. }) =
            platform.browse(user)
        {
            let creative = platform.campaigns.ad(ad).expect("won").creative.clone();
            log.observe(ad, creative, platform.clock.now());
        }
    }
    let client = TreadClient::new(provider.codebook.clone(), &platform.attributes);
    let revealed = client.decode_log(&log, |_| None);
    assert_eq!(revealed.has.len(), 1);
    assert!(revealed.has.contains("Cand 2"));
    // Exactly one user was added — the real one. Zero fake accounts.
    assert_eq!(platform.profiles.len(), before_users + 1);
}
