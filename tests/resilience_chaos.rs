//! Integration test: fault injection, crash recovery, and
//! checkpoint/resume leave the simulation byte-identical.
//!
//! The resilience contract (DESIGN.md "Failure model & recovery") has
//! three clauses, each tested here against the fault-free oracle:
//!
//! 1. **Recoverable chaos is invisible.** Any seeded [`FaultPlan`] whose
//!    crashes stay within the supervisor's retry budget — plus any mix of
//!    duplicated and delayed batches — produces identical invoices, ad
//!    reports, impression logs, and decoded Tread sets, at 1, 2, and 8
//!    shards (chaos property test).
//! 2. **Checkpoint/resume is invisible.** Serializing a tick-boundary
//!    checkpoint, decoding it, and resuming on a freshly built host
//!    produces the identical outputs — including the *later* checkpoints,
//!    byte for byte.
//! 3. **Unrecoverable faults degrade with exact accounting.** A crash
//!    beyond the retry budget loses exactly the work the fault report
//!    itemizes: oracle counts = degraded counts + lost counts.

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use treads_repro::adplatform::billing::Invoice;
use treads_repro::adplatform::compiled::EvalMode;
use treads_repro::adplatform::reporting::{AdReport, Impression};
use treads_repro::adsim_types::UserId;
use treads_repro::engine::resilience::{fold_frames, CheckpointFrame};
use treads_repro::engine::{
    Engine, EngineCheckpoint, EngineConfig, EngineReport, FaultPlan, FaultReport,
    ResilienceOptions, DAY_MS,
};
use treads_repro::serving::{
    OpportunityRequest, RejectReason, Response, ServingConfig, ServingEngine, ServingReport, Ticket,
};
use treads_repro::telemetry::Telemetry;
use treads_repro::treads::encoding::Encoding;
use treads_repro::treads::planner::CampaignPlan;
use treads_repro::treads::TreadClient;
use treads_repro::websim::{ArrivalSchedule, ExtensionLog, SessionConfig, SiteRegistry};
use treads_repro::workload::CohortScenario;

const SEED: u64 = 31;
const DAYS: u64 = 5;

/// Every output the resilience contract covers.
#[derive(Debug, PartialEq)]
struct RunOutput {
    invoices: Vec<Invoice>,
    reports: Vec<AdReport>,
    reveals: BTreeMap<UserId, BTreeSet<String>>,
    log: Vec<Impression>,
    report: EngineReport,
    faults: FaultReport,
    checkpoint_bytes: Vec<Vec<u8>>,
    /// TRCK v3 frame chain, populated only in delta mode
    /// (`delta_base_every > 0`).
    frames: Vec<CheckpointFrame>,
}

/// How a run starts: cold, resumed from a decoded full checkpoint, or
/// resumed from a prefix of a base+delta frame chain.
enum Resume<'a> {
    Cold,
    Checkpoint(&'a EngineCheckpoint),
    Frames(&'a [CheckpointFrame]),
}

/// One full supervised engine run, built from scratch (scenario setup is
/// itself seed-deterministic). With `resume` the engine continues a
/// checkpointed run on the freshly built host instead of starting cold.
fn run(shards: usize, options: &ResilienceOptions, resume: Resume) -> RunOutput {
    run_with_eval(shards, EvalMode::Compiled, options, resume)
}

/// [`run`], with the targeting evaluation mode set explicitly — the
/// checkpoint codec carries the symbol table and facet sidecars, so a
/// resumed run must behave identically whichever evaluator is active.
fn run_with_eval(
    shards: usize,
    eval: EvalMode,
    options: &ResilienceOptions,
    resume: Resume,
) -> RunOutput {
    let mut s = CohortScenario::setup(SEED, 60, 30);
    let names: Vec<String> = s
        .platform
        .attributes
        .partner_attributes()
        .iter()
        .take(12)
        .map(|d| d.name.clone())
        .collect();
    let plan = CampaignPlan::binary_in_ad("chaos", &names, Encoding::CodebookToken);
    let receipt = s
        .provider
        .run_plan(&mut s.platform, &plan, s.optin_audience)
        .expect("plan runs");

    s.platform.campaigns.set_eval_mode(eval);

    let mut sites = SiteRegistry::new();
    sites.create("feed.example", 2);
    sites.create("news.example", 1);

    let engine = Engine::new(EngineConfig {
        shards,
        session: SessionConfig {
            views_per_user_per_day: 6.0,
            days: DAYS,
        },
        seed: SEED,
        ..EngineConfig::default()
    });
    let extension_users: BTreeSet<UserId> = s.opted_in.iter().copied().collect();
    let resilient = match resume {
        Resume::Cold => engine
            .run_resilient(&mut s.platform, &sites, &s.users, &extension_users, options)
            .expect("supervised run completes"),
        Resume::Checkpoint(cp) => engine
            .resume_from(
                &mut s.platform,
                &sites,
                &s.users,
                &extension_users,
                options,
                cp,
            )
            .expect("resume completes"),
        Resume::Frames(frames) => engine
            .resume_from_frames(
                &mut s.platform,
                &sites,
                &s.users,
                &extension_users,
                options,
                frames,
            )
            .expect("delta resume completes"),
    };

    let invoices = s
        .provider
        .accounts
        .iter()
        .map(|&a| s.platform.invoice(a))
        .collect();
    let reports = receipt
        .placed
        .iter()
        .filter(|p| p.approved)
        .map(|p| {
            s.platform
                .ad_report(receipt.account, p.ad)
                .expect("placed ad reports")
        })
        .collect();
    let client = TreadClient::new(s.provider.codebook.clone(), &s.platform.attributes);
    let reveals = resilient
        .outcome
        .extensions
        .iter()
        .map(|(&u, log)| (u, client.decode_log(log, |_| None).has))
        .collect();
    RunOutput {
        invoices,
        reports,
        reveals,
        log: s.platform.log.all().to_vec(),
        report: resilient.outcome.report,
        faults: resilient.faults,
        checkpoint_bytes: resilient
            .checkpoints
            .iter()
            .map(EngineCheckpoint::to_bytes)
            .collect(),
        frames: resilient.frames,
    }
}

/// Fault-free oracle at a given shard count.
fn oracle(shards: usize) -> RunOutput {
    run(shards, &ResilienceOptions::default(), Resume::Cold)
}

/// Asserts the simulation-visible outputs of `a` and `b` are identical
/// (fault accounting aside, which legitimately differs).
fn assert_same_simulation(a: &RunOutput, b: &RunOutput, context: &str) {
    assert_eq!(a.invoices, b.invoices, "invoices differ: {context}");
    assert_eq!(a.reports, b.reports, "ad reports differ: {context}");
    assert_eq!(a.reveals, b.reveals, "decoded Treads differ: {context}");
    assert_eq!(a.log, b.log, "impression logs differ: {context}");
    assert_eq!(a.report, b.report, "engine reports differ: {context}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Delta chains under chaos: with any recoverable fault plan and any
    /// base cadence, the delta-mode run's frame chain folds — at *every*
    /// prefix — to a checkpoint byte-identical to the one the full-mode
    /// run took at the same tick, at 1, 2, and 8 shards. The digest check
    /// inside [`fold_frames`] makes this also a proof that the dirty-set
    /// bookkeeping missed no mutated slot.
    #[test]
    fn delta_chains_fold_byte_identical_under_chaos(
        fault_seed in 0u64..1000,
        delta_base in 2u64..5,
    ) {
        for shards in [1usize, 2, 8] {
            let plan = FaultPlan::random_recoverable(fault_seed, DAYS, shards, 3);
            let full_options = ResilienceOptions {
                faults: plan,
                max_retries_per_shard_tick: 3,
                checkpoint_every_ticks: 1,
                delta_base_every: 0,
            };
            let delta_options = ResilienceOptions {
                delta_base_every: delta_base,
                ..full_options.clone()
            };
            let full = run(shards, &full_options, Resume::Cold);
            let delta = run(shards, &delta_options, Resume::Cold);
            assert_same_simulation(
                &full,
                &delta,
                &format!("full vs delta cadence, fault seed {fault_seed}, {shards} shards"),
            );
            prop_assert_eq!(delta.frames.len(), full.checkpoint_bytes.len());
            for i in 0..delta.frames.len() {
                let folded = fold_frames(&delta.frames[..=i]).expect("frame chain folds");
                prop_assert_eq!(
                    folded.to_bytes(),
                    full.checkpoint_bytes[i].clone(),
                    "prefix {} of {} (base every {}, {} shards)",
                    i,
                    delta.frames.len(),
                    delta_base,
                    shards
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Clause 1: any recoverable fault plan, at any shard count, is
    /// byte-identical to fault-free.
    #[test]
    fn recoverable_chaos_is_byte_identical(fault_seed in 0u64..1000) {
        for shards in [1usize, 2, 8] {
            let clean = oracle(shards);
            let plan = FaultPlan::random_recoverable(fault_seed, DAYS, shards, 3);
            let options = ResilienceOptions {
                faults: plan,
                max_retries_per_shard_tick: 3,
                checkpoint_every_ticks: 0,
                delta_base_every: 0,
            };
            let chaotic = run(shards, &options, Resume::Cold);
            prop_assert_eq!(chaotic.faults.unrecoverable, 0);
            prop_assert!(chaotic.faults.lost.is_empty());
            assert_same_simulation(
                &clean,
                &chaotic,
                &format!("fault seed {fault_seed}, {shards} shards"),
            );
            // The same chaos replays exactly, accounting included.
            let replay = run(shards, &options, Resume::Cold);
            prop_assert_eq!(&replay.faults, &chaotic.faults);
            assert_same_simulation(&chaotic, &replay, "chaos replay");
        }
    }
}

#[test]
fn targeted_faults_recover_at_every_shard_count() {
    // A hand-built plan exercising all three engine faults at once, placed
    // where a 5-tick run is sure to hit them.
    for shards in [1usize, 2, 8] {
        let clean = oracle(shards);
        let plan = FaultPlan::new()
            .crash_shard(1, 0, 2)
            .duplicate_batch(2, 0)
            .delay_batch(3, shards.saturating_sub(1));
        let options = ResilienceOptions {
            faults: plan,
            max_retries_per_shard_tick: 3,
            checkpoint_every_ticks: 0,
            delta_base_every: 0,
        };
        let chaotic = run(shards, &options, Resume::Cold);
        assert!(chaotic.faults.injected > 0, "faults were actually injected");
        assert_eq!(chaotic.faults.unrecoverable, 0);
        assert_same_simulation(
            &clean,
            &chaotic,
            &format!("targeted faults, {shards} shards"),
        );
    }
}

#[test]
fn checkpoint_resume_round_trip_is_byte_identical() {
    let options = ResilienceOptions {
        faults: FaultPlan::new(),
        max_retries_per_shard_tick: 3,
        checkpoint_every_ticks: 2,
        delta_base_every: 0,
    };
    for shards in [1usize, 2, 8] {
        let full = run(shards, &options, Resume::Cold);
        // 5 ticks at a 2-tick cadence: checkpoints after ticks 2 and 4.
        assert_eq!(full.checkpoint_bytes.len(), 2);

        // Serialize → decode → resume on a freshly built host.
        let decoded = EngineCheckpoint::from_bytes(&full.checkpoint_bytes[0]).expect("decodes");
        assert_eq!(
            decoded.to_bytes(),
            full.checkpoint_bytes[0],
            "checkpoint re-encode is canonical"
        );
        let resumed = run(shards, &options, Resume::Checkpoint(&decoded));
        assert_same_simulation(&full, &resumed, &format!("resume at {shards} shards"));
        // The resumed run retakes the *later* checkpoint, byte for byte.
        assert_eq!(
            resumed.checkpoint_bytes,
            full.checkpoint_bytes[1..].to_vec()
        );
    }

    // A mismatched host is rejected before anything mutates.
    let decoded = {
        let full = run(2, &options, Resume::Cold);
        EngineCheckpoint::from_bytes(&full.checkpoint_bytes[0]).expect("decodes")
    };
    let mut s = CohortScenario::setup(SEED, 60, 30);
    let wrong_engine = Engine::new(EngineConfig {
        shards: 4, // checkpoint was taken at 2 shards
        session: SessionConfig {
            views_per_user_per_day: 6.0,
            days: DAYS,
        },
        seed: SEED,
        ..EngineConfig::default()
    });
    let sites = SiteRegistry::new();
    let err = wrong_engine
        .resume_from(
            &mut s.platform,
            &sites,
            &s.users,
            &BTreeSet::new(),
            &options,
            &decoded,
        )
        .unwrap_err();
    assert!(
        err.to_string().contains("does not match"),
        "unexpected resume error: {err}"
    );
}

#[test]
fn compiled_resume_matches_tree_and_compiled_full_runs() {
    // The v2 checkpoint sections (symbol table, facet sidecars) must hand a
    // resumed host everything compiled evaluation depends on: a run that
    // checkpoints mid-flight with compiled targeting explicitly enabled and
    // resumes on a fresh host is byte-identical to the uninterrupted run —
    // and to the tree-oracle run, closing the loop across both axes.
    let options = ResilienceOptions {
        faults: FaultPlan::new(),
        max_retries_per_shard_tick: 3,
        checkpoint_every_ticks: 2,
        delta_base_every: 0,
    };
    for shards in [1usize, 2] {
        let tree = run_with_eval(shards, EvalMode::Tree, &options, Resume::Cold);
        let compiled = run_with_eval(shards, EvalMode::Compiled, &options, Resume::Cold);
        assert_same_simulation(
            &tree,
            &compiled,
            &format!("tree vs compiled full runs, {shards} shards"),
        );
        assert_eq!(
            tree.checkpoint_bytes, compiled.checkpoint_bytes,
            "checkpoints must not encode the evaluation mode ({shards} shards)"
        );

        let decoded = EngineCheckpoint::from_bytes(&compiled.checkpoint_bytes[0]).expect("decodes");
        let resumed = run_with_eval(
            shards,
            EvalMode::Compiled,
            &options,
            Resume::Checkpoint(&decoded),
        );
        assert_same_simulation(
            &compiled,
            &resumed,
            &format!("compiled resume, {shards} shards"),
        );
        assert_eq!(
            resumed.checkpoint_bytes,
            compiled.checkpoint_bytes[1..].to_vec(),
            "resumed run retakes later checkpoints byte-for-byte ({shards} shards)"
        );
    }
}

/// Durable outputs of one serving run over the chaos scenario.
struct ServingRun {
    invoices: Vec<Invoice>,
    log: Vec<Impression>,
    extensions: BTreeMap<UserId, ExtensionLog>,
    report: ServingReport,
    faults: FaultReport,
    responses: Vec<Response>,
}

/// One serving run over the same scenario family as [`run`], offering the
/// engine's own session stream request-by-request under `options.faults`.
fn serving_run(shards: usize, options: &ResilienceOptions) -> ServingRun {
    const SERVING_DAYS: u64 = 2;
    let mut s = CohortScenario::setup(SEED, 40, 20);
    let names: Vec<String> = s
        .platform
        .attributes
        .partner_attributes()
        .iter()
        .take(12)
        .map(|d| d.name.clone())
        .collect();
    let plan = CampaignPlan::binary_in_ad("chaos", &names, Encoding::CodebookToken);
    s.provider
        .run_plan(&mut s.platform, &plan, s.optin_audience)
        .expect("plan runs");

    let mut sites = SiteRegistry::new();
    sites.create("feed.example", 2);
    sites.create("news.example", 1);
    let session = SessionConfig {
        views_per_user_per_day: 6.0,
        days: SERVING_DAYS,
    };
    let arrivals = ArrivalSchedule::from_sessions(&s.users, &sites.ids(), &session, SEED);

    let engine = ServingEngine::new(ServingConfig {
        shards,
        tick_ms: DAY_MS,
        horizon_ms: SERVING_DAYS * DAY_MS,
        seed: SEED,
        queue_watermark: u64::MAX,
        ..ServingConfig::default()
    });
    let extension_users: BTreeSet<UserId> = s.opted_in.iter().copied().collect();
    let mut telemetry = Telemetry::disabled();
    let (outcome, responses) = engine.serve_with_telemetry(
        &mut s.platform,
        &sites,
        &extension_users,
        options,
        &mut telemetry,
        |frontend| {
            let tickets: Vec<_> = arrivals
                .arrivals()
                .iter()
                .map(|a| {
                    frontend.submit(OpportunityRequest {
                        user: a.user,
                        site: a.site,
                        at: a.at,
                    })
                })
                .collect();
            tickets.into_iter().map(Ticket::wait).collect::<Vec<_>>()
        },
    );
    ServingRun {
        invoices: s
            .provider
            .accounts
            .iter()
            .map(|&a| s.platform.invoice(a))
            .collect(),
        log: s.platform.log.all().to_vec(),
        extensions: outcome.extensions,
        report: outcome.report,
        faults: outcome.faults,
        responses,
    }
}

#[test]
fn serving_tick_under_shard_crash_degrades_instead_of_panicking() {
    let clean = serving_run(2, &ResilienceOptions::default());
    assert_eq!(clean.report.shed, 0, "fault-free serving sheds nothing");
    assert!(clean.report.impressions > 0);

    // A crash within the retry budget is invisible: the worker replays the
    // micro-batch from its batch snapshot and every durable output is
    // byte-identical to the fault-free run.
    let recoverable = serving_run(
        2,
        &ResilienceOptions {
            faults: FaultPlan::new().crash_shard(0, 0, 2),
            max_retries_per_shard_tick: 3,
            checkpoint_every_ticks: 0,
            delta_base_every: 0,
        },
    );
    assert_eq!(recoverable.faults.injected, 2);
    assert_eq!(recoverable.faults.recovered, 1);
    assert_eq!(recoverable.faults.unrecoverable, 0);
    assert_eq!(recoverable.report.shed, 0);
    assert_eq!(
        clean.invoices, recoverable.invoices,
        "recovery is invisible"
    );
    assert_eq!(clean.log, recoverable.log);
    assert_eq!(clean.extensions, recoverable.extensions);

    // A crash beyond the budget degrades: the shard's tick sheds with
    // retry-after hints, the loss is itemized, the run keeps serving.
    let degraded = serving_run(
        2,
        &ResilienceOptions {
            faults: FaultPlan::new().crash_shard(0, 0, 10),
            max_retries_per_shard_tick: 2,
            checkpoint_every_ticks: 0,
            delta_base_every: 0,
        },
    );
    assert_eq!(degraded.faults.injected, 3, "budget + 1 failing attempts");
    assert_eq!(degraded.faults.unrecoverable, 1);
    assert!(
        degraded.report.shed_failure > 0,
        "the dead tick shed requests"
    );
    assert_eq!(degraded.report.shed, degraded.report.shed_failure);
    let failures: Vec<_> = degraded
        .responses
        .iter()
        .filter(|r| {
            matches!(
                r,
                Response::Rejected {
                    reason: RejectReason::ShardFailure,
                    ..
                }
            )
        })
        .collect();
    assert_eq!(failures.len() as u64, degraded.report.shed_failure);
    assert!(
        failures.iter().all(|r| match r {
            Response::Rejected { retry_after_ms, .. } => *retry_after_ms > 0,
            Response::Served(_) => false,
        }),
        "degraded responses carry a retry hint"
    );
    // Exact loss accounting, serving flavour: the lost work is itemized
    // against the crashed (tick, shard) and covers every shed page view.
    let lost_views: u64 = degraded.faults.lost.iter().map(|l| l.page_views).sum();
    assert!(degraded
        .faults
        .lost
        .iter()
        .all(|l| (l.tick, l.shard) == (0, 0)));
    assert_eq!(lost_views, degraded.report.shed_failure);
    // Shed requests are never billed: the log holds exactly the ads on
    // served pages, and the run completed every tick regardless.
    let served_ads: u64 = degraded
        .responses
        .iter()
        .filter_map(|r| r.page())
        .map(|p| p.ads.len() as u64)
        .sum();
    assert_eq!(degraded.log.len() as u64, served_ads);
    assert_eq!(degraded.report.ticks, clean.report.ticks);
    // Fewer page views were auctioned; budget-limited delivery may catch
    // up in later ticks, but the run cannot out-deliver the oracle and its
    // actual impression log visibly diverged.
    assert!(degraded.report.opportunities < clean.report.opportunities);
    assert!(degraded.report.impressions <= clean.report.impressions);
    assert_ne!(degraded.log, clean.log);
}

#[test]
fn delta_resume_from_base_plus_two_deltas_is_byte_identical() {
    // The CI chaos-smoke case: checkpoint every tick with a delta chain
    // (full base every 8th frame → one base + four deltas over the 5-day
    // run), hand a fresh host only the base and the first two deltas, and
    // finish the run. Every simulation-visible output must be identical,
    // and the frames the resumed run takes must fold to the same final
    // state, at 1, 2, and 8 shards.
    let options = ResilienceOptions {
        faults: FaultPlan::new(),
        max_retries_per_shard_tick: 3,
        checkpoint_every_ticks: 1,
        delta_base_every: 8,
    };
    for shards in [1usize, 2, 8] {
        let uninterrupted = run(shards, &options, Resume::Cold);
        assert_eq!(uninterrupted.frames.len() as u64, DAYS);
        assert!(
            matches!(uninterrupted.frames[0], CheckpointFrame::Full(_)),
            "chain starts with a full base frame"
        );
        assert!(
            uninterrupted.frames[1..]
                .iter()
                .all(|f| matches!(f, CheckpointFrame::Delta(_))),
            "every later frame is a delta"
        );

        let resumed = run(shards, &options, Resume::Frames(&uninterrupted.frames[..3]));
        assert_same_simulation(
            &uninterrupted,
            &resumed,
            &format!("resume from base+2 deltas, {shards} shards"),
        );
        // The resumed run restarts its own chain (its first frame is a
        // fresh base), but both chains must fold to the same final state.
        let final_full = fold_frames(&uninterrupted.frames).expect("uninterrupted chain folds");
        let resumed_full = fold_frames(&resumed.frames).expect("resumed chain folds");
        assert_eq!(
            resumed_full.to_bytes(),
            final_full.to_bytes(),
            "final folded state is byte-identical ({shards} shards)"
        );
    }
}

#[test]
fn unrecoverable_crash_degrades_with_exact_accounting() {
    for shards in [2usize, 8] {
        let clean = oracle(shards);
        // Shard 0 crashes on tick 1 more times than the budget allows.
        let options = ResilienceOptions {
            faults: FaultPlan::new().crash_shard(1, 0, 10),
            max_retries_per_shard_tick: 2,
            checkpoint_every_ticks: 0,
            delta_base_every: 0,
        };
        let degraded = run(shards, &options, Resume::Cold);
        assert_eq!(degraded.faults.unrecoverable, 1);
        assert_eq!(degraded.faults.lost.len(), 1);
        let lost = &degraded.faults.lost[0];
        assert_eq!((lost.tick, lost.shard), (1, 0));
        assert!(lost.page_views > 0, "the lost tick had real work");
        // Exact accounting: nothing vanishes untracked.
        assert_eq!(
            degraded.report.page_views + lost.page_views,
            clean.report.page_views,
            "page views: degraded + lost = oracle ({shards} shards)"
        );
        assert_eq!(
            degraded.report.opportunities + lost.opportunities,
            clean.report.opportunities,
            "opportunities: degraded + lost = oracle ({shards} shards)"
        );
        assert_eq!(
            degraded.report.pixel_fires + lost.pixel_fires,
            clean.report.pixel_fires,
            "pixel fires: degraded + lost = oracle ({shards} shards)"
        );
        // Delivery degraded but never over-billed: fewer impressions, and
        // the run kept going for the remaining ticks.
        assert!(degraded.report.impressions <= clean.report.impressions);
        assert_eq!(degraded.report.ticks, clean.report.ticks);
        // Degradation replays exactly too.
        let replay = run(shards, &options, Resume::Cold);
        assert_same_simulation(&degraded, &replay, "degraded replay");
        assert_eq!(replay.faults, degraded.faults);
    }
}
