//! Integration test: the §4 evading-shutdown arms race across crates —
//! provider, planner splitting, platform enforcement, and what a
//! suspended provider's opted-in users actually lose.

use treads_repro::adplatform::enforcement::EnforcementConfig;
use treads_repro::adplatform::{Platform, PlatformConfig};
use treads_repro::adsim_types::Money;
use treads_repro::treads::crowdsource::{
    optin_crowd, run_crowdsourced, setup_crowd_channels, survival_after_sweep, CrowdChannel,
};
use treads_repro::treads::encoding::Encoding;
use treads_repro::treads::planner::CampaignPlan;
use treads_repro::treads::provider::TransparencyProvider;
use treads_repro::treads::TreadClient;
use treads_repro::websim::extension::ExtensionLog;

fn staged(seed: u64, n_accounts: usize) -> (Platform, TransparencyProvider, Vec<CrowdChannel>) {
    let mut platform = Platform::us_2018(PlatformConfig {
        seed,
        enforcement: EnforcementConfig {
            pattern_threshold: 50,
            review_sample_rate: 0.0,
        },
        ..PlatformConfig::default()
    });
    platform.config.auction.competitor_rate = 0.0;
    let mut provider =
        TransparencyProvider::register(&mut platform, "KYD", seed, Money::dollars(10))
            .expect("provider registers");
    let channels =
        setup_crowd_channels(&mut provider, &mut platform, n_accounts).expect("channels");
    (platform, provider, channels)
}

#[test]
fn detection_crossover_matches_threshold_arithmetic() {
    // 507 Treads, threshold 50: detected iff ceil(507/n) >= 50, i.e.
    // n <= 10. Verify the exact boundary from both sides.
    for (n, expect_all_survive) in [(10usize, false), (11, true)] {
        let (mut platform, mut provider, channels) = staged(n as u64, n);
        let names: Vec<String> = platform
            .attributes
            .partner_attributes()
            .iter()
            .map(|d| d.name.clone())
            .collect();
        let plan = CampaignPlan::binary_in_ad("us", &names, Encoding::CodebookToken);
        let receipts = run_crowdsourced(&mut provider, &mut platform, &plan, &channels, false)
            .expect("crowdsourced run");
        let report = survival_after_sweep(&mut platform, &receipts);
        if expect_all_survive {
            assert_eq!(report.suspended, 0, "n={n}");
            assert_eq!(report.treads_surviving, 507, "n={n}");
        } else {
            assert!(report.suspended > 0, "n={n}");
            assert!(report.treads_surviving < 507, "n={n}");
        }
    }
}

#[test]
fn users_keep_learning_from_surviving_accounts() {
    // After a sweep kills some accounts, Treads on surviving accounts
    // still deliver — the crowdsourced provider degrades, not fails.
    let (mut platform, mut provider, channels) = staged(77, 10);
    // 10 accounts: 9 slices of 51 get flagged, the last slice (48) lives.
    let names: Vec<String> = platform
        .attributes
        .partner_attributes()
        .iter()
        .map(|d| d.name.clone())
        .collect();
    let plan = CampaignPlan::binary_in_ad("us", &names, Encoding::CodebookToken);
    let receipts = run_crowdsourced(&mut provider, &mut platform, &plan, &channels, false)
        .expect("crowdsourced run");
    let report = survival_after_sweep(&mut platform, &receipts);
    assert_eq!(report.suspended, 9);
    assert_eq!(report.treads_surviving, 48);

    // A user holding one attribute from the surviving slice still learns
    // it. The surviving slice covers catalog indices 459..507.
    let surviving_receipt = receipts
        .iter()
        .find(|r| !platform.suspended.contains(&r.account))
        .expect("one survivor");
    let surviving_name = match &surviving_receipt.placed[0].tread.disclosure {
        treads_repro::treads::Disclosure::HasAttribute { name } => name.clone(),
        other => panic!("expected HasAttribute, got {other:?}"),
    };
    let user = platform.register_user(
        30,
        treads_repro::adplatform::profile::Gender::Female,
        "Ohio",
        "43004",
    );
    let attr = platform.attributes.id_of(&surviving_name).expect("attr");
    platform.profiles.grant_attribute(user, attr).expect("user");
    // Opt in: one visit to the shared site fires every crowd pixel.
    optin_crowd(&mut platform, &channels, &[user]).expect("optin");
    let mut log = ExtensionLog::for_user(user);
    for _ in 0..6 {
        if let Ok(treads_repro::adplatform::auction::AuctionOutcome::Won { ad, .. }) =
            platform.browse(user)
        {
            let creative = platform.campaigns.ad(ad).expect("won").creative.clone();
            log.observe(ad, creative, platform.clock.now());
        }
    }
    let client = TreadClient::new(provider.codebook.clone(), &platform.attributes);
    let revealed = client.decode_log(&log, |_| None);
    assert!(
        revealed.has.contains(&surviving_name),
        "surviving slice must still reveal {surviving_name}"
    );
}

#[test]
fn suspended_accounts_stop_serving_their_treads() {
    let (mut platform, mut provider, channels) = staged(99, 1);
    let names: Vec<String> = platform
        .attributes
        .partner_attributes()
        .iter()
        .take(60) // one account, over threshold
        .map(|d| d.name.clone())
        .collect();
    let plan = CampaignPlan::binary_in_ad("big", &names, Encoding::CodebookToken);
    // A user who would match everything.
    let user = platform.register_user(
        30,
        treads_repro::adplatform::profile::Gender::Male,
        "Ohio",
        "43004",
    );
    for name in &names {
        let attr = platform.attributes.id_of(name).expect("attr");
        platform.profiles.grant_attribute(user, attr).expect("user");
    }
    optin_crowd(&mut platform, &channels, &[user]).expect("optin");
    let receipts =
        run_crowdsourced(&mut provider, &mut platform, &plan, &channels, false).expect("run");
    survival_after_sweep(&mut platform, &receipts);
    assert!(platform.suspended.contains(&receipts[0].account));
    // Nothing delivers after suspension.
    for _ in 0..10 {
        let outcome = platform.browse(user).expect("browse");
        assert!(matches!(
            outcome,
            treads_repro::adplatform::auction::AuctionOutcome::Unfilled
        ));
    }
}
