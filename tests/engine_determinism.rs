//! Integration test: the parallel engine is deterministic in the shard
//! count.
//!
//! The engine's contract (DESIGN.md "Engine architecture") is that a run
//! is a function of the seed alone: partitioning the users across 1, 2, or
//! 8 worker shards must produce identical **invoices** (billing state),
//! identical **ad reports** (reporting state), and identical **decoded
//! Tread sets** (what opted-in users learn) — not merely statistically
//! similar ones. A property test then checks the mechanism underneath:
//! merging any partition of a tick's events yields one canonical order.

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use treads_repro::adplatform::billing::Invoice;
use treads_repro::adplatform::reporting::AdReport;
use treads_repro::adsim_types::{PixelId, SimTime, UserId};
use treads_repro::engine::{merge_batches, Engine, EngineConfig, ShardEvent};
use treads_repro::treads::encoding::Encoding;
use treads_repro::treads::planner::CampaignPlan;
use treads_repro::treads::TreadClient;
use treads_repro::websim::{SessionConfig, SiteRegistry};
use treads_repro::workload::CohortScenario;

const SEED: u64 = 31;

/// One full engine run at the given shard count, built from scratch
/// (scenario setup is itself seed-deterministic), returning every output
/// the determinism contract covers.
fn run_with_shards(
    shards: usize,
) -> (
    Vec<Invoice>,
    Vec<AdReport>,
    BTreeMap<UserId, BTreeSet<String>>,
    usize,
) {
    let mut s = CohortScenario::setup(SEED, 60, 30);
    let names: Vec<String> = s
        .platform
        .attributes
        .partner_attributes()
        .iter()
        .take(12)
        .map(|d| d.name.clone())
        .collect();
    let plan = CampaignPlan::binary_in_ad("engine", &names, Encoding::CodebookToken);
    let receipt = s
        .provider
        .run_plan(&mut s.platform, &plan, s.optin_audience)
        .expect("plan runs");

    let mut sites = SiteRegistry::new();
    sites.create("feed.example", 2);
    sites.create("news.example", 1);

    let engine = Engine::new(EngineConfig {
        shards,
        session: SessionConfig {
            views_per_user_per_day: 6.0,
            days: 5,
        },
        seed: SEED,
        ..EngineConfig::default()
    });
    let extension_users: BTreeSet<UserId> = s.opted_in.iter().copied().collect();
    let outcome = engine.run(&mut s.platform, &sites, &s.users, &extension_users);

    let invoices = s
        .provider
        .accounts
        .iter()
        .map(|&a| s.platform.invoice(a))
        .collect();
    let reports = receipt
        .placed
        .iter()
        .filter(|p| p.approved)
        .map(|p| {
            s.platform
                .ad_report(receipt.account, p.ad)
                .expect("placed ad reports")
        })
        .collect();
    let client = TreadClient::new(s.provider.codebook.clone(), &s.platform.attributes);
    let reveals = outcome
        .extensions
        .iter()
        .map(|(&u, log)| (u, client.decode_log(log, |_| None).has))
        .collect();
    (
        invoices,
        reports,
        reveals,
        outcome.report.impressions as usize,
    )
}

#[test]
fn shard_count_does_not_change_any_output() {
    let (invoices1, reports1, reveals1, impressions1) = run_with_shards(1);
    assert!(impressions1 > 0, "the run must actually deliver ads");
    assert!(
        reveals1.values().any(|has| !has.is_empty()),
        "some opted-in user must decode a Tread"
    );
    for shards in [2, 8] {
        let (invoices_n, reports_n, reveals_n, impressions_n) = run_with_shards(shards);
        assert_eq!(invoices1, invoices_n, "invoices differ at {shards} shards");
        assert_eq!(reports1, reports_n, "ad reports differ at {shards} shards");
        assert_eq!(reveals1, reveals_n, "reveals differ at {shards} shards");
        assert_eq!(impressions1, impressions_n);
    }
}

/// Synthetic but key-unique event soup: distinct `(user, user_seq)` pairs
/// with colliding timestamps, the shape a real tick produces.
fn synthetic_events(n: usize) -> Vec<ShardEvent> {
    (0..n)
        .map(|i| ShardEvent::PixelFire {
            at: SimTime((i % 7) as u64),
            user: UserId((i % 13) as u64),
            user_seq: (i / 13) as u64,
            pixel: PixelId(1),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging is invariant to how events are partitioned into batches:
    /// any assignment of events to any number of shards, in any order,
    /// merges to the single-batch result.
    #[test]
    fn merge_is_permutation_invariant(
        n in 1usize..80,
        assignment in prop::collection::vec(0usize..8, 80..81),
    ) {
        let events = synthetic_events(n);
        let canonical = merge_batches(vec![events.clone()]);

        let mut batches: Vec<Vec<ShardEvent>> = vec![Vec::new(); 8];
        for (i, e) in events.iter().enumerate() {
            batches[assignment[i]].push(*e);
        }
        // Batch arrival order is scheduling-dependent in real runs; model
        // that by reversing it.
        batches.reverse();
        prop_assert_eq!(merge_batches(batches), canonical);
    }
}
