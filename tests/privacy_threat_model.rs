//! Integration test: the §3.1 threat model, asserted across crates.
//!
//! The provider's entire observable state after a run is its
//! [`ProviderView`]; these tests check it contains aggregates only, that
//! the linkage assessment responds to the platform's reporting posture,
//! and that the enforcement/suspension path cannot be bypassed.

use treads_repro::adsim_types::Money;
use treads_repro::treads::encoding::Encoding;
use treads_repro::treads::planner::CampaignPlan;
use treads_repro::treads::privacy::{assess_view, count_inference, LinkageRisk};
use treads_repro::workload::CohortScenario;

fn cohort_view(
    seed: u64,
    optin: usize,
    exact: bool,
) -> (treads_repro::treads::ProviderView, usize) {
    let mut s = CohortScenario::setup(seed, optin + 30, optin);
    s.platform.config.auction.competitor_rate = 0.0;
    if exact {
        s.platform.config.reach_floor = 0;
        s.platform.config.reach_granularity = 1;
    }
    let names: Vec<String> = s
        .platform
        .attributes
        .partner_attributes()
        .iter()
        .take(12)
        .map(|d| d.name.clone())
        .collect();
    // Guarantee a victim: first opted user holds the first probe.
    let victim_attr = s.platform.attributes.id_of(&names[0]).expect("attr");
    s.platform
        .profiles
        .grant_attribute(s.opted_in[0], victim_attr)
        .expect("user");
    let plan = CampaignPlan::binary_in_ad("probe", &names, Encoding::CodebookToken);
    let receipt = s
        .provider
        .run_plan(&mut s.platform, &plan, s.optin_audience)
        .expect("plan runs");
    for _ in 0..40 {
        for &u in &s.opted_in.clone() {
            s.platform.browse(u).expect("user exists");
        }
    }
    (s.provider.view(&s.platform, &receipt).expect("view"), optin)
}

#[test]
fn provider_view_is_aggregate_only() {
    let (view, _) = cohort_view(1, 25, false);
    // Structural: the view type carries no user identifiers; check the
    // serialized form never mentions a user id token.
    for stat in &view.stats {
        assert!(stat.report.impressions >= stat.report.estimated_reach);
    }
    let inferences = count_inference(&view);
    assert_eq!(inferences.len(), view.stats.len());
    // Coarse reporting: every delivered Tread is below-floor at this scale.
    for inf in &inferences {
        assert!(inf.below_floor || inf.estimated_holders.is_some());
        assert!(
            inf.below_floor,
            "25-user cohort must stay under the 1000 floor"
        );
    }
}

#[test]
fn coarse_reporting_blocks_linkage() {
    let (view, optin) = cohort_view(2, 25, false);
    assert_eq!(assess_view(&view, false, optin).worst, LinkageRisk::Safe);
}

#[test]
fn exact_reporting_ablation_enables_the_attack() {
    let (view, optin) = cohort_view(3, 1, true);
    assert_eq!(
        assess_view(&view, true, optin).worst,
        LinkageRisk::Deanonymized,
        "a cohort of one with exact reach is fully deanonymized"
    );
    let (view, optin) = cohort_view(4, 2, true);
    assert_eq!(
        assess_view(&view, true, optin).worst,
        LinkageRisk::NarrowedTo { candidates: 2 }
    );
}

#[test]
fn suspended_provider_cannot_continue() {
    use treads_repro::adplatform::{Platform, PlatformConfig};
    use treads_repro::treads::provider::TransparencyProvider;

    let mut platform = Platform::us_2018(PlatformConfig::default());
    let mut provider = TransparencyProvider::register(&mut platform, "KYD", 5, Money::dollars(10))
        .expect("provider registers");
    let (_, audience) = provider
        .setup_page_optin(&mut platform)
        .expect("page opt-in");
    let names: Vec<String> = platform
        .attributes
        .partner_attributes()
        .iter()
        .map(|d| d.name.clone())
        .collect();
    let plan = CampaignPlan::binary_in_ad("big", &names, Encoding::CodebookToken);
    provider
        .run_plan(&mut platform, &plan, audience)
        .expect("plan runs");
    // 507 template-identical singleton ads on one account → flagged.
    platform.run_enforcement_sweep();
    assert!(platform.suspended.contains(&provider.account()));
    // Every further operation on the account fails.
    assert!(provider.setup_page_optin(&mut platform).is_err());
    assert!(provider.run_plan(&mut platform, &plan, audience).is_err());
}
