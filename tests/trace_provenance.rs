//! Integration test: causal tracing is a pure observer.
//!
//! DESIGN.md §13's contract, pinned from outside the crates:
//!
//! * **On/off byte-identity.** A traced run (full sampling) produces
//!   durable outputs byte-identical to an untraced run, on both the batch
//!   engine and the serving front end, at 1, 2, and 8 shards — tracing
//!   draws no randomness and touches no simulation state.
//! * **Shard-count-invariant ids.** Trace ids are pure hashes of each
//!   request's canonical key, so the retained id set — including the
//!   always-retained tail set (sheds, faults) — is identical across shard
//!   counts.
//! * **Winner provenance.** In a fully-sampled serving run, every served
//!   page has a retained trace whose auction events name exactly the ads
//!   the page carries.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

use treads_repro::adplatform::attributes::{AttributeCatalog, AttributeSource};
use treads_repro::adplatform::billing::Invoice;
use treads_repro::adplatform::campaign::AdCreative;
use treads_repro::adplatform::delivery::DeliveryStats;
use treads_repro::adplatform::profile::Gender;
use treads_repro::adplatform::reporting::Impression;
use treads_repro::adplatform::targeting::{TargetingExpr, TargetingSpec};
use treads_repro::adplatform::{Platform, PlatformConfig};
use treads_repro::adsim_types::{Money, UserId};
use treads_repro::engine::{Engine, EngineConfig, ResilienceOptions, DAY_MS};
use treads_repro::resilience::FaultPlan;
use treads_repro::serving::{OpportunityRequest, Response, ServingConfig, ServingEngine};
use treads_repro::telemetry::{Telemetry, TraceConfig, TraceId};
use treads_repro::websim::{ArrivalSchedule, ExtensionLog, SessionConfig, SiteRegistry};

/// Every durable output the byte-identity claims cover.
#[derive(Debug, PartialEq)]
struct Footprint {
    invoice: Invoice,
    log: Vec<Impression>,
    stats: DeliveryStats,
    extensions: BTreeMap<UserId, ExtensionLog>,
}

struct Fixture {
    platform: Platform,
    sites: SiteRegistry,
    users: Vec<UserId>,
    extension_users: BTreeSet<UserId>,
    account: treads_repro::adsim_types::AccountId,
}

fn fixture(seed: u64, population: u64) -> Fixture {
    let mut catalog = AttributeCatalog::new();
    catalog.register("Interest: coffee", AttributeSource::Platform, None, 0.3);
    let mut platform = Platform::new(
        PlatformConfig {
            seed,
            frequency_cap: 4,
            ..PlatformConfig::default()
        },
        catalog,
    );
    let adv = platform.register_advertiser("adv");
    let account = platform.open_account(adv).expect("account");
    let campaign = platform
        .create_campaign(account, "c", Money::dollars(25), None)
        .expect("campaign");
    platform
        .submit_ad(
            campaign,
            AdCreative::text("Hello", "World"),
            TargetingSpec::including(TargetingExpr::Everyone),
        )
        .expect("ad");
    let users: Vec<UserId> = (0..population)
        .map(|i| platform.register_user(20 + (i % 50) as u8, Gender::Female, "Ohio", "43004"))
        .collect();
    let mut sites = SiteRegistry::new();
    sites.create("feed.example", 2);
    let with_pixel = sites.create("shop.example", 1);
    let pixel = platform.create_pixel(account, "shop pixel").expect("pixel");
    sites.embed_pixel(with_pixel, pixel);
    let extension_users = users.iter().copied().collect();
    Fixture {
        platform,
        sites,
        users,
        extension_users,
        account,
    }
}

fn footprint(f: Fixture, extensions: BTreeMap<UserId, ExtensionLog>) -> Footprint {
    Footprint {
        invoice: f.platform.invoice(f.account),
        log: f.platform.log.all().to_vec(),
        stats: f.platform.stats,
        extensions,
    }
}

const SESSION: SessionConfig = SessionConfig {
    views_per_user_per_day: 6.0,
    days: 2,
};

/// One batch run; `trace` = None runs untraced (disabled telemetry).
fn batch_run(seed: u64, shards: usize, trace: Option<TraceConfig>) -> (Footprint, Vec<TraceId>) {
    let mut f = fixture(seed, 18);
    let engine = Engine::new(EngineConfig {
        shards,
        session: SESSION,
        tick_ms: DAY_MS,
        seed,
        ..EngineConfig::default()
    });
    let mut telemetry = match trace {
        Some(cfg) => {
            let mut t = Telemetry::new();
            t.set_trace_config(cfg);
            t
        }
        None => Telemetry::disabled(),
    };
    let outcome = engine.run_with_telemetry(
        &mut f.platform,
        &f.sites,
        &f.users,
        &f.extension_users,
        &mut telemetry,
    );
    let ids = telemetry.traces().iter().map(|t| t.id).collect();
    let extensions = outcome.extensions;
    (footprint(f, extensions), ids)
}

/// One serving run over the batch session schedule; `trace` = None runs
/// untraced.
fn serving_run(
    seed: u64,
    shards: usize,
    trace: Option<TraceConfig>,
    faults: FaultPlan,
) -> (Footprint, Vec<TraceId>, u64) {
    let mut f = fixture(seed, 18);
    let arrivals = ArrivalSchedule::from_sessions(&f.users, &f.sites.ids(), &SESSION, seed);
    let engine = ServingEngine::new(ServingConfig {
        shards,
        tick_ms: DAY_MS,
        horizon_ms: SESSION.days * DAY_MS,
        seed,
        max_batch: 16,
        max_delay: Duration::from_millis(1),
        queue_watermark: u64::MAX,
        retry_after_ms: 10,
        trace: trace.unwrap_or_else(TraceConfig::disabled),
        ..ServingConfig::default()
    });
    let mut telemetry = match trace {
        Some(_) => Telemetry::new(),
        None => Telemetry::disabled(),
    };
    let options = ResilienceOptions {
        faults,
        ..ResilienceOptions::default()
    };
    let (outcome, _) = engine.serve_with_telemetry(
        &mut f.platform,
        &f.sites,
        &f.extension_users,
        &options,
        &mut telemetry,
        |frontend| {
            let tickets: Vec<_> = arrivals
                .arrivals()
                .iter()
                .map(|a| {
                    frontend.submit(OpportunityRequest {
                        user: a.user,
                        site: a.site,
                        at: a.at,
                    })
                })
                .collect();
            tickets.into_iter().for_each(|t| {
                t.wait();
            });
        },
    );
    let shed = outcome.report.shed;
    let ids = telemetry.traces().iter().map(|t| t.id).collect();
    let extensions = outcome.extensions;
    (footprint(f, extensions), ids, shed)
}

#[test]
fn tracing_on_or_off_is_byte_identical_at_every_shard_count() {
    let seed = 51;
    let (oracle, _) = batch_run(seed, 1, None);
    assert!(!oracle.log.is_empty(), "the oracle must deliver ads");
    let mut sampled_sets: Vec<BTreeSet<TraceId>> = Vec::new();
    for shards in [1usize, 2, 8] {
        let (untraced, none) = batch_run(seed, shards, None);
        assert!(none.is_empty(), "disabled telemetry retains nothing");
        let (traced, ids) = batch_run(seed, shards, Some(TraceConfig::full()));
        assert_eq!(oracle, untraced, "batch diverged at {shards} shards");
        assert_eq!(
            oracle, traced,
            "full-sampling tracing changed batch outcomes at {shards} shards"
        );
        assert!(!ids.is_empty(), "full sampling retains traces");
        sampled_sets.push(ids.into_iter().collect());
    }
    // The retained id set is itself shard-count-invariant: ids are pure
    // hashes of canonical keys and retention is deterministic.
    assert_eq!(sampled_sets[0], sampled_sets[1]);
    assert_eq!(sampled_sets[0], sampled_sets[2]);

    for shards in [1usize, 2, 8] {
        let (untraced, none, _) = serving_run(seed, shards, None, FaultPlan::new());
        assert!(none.is_empty());
        let (traced, ids, _) =
            serving_run(seed, shards, Some(TraceConfig::full()), FaultPlan::new());
        assert_eq!(oracle, untraced, "serving diverged at {shards} shards");
        assert_eq!(
            oracle, traced,
            "full-sampling tracing changed serving outcomes at {shards} shards"
        );
        assert!(!ids.is_empty());
    }
}

#[test]
fn shed_trace_ids_are_always_retained_and_shard_count_invariant() {
    let seed = 97;
    // Deterministic sheds: a brownout rejecting submissions 2..6. Default
    // 1% head sampling — the shed traces survive on the tail path alone.
    let mut shed_sets: Vec<BTreeSet<TraceId>> = Vec::new();
    for shards in [1usize, 2, 8] {
        let (_, ids, shed) = serving_run(
            seed,
            shards,
            Some(TraceConfig::default()),
            FaultPlan::new().brownout(2, 4),
        );
        assert_eq!(shed, 4, "the brownout sheds exactly its window");
        assert!(
            ids.len() >= 4,
            "every shed request keeps a trace (got {} retained)",
            ids.len()
        );
        shed_sets.push(ids.into_iter().collect());
    }
    assert_eq!(shed_sets[0], shed_sets[1], "1 vs 2 shards");
    assert_eq!(shed_sets[0], shed_sets[2], "1 vs 8 shards");
}

#[test]
fn every_served_page_has_a_trace_naming_its_winners() {
    let seed = 23;
    let mut f = fixture(seed, 18);
    let arrivals = ArrivalSchedule::from_sessions(&f.users, &f.sites.ids(), &SESSION, seed);
    let engine = ServingEngine::new(ServingConfig {
        shards: 2,
        tick_ms: DAY_MS,
        horizon_ms: SESSION.days * DAY_MS,
        seed,
        max_batch: 16,
        max_delay: Duration::from_millis(1),
        queue_watermark: u64::MAX,
        retry_after_ms: 10,
        trace: TraceConfig::full(),
        ..ServingConfig::default()
    });
    let mut telemetry = Telemetry::new();
    let (_, answered) = engine.serve_with_telemetry(
        &mut f.platform,
        &f.sites,
        &f.extension_users,
        &ResilienceOptions::default(),
        &mut telemetry,
        |frontend| {
            let tickets: Vec<_> = arrivals
                .arrivals()
                .iter()
                .map(|a| {
                    let req = OpportunityRequest {
                        user: a.user,
                        site: a.site,
                        at: a.at,
                    };
                    (req, frontend.submit(req))
                })
                .collect();
            tickets
                .into_iter()
                .map(|(req, t)| (req, t.wait()))
                .collect::<Vec<_>>()
        },
    );
    assert!(
        (arrivals.len() as u64) < 4096,
        "the workload must fit the trace collector so nothing is evicted"
    );
    let traces = telemetry.traces();
    let mut pages_with_ads = 0u64;
    for (req, resp) in &answered {
        let Response::Served(page) = resp else {
            panic!("a healthy run serves everything");
        };
        if page.slots == 0 {
            continue;
        }
        let won: Vec<u64> = page.ads.iter().map(|a| a.raw()).collect();
        let trace = traces
            .iter()
            .find(|t| t.at == req.at && t.user == req.user.raw() && t.won_ads() == won)
            .unwrap_or_else(|| {
                panic!(
                    "no trace explains user {} at t={} (won {:?})",
                    req.user, req.at.0, won
                )
            });
        assert!(trace.sampled, "full sampling samples every page view");
        assert_eq!(
            trace.spans.first().map(|s| s.name),
            Some("request"),
            "the span tree is rooted at the request"
        );
        pages_with_ads += u64::from(!page.ads.is_empty());
    }
    assert!(pages_with_ads > 0, "the run must actually deliver ads");
}
