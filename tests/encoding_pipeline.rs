//! Integration test: the disclosure pipeline across crates — provider
//! encodes, platform stores and serves, extension captures, client
//! decodes — for every encoding channel and both disclosure channels
//! (in-ad and landing page).

use treads_repro::adplatform::auction::AuctionOutcome;
use treads_repro::adplatform::{Platform, PlatformConfig};
use treads_repro::adsim_types::{Money, SimTime};
use treads_repro::treads::encoding::Encoding;
use treads_repro::treads::planner::CampaignPlan;
use treads_repro::treads::provider::TransparencyProvider;
use treads_repro::treads::TreadClient;
use treads_repro::websim::cookies::CookieJar;
use treads_repro::websim::extension::ExtensionLog;
use treads_repro::websim::landing::{LandingPage, LandingServer};

fn rig(seed: u64) -> (Platform, TransparencyProvider, adsim_helpers::Ids) {
    let mut platform = Platform::us_2018(PlatformConfig {
        seed,
        ..PlatformConfig::default()
    });
    platform.config.auction.competitor_rate = 0.0;
    let provider = TransparencyProvider::register(&mut platform, "KYD", seed, Money::dollars(10))
        .expect("provider registers");
    let (page, audience) = provider
        .setup_page_optin(&mut platform)
        .expect("page opt-in");
    let user = platform.register_user(
        40,
        treads_repro::adplatform::profile::Gender::Male,
        "Vermont",
        "05401",
    );
    let attr = platform.attributes.id_of("Net worth: $2M+").expect("attr");
    platform.profiles.grant_attribute(user, attr).expect("user");
    platform.user_likes_page(user, page).expect("like");
    (platform, provider, adsim_helpers::Ids { user, audience })
}

mod adsim_helpers {
    pub struct Ids {
        pub user: treads_repro::adsim_types::UserId,
        pub audience: treads_repro::adsim_types::AudienceId,
    }
}

fn capture(platform: &mut Platform, user: treads_repro::adsim_types::UserId) -> ExtensionLog {
    let mut log = ExtensionLog::for_user(user);
    for _ in 0..6 {
        if let Ok(AuctionOutcome::Won { ad, .. }) = platform.browse(user) {
            let creative = platform.campaigns.ad(ad).expect("won").creative.clone();
            log.observe(ad, creative, platform.clock.now());
        }
    }
    log
}

#[test]
fn every_in_ad_encoding_survives_the_full_pipeline() {
    for (i, encoding) in [
        Encoding::CodebookToken,
        Encoding::ZeroWidth,
        Encoding::ImageStego,
    ]
    .into_iter()
    .enumerate()
    {
        let (mut platform, mut provider, ids) = rig(100 + i as u64);
        let plan = CampaignPlan::binary_in_ad("pipe", &["Net worth: $2M+"], encoding);
        let receipt = provider
            .run_plan(&mut platform, &plan, ids.audience)
            .expect("plan runs");
        assert_eq!(receipt.approved_count(), 1, "{encoding:?} must pass policy");
        let log = capture(&mut platform, ids.user);
        let client = TreadClient::new(provider.codebook.clone(), &platform.attributes);
        let revealed = client.decode_log(&log, |_| None);
        assert!(
            revealed.has.contains("Net worth: $2M+"),
            "channel {encoding:?} failed the pipeline"
        );
    }
}

#[test]
fn explicit_encoding_dies_at_policy_review() {
    let (mut platform, mut provider, ids) = rig(200);
    let plan = CampaignPlan::binary_in_ad("pipe", &["Net worth: $2M+"], Encoding::Explicit);
    let receipt = provider
        .run_plan(&mut platform, &plan, ids.audience)
        .expect("plan runs");
    assert_eq!(receipt.rejected_count(), 1);
    // Nothing ever delivers.
    let log = capture(&mut platform, ids.user);
    let client = TreadClient::new(provider.codebook.clone(), &platform.attributes);
    assert_eq!(client.decode_log(&log, |_| None).revealed_count(), 0);
}

#[test]
fn landing_page_pipeline_with_click_through() {
    let (mut platform, mut provider, ids) = rig(300);
    let plan =
        CampaignPlan::binary_landing("pipe", &["Net worth: $2M+"], "https://provider.example/r");
    // The provider publishes the landing content server-side.
    let mut server = LandingServer::new("provider.example");
    for planned in &plan.treads {
        if let treads_repro::treads::DisclosureChannel::LandingPage { url } = &planned.tread.channel
        {
            server.publish(LandingPage {
                url: url.clone(),
                content: planned.tread.landing_content().expect("landing content"),
                sets_cookie: true,
            });
        }
    }
    let receipt = provider
        .run_plan(&mut platform, &plan, ids.audience)
        .expect("plan runs");
    assert_eq!(
        receipt.approved_count(),
        1,
        "innocuous creative passes review"
    );

    let log = capture(&mut platform, ids.user);
    let client = TreadClient::new(provider.codebook.clone(), &platform.attributes);
    // The user clicks through with a cookie jar; the fetch closure is the
    // click.
    let mut jar = CookieJar::default();
    let mut t = 0;
    let revealed = client.decode_log(&log, |url| {
        t += 1;
        server.visit(url, &mut jar, SimTime(t))
    });
    assert!(revealed.has.contains("Net worth: $2M+"));
    // And the provider-side access log now holds the cookie linkage the
    // privacy analysis warns about.
    assert_eq!(server.linkage_by_cookie().len(), 1);
}

#[test]
fn codebook_must_match_to_decode() {
    // A client with the wrong codebook cannot read obfuscated Treads —
    // the sharing-at-opt-in step is load-bearing.
    let (mut platform, mut provider, ids) = rig(400);
    let plan = CampaignPlan::binary_in_ad("pipe", &["Net worth: $2M+"], Encoding::CodebookToken);
    provider
        .run_plan(&mut platform, &plan, ids.audience)
        .expect("plan runs");
    let log = capture(&mut platform, ids.user);
    let wrong_book = treads_repro::treads::Codebook::new(999_999);
    let client = TreadClient::new(wrong_book, &platform.attributes);
    let revealed = client.decode_log(&log, |_| None);
    assert_eq!(revealed.revealed_count(), 0);
    assert!(revealed.non_tread_ads > 0);
}
