//! Integration test: the platform delivery contract that makes Treads
//! meaningful.
//!
//! "A user is supposed to see a targeted ad if and only if they satisfy
//! the advertiser's targeting parameters" (§1). Soundness (every received
//! Tread is a true fact) is the security of the mechanism; completeness
//! (every true fact's Tread eventually arrives, given enough browsing) is
//! its utility. Both are asserted here over a generated cohort.

use std::collections::BTreeMap;
use treads_repro::adplatform::auction::AuctionOutcome;
use treads_repro::adsim_types::UserId;
use treads_repro::treads::encoding::Encoding;
use treads_repro::treads::planner::CampaignPlan;
use treads_repro::treads::TreadClient;
use treads_repro::websim::extension::ExtensionLog;
use treads_repro::workload::CohortScenario;

fn cohort_with_plan(
    seed: u64,
    n_attrs: usize,
) -> (
    CohortScenario,
    Vec<String>,
    treads_repro::treads::RunReceipt,
) {
    let mut s = CohortScenario::setup(seed, 80, 40);
    // Quiet auctions so completeness is deterministic.
    s.platform.config.auction.competitor_rate = 0.0;
    let names: Vec<String> = s
        .platform
        .attributes
        .partner_attributes()
        .iter()
        .take(n_attrs)
        .map(|d| d.name.clone())
        .collect();
    let plan = CampaignPlan::binary_in_ad("contract", &names, Encoding::CodebookToken);
    let receipt = s
        .provider
        .run_plan(&mut s.platform, &plan, s.optin_audience)
        .expect("plan runs");
    (s, names, receipt)
}

fn browse_all(s: &mut CohortScenario, rounds: usize) -> BTreeMap<UserId, ExtensionLog> {
    let mut extensions: BTreeMap<_, _> = s
        .opted_in
        .iter()
        .map(|&u| (u, ExtensionLog::for_user(u)))
        .collect();
    for _ in 0..rounds {
        for &u in &s.opted_in.clone() {
            if let Ok(AuctionOutcome::Won { ad, .. }) = s.platform.browse(u) {
                let creative = s.platform.campaigns.ad(ad).expect("won").creative.clone();
                extensions.get_mut(&u).expect("opted user").observe(
                    ad,
                    creative,
                    s.platform.clock.now(),
                );
            }
        }
    }
    extensions
}

#[test]
fn soundness_every_decoded_fact_is_true() {
    let (mut s, _names, _receipt) = cohort_with_plan(11, 60);
    let extensions = browse_all(&mut s, 80);
    let client = TreadClient::new(s.provider.codebook.clone(), &s.platform.attributes);
    let mut total_decoded = 0;
    for &u in &s.opted_in {
        let profile = client.decode_log(&extensions[&u], |_| None);
        for name in &profile.has {
            let id = s.platform.attributes.id_of(name).expect("catalog attr");
            assert!(
                s.platform.profile(u).expect("user").has_attribute(id),
                "user {u} decoded false fact {name}"
            );
            total_decoded += 1;
        }
    }
    assert!(total_decoded > 0, "the cohort must decode something");
}

#[test]
fn completeness_every_held_attribute_is_eventually_revealed() {
    let (mut s, names, receipt) = cohort_with_plan(13, 30);
    // Plenty of browsing: every opted user holding a planned attribute
    // must eventually receive its Tread.
    let extensions = browse_all(&mut s, 120);
    let client = TreadClient::new(s.provider.codebook.clone(), &s.platform.attributes);
    let planned: std::collections::BTreeSet<&String> = names.iter().collect();
    assert_eq!(receipt.approved_count(), 30);
    for &u in &s.opted_in {
        let truth: std::collections::BTreeSet<String> = s
            .platform
            .profile(u)
            .expect("user")
            .attributes
            .iter()
            .filter_map(|&id| s.platform.attributes.get(id))
            .filter(|d| planned.contains(&d.name))
            .map(|d| d.name.clone())
            .collect();
        let revealed = client.decode_log(&extensions[&u], |_| None).has;
        assert_eq!(
            revealed, truth,
            "user {u}: revealed set must equal held∩planned"
        );
    }
}

#[test]
fn non_opted_users_never_receive_treads() {
    let (mut s, _names, receipt) = cohort_with_plan(17, 40);
    let outsiders: Vec<_> = s
        .users
        .iter()
        .filter(|u| !s.opted_in.contains(u))
        .copied()
        .collect();
    assert!(!outsiders.is_empty());
    for _ in 0..40 {
        for &u in &outsiders {
            s.platform.browse(u).expect("user exists");
        }
    }
    let tread_ads: std::collections::BTreeSet<_> = receipt.placed.iter().map(|p| p.ad).collect();
    for &u in &outsiders {
        for imp in s.platform.log.seen_by(u) {
            assert!(
                !tread_ads.contains(&imp.ad),
                "non-opted user {u} received Tread {}",
                imp.ad
            );
        }
    }
}

#[test]
fn exclusion_treads_prove_false_or_missing() {
    let (mut s, names, _receipt) = cohort_with_plan(19, 10);
    // Add an exclusion plan over the same attributes.
    let plan = CampaignPlan::exclusion_in_ad("not", &names, Encoding::CodebookToken);
    let receipt = s
        .provider
        .run_plan(&mut s.platform, &plan, s.optin_audience)
        .expect("plan runs");
    assert_eq!(receipt.approved_count(), 10);
    let extensions = browse_all(&mut s, 120);
    let client = TreadClient::new(s.provider.codebook.clone(), &s.platform.attributes);
    for &u in &s.opted_in {
        let profile = client.decode_log(&extensions[&u], |_| None);
        for name in &profile.lacks_or_missing {
            let id = s.platform.attributes.id_of(name).expect("catalog attr");
            assert!(
                !s.platform.profile(u).expect("user").has_attribute(id),
                "user {u} decoded 'lacks {name}' but actually has it"
            );
        }
    }
}
