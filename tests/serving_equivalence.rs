//! Integration test: the serving front end is the batch engine, reshaped.
//!
//! DESIGN.md §12's contract: feed the serving stack the *same opportunity
//! stream* the batch engine simulates (each user's session substream,
//! flattened to arrivals by [`ArrivalSchedule::from_sessions`]) and every
//! durable output — invoices, the exact impression log, delivery stats,
//! extension logs — is byte-identical to `Engine::run`, at any shard
//! count and under any micro-batch composition. A property test drives
//! random workload shapes through 1, 2, and 8 serving shards against the
//! batch oracle; a separate test pins the other half of the contract:
//! a shed request is never billed.

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;
use treads_repro::adplatform::attributes::{AttributeCatalog, AttributeSource};
use treads_repro::adplatform::billing::Invoice;
use treads_repro::adplatform::campaign::AdCreative;
use treads_repro::adplatform::delivery::DeliveryStats;
use treads_repro::adplatform::profile::Gender;
use treads_repro::adplatform::reporting::Impression;
use treads_repro::adplatform::targeting::{TargetingExpr, TargetingSpec};
use treads_repro::adplatform::{Platform, PlatformConfig};
use treads_repro::adsim_types::{Money, UserId};
use treads_repro::engine::{Engine, EngineConfig, ResilienceOptions, DAY_MS};
use treads_repro::resilience::FaultPlan;
use treads_repro::serving::{OpportunityRequest, ServingConfig, ServingEngine};
use treads_repro::telemetry::Telemetry;
use treads_repro::websim::{ArrivalSchedule, ExtensionLog, SessionConfig, SiteRegistry};

/// Every durable output the equivalence contract covers.
#[derive(Debug, PartialEq)]
struct Footprint {
    invoice: Invoice,
    log: Vec<Impression>,
    stats: DeliveryStats,
    extensions: BTreeMap<UserId, ExtensionLog>,
}

struct Fixture {
    platform: Platform,
    sites: SiteRegistry,
    users: Vec<UserId>,
    extension_users: BTreeSet<UserId>,
    account: treads_repro::adsim_types::AccountId,
}

/// A small but fully-featured platform: one everyone-targeted campaign, a
/// pixel-carrying site, every user running the extension. Deterministic
/// in `(seed, population)`, so the oracle and each serving run rebuild it
/// identically.
fn fixture(seed: u64, population: u64) -> Fixture {
    let mut catalog = AttributeCatalog::new();
    catalog.register("Interest: coffee", AttributeSource::Platform, None, 0.3);
    let mut platform = Platform::new(
        PlatformConfig {
            seed,
            frequency_cap: 4,
            ..PlatformConfig::default()
        },
        catalog,
    );
    let adv = platform.register_advertiser("adv");
    let account = platform.open_account(adv).expect("account");
    let campaign = platform
        .create_campaign(account, "c", Money::dollars(25), None)
        .expect("campaign");
    platform
        .submit_ad(
            campaign,
            AdCreative::text("Hello", "World"),
            TargetingSpec::including(TargetingExpr::Everyone),
        )
        .expect("ad");
    let users: Vec<UserId> = (0..population)
        .map(|i| platform.register_user(20 + (i % 50) as u8, Gender::Female, "Ohio", "43004"))
        .collect();
    let mut sites = SiteRegistry::new();
    sites.create("feed.example", 2);
    let with_pixel = sites.create("shop.example", 1);
    let pixel = platform.create_pixel(account, "shop pixel").expect("pixel");
    sites.embed_pixel(with_pixel, pixel);
    let extension_users = users.iter().copied().collect();
    Fixture {
        platform,
        sites,
        users,
        extension_users,
        account,
    }
}

/// The batch oracle: `Engine::run` over the generated sessions.
fn batch_footprint(seed: u64, population: u64, session: SessionConfig) -> Footprint {
    let mut f = fixture(seed, population);
    let engine = Engine::new(EngineConfig {
        shards: 1,
        session,
        tick_ms: DAY_MS,
        seed,
        ..EngineConfig::default()
    });
    let outcome = engine.run(&mut f.platform, &f.sites, &f.users, &f.extension_users);
    Footprint {
        invoice: f.platform.invoice(f.account),
        log: f.platform.log.all().to_vec(),
        stats: f.platform.stats,
        extensions: outcome.extensions,
    }
}

/// The same workload offered request-by-request through the serving stack
/// at `shards` workers, with admission wide open (the watermark is about
/// wall-clock pressure, not simulated behaviour).
fn serving_footprint(
    seed: u64,
    population: u64,
    session: SessionConfig,
    shards: usize,
    max_batch: usize,
) -> Footprint {
    let mut f = fixture(seed, population);
    let arrivals = ArrivalSchedule::from_sessions(&f.users, &f.sites.ids(), &session, seed);
    let engine = ServingEngine::new(ServingConfig {
        shards,
        tick_ms: DAY_MS,
        horizon_ms: session.days * DAY_MS,
        seed,
        max_batch,
        max_delay: Duration::from_millis(1),
        queue_watermark: u64::MAX,
        retry_after_ms: 10,
        ..ServingConfig::default()
    });
    let (outcome, answered) =
        engine.serve(&mut f.platform, &f.sites, &f.extension_users, |frontend| {
            let tickets: Vec<_> = arrivals
                .arrivals()
                .iter()
                .map(|a| {
                    frontend.submit(OpportunityRequest {
                        user: a.user,
                        site: a.site,
                        at: a.at,
                    })
                })
                .collect();
            tickets
                .into_iter()
                .map(|t| t.wait())
                .filter(|r| r.is_served())
                .count()
        });
    assert_eq!(
        answered,
        arrivals.len(),
        "with admission wide open and no faults, nothing sheds"
    );
    assert_eq!(outcome.report.shed, 0);
    Footprint {
        invoice: f.platform.invoice(f.account),
        log: f.platform.log.all().to_vec(),
        stats: f.platform.stats,
        extensions: outcome.extensions,
    }
}

#[test]
fn serving_matches_batch_oracle_at_every_shard_count() {
    let session = SessionConfig {
        views_per_user_per_day: 8.0,
        days: 3,
    };
    let oracle = batch_footprint(31, 24, session);
    assert!(
        !oracle.log.is_empty(),
        "the oracle run must actually deliver ads"
    );
    for shards in [1, 2, 8] {
        let served = serving_footprint(31, 24, session, shards, 32);
        assert_eq!(oracle, served, "serving diverged at {shards} shards");
    }
}

#[test]
fn micro_batch_composition_never_changes_outcomes() {
    let session = SessionConfig {
        views_per_user_per_day: 6.0,
        days: 2,
    };
    let oracle = batch_footprint(77, 12, session);
    for max_batch in [1, 7, 256] {
        let served = serving_footprint(77, 12, session, 2, max_batch);
        assert_eq!(
            oracle, served,
            "batch size {max_batch} leaked into outcomes"
        );
    }
}

#[test]
fn shed_requests_are_never_billed() {
    let session = SessionConfig {
        views_per_user_per_day: 6.0,
        days: 2,
    };
    let seed = 13;
    let mut f = fixture(seed, 10);
    let arrivals = ArrivalSchedule::from_sessions(&f.users, &f.sites.ids(), &session, seed);
    assert!(arrivals.len() > 8, "need enough traffic to shed some");
    // Deterministically shed submissions 2..6 via a scheduled brownout —
    // admission shedding depends on wall-clock queue depth, so faults are
    // the reproducible way to force rejections.
    let options = ResilienceOptions {
        faults: FaultPlan::new().brownout(2, 4),
        ..ResilienceOptions::default()
    };
    let engine = ServingEngine::new(ServingConfig {
        shards: 2,
        tick_ms: DAY_MS,
        horizon_ms: session.days * DAY_MS,
        seed,
        queue_watermark: u64::MAX,
        ..ServingConfig::default()
    });
    let mut telemetry = Telemetry::disabled();
    let (outcome, responses) = engine.serve_with_telemetry(
        &mut f.platform,
        &f.sites,
        &f.extension_users,
        &options,
        &mut telemetry,
        |frontend| {
            let tickets: Vec<_> = arrivals
                .arrivals()
                .iter()
                .map(|a| {
                    frontend.submit(OpportunityRequest {
                        user: a.user,
                        site: a.site,
                        at: a.at,
                    })
                })
                .collect();
            tickets.into_iter().map(|t| t.wait()).collect::<Vec<_>>()
        },
    );
    assert_eq!(outcome.report.shed_brownout, 4);
    assert_eq!(outcome.report.shed, 4);
    // Billing covers exactly the ads on served pages: every impression in
    // the platform's log was handed to some answered request, and the
    // invoice's impression count agrees. Shed requests left no trace.
    let served_ads: u64 = responses
        .iter()
        .filter_map(|r| r.page())
        .map(|p| p.ads.len() as u64)
        .sum();
    assert_eq!(outcome.report.impressions, served_ads);
    assert_eq!(f.platform.log.all().len() as u64, served_ads);
    let invoice = f.platform.invoice(f.account);
    let billed: Money = f.platform.log.all().iter().map(|i| i.price).sum();
    assert_eq!(invoice.gross, billed, "the invoice bills the log, exactly");
    // And the extension logs (what users saw) agree with what was billed.
    let observed: u64 = outcome.extensions.values().map(|l| l.len() as u64).sum();
    assert_eq!(observed, served_ads);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random workload shapes: any seed, population, intensity, and
    /// horizon produce a serving run byte-identical to the batch oracle
    /// at 1, 2, and 8 shards.
    #[test]
    fn random_arrival_schedules_match_the_oracle(
        seed in 0u64..1_000,
        population in 6u64..16,
        views in 1.0f64..6.0,
        days in 1u64..3,
    ) {
        let session = SessionConfig { views_per_user_per_day: views, days };
        let oracle = batch_footprint(seed, population, session);
        for shards in [1usize, 2, 8] {
            let served = serving_footprint(seed, population, session, shards, 16);
            prop_assert_eq!(&oracle, &served, "serving diverged at {} shards", shards);
        }
    }
}
