//! Integration test: instrumentation is deterministic and inert.
//!
//! The telemetry contract (DESIGN.md "Observability") has two halves.
//! First, instrumentation must be *inert*: an instrumented engine run
//! mutates the platform bit-identically to an uninstrumented one, because
//! recording never draws randomness and never feeds back into a decision.
//! Second, the *deterministic slice* of the telemetry itself — merged
//! counters, value histograms, and the flight journal — must be invariant
//! in the shard count, exactly like invoices and impression logs; only the
//! `*_ns` wall-time histograms may differ run to run. A property test then
//! checks the algebra underneath: histogram merging is commutative and
//! associative, so per-shard registries can fold in any grouping.

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use treads_repro::adsim_types::UserId;
use treads_repro::engine::{Engine, EngineConfig, Telemetry};
use treads_repro::telemetry::{FlightEvent, Histogram};
use treads_repro::treads::encoding::Encoding;
use treads_repro::treads::planner::CampaignPlan;
use treads_repro::websim::{SessionConfig, SiteRegistry};
use treads_repro::workload::CohortScenario;

const SEED: u64 = 47;

/// One instrumented engine run at the given shard count; the scenario is
/// rebuilt from scratch (setup is itself seed-deterministic).
fn run_instrumented(shards: usize) -> (RunOutputs, Telemetry) {
    let mut s = CohortScenario::setup(SEED, 50, 20);
    // Place ads the engine can deliver: a Tread plan over a slice of the
    // partner attributes, exactly as the determinism test does.
    let names: Vec<String> = s
        .platform
        .attributes
        .partner_attributes()
        .iter()
        .take(8)
        .map(|d| d.name.clone())
        .collect();
    let plan = CampaignPlan::binary_in_ad("telemetry", &names, Encoding::CodebookToken);
    s.provider
        .run_plan(&mut s.platform, &plan, s.optin_audience)
        .expect("plan runs");
    let mut sites = SiteRegistry::new();
    sites.create("feed.example", 2);
    sites.create("news.example", 1);
    let engine = Engine::new(EngineConfig {
        shards,
        session: SessionConfig {
            views_per_user_per_day: 5.0,
            days: 4,
        },
        seed: SEED,
        ..EngineConfig::default()
    });
    let extension_users: BTreeSet<UserId> = s.opted_in.iter().copied().collect();
    let (outcome, telemetry) =
        engine.run_instrumented(&mut s.platform, &sites, &s.users, &extension_users);
    let outputs = RunOutputs {
        impressions: outcome.report.impressions,
        page_views: outcome.report.page_views,
        pixel_fires: outcome.report.pixel_fires,
        log: format!("{:?}", s.platform.log.all()),
        stats: format!("{:?}", s.platform.stats),
    };
    (outputs, telemetry)
}

#[derive(Debug, PartialEq, Eq)]
struct RunOutputs {
    impressions: u64,
    page_views: u64,
    pixel_fires: u64,
    log: String,
    stats: String,
}

/// The shard-count-invariant slice of a telemetry snapshot.
fn deterministic_view(
    t: &Telemetry,
) -> (
    BTreeMap<String, u64>,
    BTreeMap<String, Histogram>,
    Vec<FlightEvent>,
) {
    let counters = t
        .metrics()
        .counters()
        .iter()
        .map(|(k, v)| (k.to_string(), *v))
        .collect();
    let histograms = t
        .metrics()
        .histograms()
        .iter()
        .filter(|(k, _)| !k.ends_with("_ns"))
        .map(|(k, h)| (k.to_string(), h.clone()))
        .collect();
    let flight = t.flight().events().copied().collect();
    (counters, histograms, flight)
}

#[test]
fn instrumented_runs_are_shard_count_invariant() {
    let (out1, t1) = run_instrumented(1);
    assert!(out1.impressions > 0, "the run must actually deliver ads");
    let view1 = deterministic_view(&t1);
    // The root package always compiles telemetry in, so the counters must
    // actually be populated; sanity-check a few against the run report
    // before comparing across shards.
    assert_eq!(t1.metrics().counter("engine.impressions"), out1.impressions);
    assert_eq!(t1.metrics().counter("engine.page_views"), out1.page_views);
    assert_eq!(t1.metrics().counter("engine.pixel_fires"), out1.pixel_fires);
    assert!(!view1.2.is_empty(), "flight journal captured events");
    for shards in [2, 8] {
        let (out_n, t_n) = run_instrumented(shards);
        // The simulation itself is byte-identical…
        assert_eq!(out1, out_n, "platform outputs differ at {shards} shards");
        // …and so is the deterministic slice of the telemetry.
        let view_n = deterministic_view(&t_n);
        assert_eq!(
            view1.0, view_n.0,
            "merged counters differ at {shards} shards"
        );
        assert_eq!(
            view1.1, view_n.1,
            "value histograms differ at {shards} shards"
        );
        assert_eq!(
            view1.2, view_n.2,
            "flight journal differs at {shards} shards"
        );
    }
}

/// A histogram over the shared small-value bounds, filled from a vector.
fn histo_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::small_values();
    for &v in values {
        h.observe(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram merge is commutative: a⊎b = b⊎a.
    #[test]
    fn histogram_merge_commutes(
        a in prop::collection::vec(0u64..600, 0..40),
        b in prop::collection::vec(0u64..600, 0..40),
    ) {
        let (ha, hb) = (histo_of(&a), histo_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// Histogram merge is associative: (a⊎b)⊎c = a⊎(b⊎c) — and both equal
    /// observing every value into one histogram, so per-shard registries
    /// can fold in any grouping without changing the merged totals.
    #[test]
    fn histogram_merge_associates(
        a in prop::collection::vec(0u64..600, 0..40),
        b in prop::collection::vec(0u64..600, 0..40),
        c in prop::collection::vec(0u64..600, 0..40),
    ) {
        let (ha, hb, hc) = (histo_of(&a), histo_of(&b), histo_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(left, histo_of(&all));
    }
}
