//! Integration test: the paper's §3.1 validation, asserted end to end.
//!
//! This is experiment E1 as a test — the full 507-attribute plan against
//! the two-author scenario must reproduce every observation the paper
//! reports, on multiple seeds.

use treads_repro::adsim_types::Money;
use treads_repro::treads::encoding::Encoding;
use treads_repro::treads::planner::CampaignPlan;
use treads_repro::treads::TreadClient;
use treads_repro::workload::ValidationScenario;

fn run_validation(seed: u64) -> (usize, usize, Money, bool, bool) {
    let mut s = ValidationScenario::setup(seed);
    let names = s.partner_attribute_names();
    let plan = CampaignPlan::binary_in_ad("us-partner", &names, Encoding::CodebookToken);
    let mut receipt = s
        .provider
        .run_plan(&mut s.platform, &plan, s.optin_audience)
        .expect("plan runs");
    s.provider
        .run_control(&mut s.platform, &mut receipt, s.optin_audience)
        .expect("control runs");
    assert_eq!(
        receipt.approved_count(),
        507,
        "all Treads must be placeable"
    );

    let logs = s.browse_authors(60);
    let client = TreadClient::new(s.provider.codebook.clone(), &s.platform.attributes);
    let a = client.decode_log(&logs[&s.author_a], |_| None);
    let b = client.decode_log(&logs[&s.author_b], |_| None);
    let control_ad = receipt.control.expect("control placed").1;
    let a_control = logs[&s.author_a].distinct_ads().contains(&control_ad);
    let b_control = logs[&s.author_b].distinct_ads().contains(&control_ad);
    let invoice = s
        .provider
        .view(&s.platform, &receipt)
        .expect("view")
        .invoice;
    (a.has.len(), b.has.len(), invoice.due, a_control, b_control)
}

#[test]
fn validation_reproduces_paper_observations() {
    let (a_revealed, b_revealed, due, a_control, b_control) = run_validation(42);
    assert_eq!(
        a_revealed, 11,
        "author A must decode his 11 partner attributes"
    );
    assert_eq!(b_revealed, 0, "author B has no broker dossier");
    assert_eq!(due, Money::ZERO, "the validation cost the paper $0");
    assert!(a_control && b_control, "both authors reachable via control");
}

#[test]
fn validation_outcome_is_seed_independent() {
    // Design-choice ablation 1 (DESIGN.md): the conclusion must not
    // depend on the auction RNG seed.
    for seed in [1u64, 7, 99, 1234] {
        let (a_revealed, b_revealed, due, a_control, b_control) = run_validation(seed);
        assert_eq!(a_revealed, 11, "seed {seed}");
        assert_eq!(b_revealed, 0, "seed {seed}");
        assert_eq!(due, Money::ZERO, "seed {seed}");
        assert!(a_control && b_control, "seed {seed}");
    }
}

#[test]
fn validation_reveals_exactly_the_ground_truth_set() {
    let mut s = ValidationScenario::setup(5);
    let names = s.partner_attribute_names();
    let plan = CampaignPlan::binary_in_ad("us-partner", &names, Encoding::CodebookToken);
    s.provider
        .run_plan(&mut s.platform, &plan, s.optin_audience)
        .expect("plan runs");
    let logs = s.browse_authors(60);
    let client = TreadClient::new(s.provider.codebook.clone(), &s.platform.attributes);
    let a = client.decode_log(&logs[&s.author_a], |_| None);
    let expected: std::collections::BTreeSet<String> =
        treads_repro::broker::catalog::VALIDATION_ATTRIBUTES
            .iter()
            .map(|s| s.to_string())
            .collect();
    assert_eq!(a.has, expected);
    // Soundness: nothing decoded that is not a true platform fact.
    for name in &a.has {
        let id = s.platform.attributes.id_of(name).expect("catalog attr");
        assert!(
            s.platform
                .profile(s.author_a)
                .expect("author")
                .has_attribute(id),
            "decoded a false fact: {name}"
        );
    }
}

#[test]
fn platform_own_transparency_misses_what_treads_reveal() {
    let s = ValidationScenario::setup(9);
    let prefs = s
        .platform
        .user_ad_preferences(s.author_a)
        .expect("author exists");
    // The preferences page lists platform attributes only.
    assert!(!prefs.is_empty());
    for name in &prefs {
        let id = s.platform.attributes.id_of(name).expect("attr");
        let def = s.platform.attributes.get(id).expect("attr");
        assert!(
            !def.source.is_partner(),
            "ad preferences leaked partner attribute {name}"
        );
    }
}
