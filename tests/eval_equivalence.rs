//! Integration test: compiled targeting evaluation is **output-equivalent**
//! to the tree-walking interpreter, at every shard count.
//!
//! The compiled program store (`adplatform::compiled`) must be a pure
//! optimization: switching `EvalMode` can never change a platform output,
//! because a compiled program evaluates the exact same predicate as
//! `TargetingSpec::matches` (full evaluation, identical float paths,
//! symbol equality standing in for string equality through the shared
//! interner) and auction RNG draws do not depend on how eligibility was
//! computed. This test drives whole engine runs — random extra campaigns
//! layered over a Tread campaign plan, random profile mutations including
//! coordinates for radius predicates — under every (shards ∈ {1, 2, 8}) ×
//! (mode ∈ {Compiled, Tree}) combination and requires byte-identical
//! invoices, ad reports, and decoded Tread sets.

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use treads_repro::adplatform::billing::Invoice;
use treads_repro::adplatform::campaign::AdCreative;
use treads_repro::adplatform::compiled::EvalMode;
use treads_repro::adplatform::reporting::AdReport;
use treads_repro::adplatform::targeting::{TargetingExpr, TargetingSpec};
use treads_repro::adsim_types::{AttributeId, Money, UserId};
use treads_repro::engine::{Engine, EngineConfig};
use treads_repro::treads::encoding::Encoding;
use treads_repro::treads::planner::CampaignPlan;
use treads_repro::treads::TreadClient;
use treads_repro::websim::{SessionConfig, SiteRegistry};
use treads_repro::workload::CohortScenario;

const SEED: u64 = 53;
const POPULATION: usize = 48;
const OPTIN: usize = 16;

/// A proptest-generated extra ad: `(shape, a, b)` where `shape` selects
/// the targeting structure and `a`/`b` fill in its parameters. Shapes
/// cover every compiled opcode: attribute probes, demographic tests,
/// geo symbol equality, visited-ZIP search, radius haversine, audience
/// membership, and all the connectives (including exclusion).
type ExtraAd = (u8, u64, u64);

/// A proptest-generated profile mutation: `(user index, attribute, zip)`
/// — the user gains an attribute, a recent-location observation, and
/// (for even attribute draws) coordinates, before the run starts.
type Mutation = (usize, u64, u64);

fn attr(n: u64) -> TargetingExpr {
    TargetingExpr::Attr(AttributeId(n % 40 + 1))
}

fn zip(n: u64) -> String {
    format!("{:05}", 10_000 + n % 20)
}

fn targeting_of(&(shape, a, b): &ExtraAd) -> TargetingSpec {
    match shape % 11 {
        0 => TargetingSpec::including(TargetingExpr::Everyone),
        1 => TargetingSpec::including(attr(a)),
        2 => TargetingSpec::including(TargetingExpr::And(vec![
            attr(a),
            TargetingExpr::AgeRange {
                min: 18 + (b % 30) as u8,
                max: 80,
            },
        ])),
        3 => TargetingSpec::including(TargetingExpr::InState(
            ["Ohio", "Texas", "California"][(a % 3) as usize].into(),
        )),
        4 => TargetingSpec::including(TargetingExpr::VisitedZip(zip(a))),
        5 => TargetingSpec::including(TargetingExpr::InZip(zip(a))),
        6 => TargetingSpec::including(TargetingExpr::Or(vec![attr(a), attr(b)])),
        7 => TargetingSpec::including(TargetingExpr::Not(Box::new(attr(a)))),
        8 => TargetingSpec::including_excluding(attr(a), attr(b)),
        9 => TargetingSpec::including(TargetingExpr::WithinRadius {
            lat: 40.0 + (a % 4) as f64,
            lon: -74.0 - (b % 4) as f64,
            km: 50.0 + (a % 300) as f64,
        }),
        _ => TargetingSpec::including(TargetingExpr::And(vec![
            TargetingExpr::Or(vec![attr(a), TargetingExpr::Not(Box::new(attr(b)))]),
            TargetingExpr::AgeRange { min: 18, max: 65 },
        ])),
    }
}

/// One full engine run built from scratch (scenario setup is itself
/// seed-deterministic), with the given extra campaigns and profile
/// mutations layered on, executed at `shards` under `mode`.
fn run(
    shards: usize,
    mode: EvalMode,
    extra: &[ExtraAd],
    mutations: &[Mutation],
) -> (
    Vec<Invoice>,
    Vec<AdReport>,
    BTreeMap<UserId, BTreeSet<String>>,
    u64,
) {
    let mut s = CohortScenario::setup(SEED, POPULATION, OPTIN);
    let names: Vec<String> = s
        .platform
        .attributes
        .partner_attributes()
        .iter()
        .take(8)
        .map(|d| d.name.clone())
        .collect();
    let plan = CampaignPlan::binary_in_ad("eval", &names, Encoding::CodebookToken);
    let receipt = s
        .provider
        .run_plan(&mut s.platform, &plan, s.optin_audience)
        .expect("plan runs");

    let adv = s.platform.register_advertiser("equivalence-adv");
    let acct = s.platform.open_account(adv).expect("account");
    let camp = s
        .platform
        .create_campaign(acct, "extra", Money::dollars(3), None)
        .expect("campaign");
    for (j, e) in extra.iter().enumerate() {
        s.platform
            .submit_ad(
                camp,
                AdCreative::text(format!("extra {j}"), "equivalence workload"),
                targeting_of(e),
            )
            .expect("extra ad");
    }
    for &(ix, a, z) in mutations {
        let user = s.users[ix % s.users.len()];
        s.platform
            .profiles
            .grant_attribute(user, AttributeId(a % 40 + 1))
            .expect("grant");
        s.platform
            .profiles
            .record_zip_visit(user, &zip(z))
            .expect("visit");
        if a % 2 == 0 {
            s.platform
                .profiles
                .set_coordinates(user, 40.0 + (z % 5) as f64, -75.0 + (a % 5) as f64)
                .expect("coords");
        }
    }
    s.platform.campaigns.set_eval_mode(mode);

    let mut sites = SiteRegistry::new();
    sites.create("feed.example", 2);
    let engine = Engine::new(EngineConfig {
        shards,
        session: SessionConfig {
            views_per_user_per_day: 4.0,
            days: 3,
        },
        seed: SEED,
        ..EngineConfig::default()
    });
    let extension_users: BTreeSet<UserId> = s.opted_in.iter().copied().collect();
    let outcome = engine.run(&mut s.platform, &sites, &s.users, &extension_users);

    let mut accounts = s.provider.accounts.clone();
    accounts.push(acct);
    let invoices = accounts.iter().map(|&a| s.platform.invoice(a)).collect();
    let reports = receipt
        .placed
        .iter()
        .filter(|p| p.approved)
        .map(|p| {
            s.platform
                .ad_report(receipt.account, p.ad)
                .expect("placed ad reports")
        })
        .collect();
    let client = TreadClient::new(s.provider.codebook.clone(), &s.platform.attributes);
    let reveals = outcome
        .extensions
        .iter()
        .map(|(&u, log)| (u, client.decode_log(log, |_| None).has))
        .collect();
    (invoices, reports, reveals, outcome.report.impressions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Random campaign sets + profile mutations yield byte-identical
    /// invoices, reports, and decoded Tread sets with compiled programs
    /// vs the tree oracle, across 1/2/8 shards.
    #[test]
    fn compiled_and_tree_agree_across_shard_counts(
        extra in prop::collection::vec((0u8..11, 0u64..1000, 0u64..1000), 0..12),
        mutations in prop::collection::vec((0usize..POPULATION, 0u64..1000, 0u64..1000), 0..24),
    ) {
        let baseline = run(1, EvalMode::Compiled, &extra, &mutations);
        prop_assert!(baseline.3 > 0, "the run must actually deliver ads");
        for shards in [1usize, 2, 8] {
            for mode in [EvalMode::Compiled, EvalMode::Tree] {
                if shards == 1 && mode == EvalMode::Compiled {
                    continue;
                }
                let other = run(shards, mode, &extra, &mutations);
                prop_assert_eq!(
                    &baseline.0, &other.0,
                    "invoices differ at {} shards / {:?}", shards, mode
                );
                prop_assert_eq!(
                    &baseline.1, &other.1,
                    "ad reports differ at {} shards / {:?}", shards, mode
                );
                prop_assert_eq!(
                    &baseline.2, &other.2,
                    "reveals differ at {} shards / {:?}", shards, mode
                );
                prop_assert_eq!(baseline.3, other.3);
            }
        }
    }
}
