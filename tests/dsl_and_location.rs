//! Integration test: DSL-authored targeting and the location substrate
//! driving real delivery, plus the location-reveal Tread pipeline.

use treads_repro::adplatform::campaign::AdCreative;
use treads_repro::adplatform::dsl;
use treads_repro::adplatform::profile::Gender;
use treads_repro::adplatform::targeting::TargetingSpec;
use treads_repro::adplatform::{Platform, PlatformConfig};
use treads_repro::adsim_types::Money;
use treads_repro::treads::encoding::Encoding;
use treads_repro::treads::planner::CampaignPlan;
use treads_repro::treads::provider::TransparencyProvider;
use treads_repro::treads::TreadClient;
use treads_repro::websim::extension::ExtensionLog;

fn quiet_platform(seed: u64) -> Platform {
    let mut p = Platform::us_2018(PlatformConfig {
        seed,
        ..PlatformConfig::default()
    });
    p.config.auction.competitor_rate = 0.0;
    p
}

#[test]
fn dsl_spec_delivers_to_exactly_the_matching_users() {
    let mut platform = quiet_platform(1);
    let expr = dsl::parse(
        "age 24-39 AND state:'Illinois' AND attr:'Interest: musicals (Music)' \
         AND NOT attr:'Relationship: in a relationship'",
        &platform.attributes,
    )
    .expect("valid DSL");

    let musicals = platform
        .attributes
        .id_of("Interest: musicals (Music)")
        .expect("attr");
    let relationship = platform
        .attributes
        .id_of("Relationship: in a relationship")
        .expect("attr");

    // Four users spanning the predicate space.
    let matching = platform.register_user(30, Gender::Female, "Illinois", "60601");
    platform
        .profiles
        .grant_attribute(matching, musicals)
        .expect("u");
    let too_old = platform.register_user(55, Gender::Female, "Illinois", "60601");
    platform
        .profiles
        .grant_attribute(too_old, musicals)
        .expect("u");
    let wrong_state = platform.register_user(30, Gender::Female, "Ohio", "43004");
    platform
        .profiles
        .grant_attribute(wrong_state, musicals)
        .expect("u");
    let taken = platform.register_user(30, Gender::Female, "Illinois", "60601");
    platform
        .profiles
        .grant_attribute(taken, musicals)
        .expect("u");
    platform
        .profiles
        .grant_attribute(taken, relationship)
        .expect("u");

    let adv = platform.register_advertiser("meetup");
    let acct = platform.open_account(adv).expect("account");
    let camp = platform
        .create_campaign(acct, "c", Money::dollars(5), None)
        .expect("campaign");
    let ad = platform
        .submit_ad(
            camp,
            AdCreative::text("h", "b"),
            TargetingSpec::including(expr),
        )
        .expect("ad");

    for user in [matching, too_old, wrong_state, taken] {
        for _ in 0..3 {
            platform.browse(user).expect("browse");
        }
    }
    assert_eq!(platform.log.exact_reach(ad), 1);
    assert!(platform.log.seen_by(matching).iter().any(|i| i.ad == ad));
}

#[test]
fn radius_targeting_delivers_by_distance() {
    let mut platform = quiet_platform(2);
    // 25 km around Boston City Hall.
    let expr = dsl::parse("radius:42.3601,-71.0589,25", &platform.attributes).expect("DSL");
    let cambridge = platform.register_user(30, Gender::Male, "Massachusetts", "02139");
    platform
        .profiles
        .set_coordinates(cambridge, 42.3736, -71.1097)
        .expect("set");
    let nyc = platform.register_user(30, Gender::Male, "New York", "10001");
    platform
        .profiles
        .set_coordinates(nyc, 40.7128, -74.0060)
        .expect("set");
    let unlocated = platform.register_user(30, Gender::Male, "Massachusetts", "02139");

    let adv = platform.register_advertiser("local");
    let acct = platform.open_account(adv).expect("account");
    let camp = platform
        .create_campaign(acct, "c", Money::dollars(5), None)
        .expect("campaign");
    let ad = platform
        .submit_ad(
            camp,
            AdCreative::text("h", "b"),
            TargetingSpec::including(expr),
        )
        .expect("ad");
    for user in [cambridge, nyc, unlocated] {
        for _ in 0..3 {
            platform.browse(user).expect("browse");
        }
    }
    assert_eq!(platform.log.exact_reach(ad), 1);
    assert!(platform.log.seen_by(cambridge).iter().any(|i| i.ad == ad));
}

#[test]
fn location_reveal_pipeline_end_to_end() {
    let mut platform = quiet_platform(3);
    let mut provider = TransparencyProvider::register(&mut platform, "KYD", 3, Money::dollars(10))
        .expect("provider");
    let (page, audience) = provider
        .setup_page_optin(&mut platform)
        .expect("page opt-in");
    let user = platform.register_user(30, Gender::Unspecified, "Massachusetts", "02139");
    platform.record_user_location(user, "02139").expect("loc");
    platform.record_user_location(user, "02115").expect("loc");
    platform.user_likes_page(user, page).expect("like");

    let zips = ["02115", "02139", "02142", "10001"];
    let plan = CampaignPlan::location_sweep_in_ad("loc", &zips, Encoding::ZeroWidth);
    let receipt = provider
        .run_plan(&mut platform, &plan, audience)
        .expect("plan runs");
    assert_eq!(receipt.approved_count(), 4);

    let mut log = ExtensionLog::for_user(user);
    for _ in 0..10 {
        if let Ok(treads_repro::adplatform::auction::AuctionOutcome::Won { ad, .. }) =
            platform.browse(user)
        {
            let creative = platform.campaigns.ad(ad).expect("won").creative.clone();
            log.observe(ad, creative, platform.clock.now());
        }
    }
    let client = TreadClient::new(provider.codebook.clone(), &platform.attributes);
    let revealed = client.decode_log(&log, |_| None);
    let expected: std::collections::BTreeSet<String> =
        ["02115".to_string(), "02139".to_string()].into();
    assert_eq!(revealed.visited_zips, expected);
}

#[test]
fn codebook_export_travels_to_the_client() {
    // The opt-in artifact: provider exports, user imports, decoding works.
    let mut platform = quiet_platform(4);
    let mut provider = TransparencyProvider::register(&mut platform, "KYD", 4, Money::dollars(10))
        .expect("provider");
    let (page, audience) = provider
        .setup_page_optin(&mut platform)
        .expect("page opt-in");
    let user = platform.register_user(30, Gender::Female, "Vermont", "05401");
    let attr = platform.attributes.id_of("Net worth: $2M+").expect("attr");
    platform.profiles.grant_attribute(user, attr).expect("u");
    platform.user_likes_page(user, page).expect("like");

    let plan = CampaignPlan::binary_in_ad("nw", &["Net worth: $2M+"], Encoding::CodebookToken);
    provider
        .run_plan(&mut platform, &plan, audience)
        .expect("plan runs");

    // The shared artifact is plain text.
    let shared_text = provider.codebook.export();
    let imported = treads_repro::treads::Codebook::import(&shared_text).expect("imports");

    let mut log = ExtensionLog::for_user(user);
    for _ in 0..4 {
        if let Ok(treads_repro::adplatform::auction::AuctionOutcome::Won { ad, .. }) =
            platform.browse(user)
        {
            let creative = platform.campaigns.ad(ad).expect("won").creative.clone();
            log.observe(ad, creative, platform.clock.now());
        }
    }
    let client = TreadClient::new(imported, &platform.attributes);
    let revealed = client.decode_log(&log, |_| None);
    assert!(revealed.has.contains("Net worth: $2M+"));
}
