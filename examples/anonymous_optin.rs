//! Anonymous opt-in via tracking pixel, with the multi-platform trick.
//!
//! ```text
//! cargo run --example anonymous_optin
//! ```
//!
//! §3.1: "in order to remain anonymous to the transparency provider, users
//! could visit a website that the transparency provider owns, where the
//! transparency provider places a tracking pixel provided by the
//! advertising platform … by placing tracking pixels from multiple
//! advertising platforms on the website, the transparency provider could
//! at one shot allow the user to sign-up to learn the information
//! collected about them by multiple advertising platforms."
//!
//! This example boots **two** independent simulated platforms, embeds one
//! pixel from each on a single opt-in site, and shows one page view
//! enrolling the visitor with both platforms — while the provider's only
//! view is the pixels' fire counters.

use treads_repro::adplatform::{Platform, PlatformConfig};
use treads_repro::adsim_types::Money;
use treads_repro::treads::encoding::Encoding;
use treads_repro::treads::planner::CampaignPlan;
use treads_repro::treads::provider::TransparencyProvider;
use treads_repro::treads::TreadClient;
use treads_repro::websim::extension::ExtensionLog;

fn main() {
    // Two independent ad platforms ("BlueBook" and "Gaggle").
    let mut platforms: Vec<(&str, Platform)> = vec![
        (
            "BlueBook",
            Platform::us_2018(PlatformConfig {
                seed: 1,
                ..Default::default()
            }),
        ),
        (
            "Gaggle",
            Platform::us_2018(PlatformConfig {
                seed: 2,
                ..Default::default()
            }),
        ),
    ];

    // The provider registers on both, creating a pixel on each for its
    // single opt-in website.
    let mut providers = Vec::new();
    for (name, platform) in &mut platforms {
        let provider =
            TransparencyProvider::register(platform, "Know Your Data", 7, Money::dollars(10))
                .expect("registration");
        let (pixel, audience) = provider
            .setup_pixel_optin(platform, format!("optin-site pixel for {name}"))
            .expect("pixel opt-in");
        providers.push((provider, pixel, audience));
    }

    // One visitor; each platform knows a different hidden attribute.
    let mut users = Vec::new();
    for ((_, platform), attr) in platforms
        .iter_mut()
        .zip(["Net worth: $2M+", "Investable assets: $1M-$2M"])
    {
        let user = platform.register_user(
            38,
            treads_repro::adplatform::profile::Gender::Unspecified,
            "Oregon",
            "97201",
        );
        let id = platform.attributes.id_of(attr).expect("attribute");
        platform.profiles.grant_attribute(user, id).expect("user");
        users.push(user);
    }

    // The visitor loads the provider's opt-in page ONCE; both embedded
    // pixels fire (one per platform — each platform only sees its own).
    println!("visitor loads https://know-your-data.example/optin …");
    for ((_, platform), ((_, pixel, _), &user)) in
        platforms.iter_mut().zip(providers.iter().zip(&users))
    {
        platform
            .user_fires_pixel(user, *pixel)
            .expect("pixel fires");
    }
    for ((name, platform), (_, pixel, _)) in platforms.iter().zip(&providers) {
        println!(
            "  {name}: pixel fired {} time(s); provider sees the count, never the visitor",
            platform.pixels.fire_count(*pixel)
        );
    }

    // Each provider runs its Treads to the anonymous audience; the
    // visitor decodes per platform.
    for (i, ((name, platform), (provider, _, audience))) in
        platforms.iter_mut().zip(providers.iter_mut()).enumerate()
    {
        let names: Vec<String> = platform
            .attributes
            .partner_attributes()
            .iter()
            .take(80)
            .map(|d| d.name.clone())
            .collect();
        let plan = CampaignPlan::binary_in_ad("anon", &names, Encoding::CodebookToken);
        provider
            .run_plan(platform, &plan, *audience)
            .expect("plan placed");
        let mut log = ExtensionLog::for_user(users[i]);
        for _ in 0..10 {
            if let Ok(treads_repro::adplatform::auction::AuctionOutcome::Won { ad, .. }) =
                platform.browse(users[i])
            {
                let creative = platform.campaigns.ad(ad).expect("won ad").creative.clone();
                log.observe(ad, creative, platform.clock.now());
            }
        }
        let client = TreadClient::new(provider.codebook.clone(), &platform.attributes);
        let revealed = client.decode_log(&log, |_| None);
        println!("\nwhat {name} turned out to hold about the visitor:");
        for n in &revealed.has {
            println!("  - {n}");
        }
    }
}
