//! Online serving in miniature: one simulated day of ad requests through
//! the request-driven front end.
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```
//!
//! The batch engine answers "what happened over the horizon?"; the
//! serving stack answers each impression opportunity *as it arrives* —
//! micro-batched onto the same decide/apply machinery, with admission
//! control and per-request latency tracking. This demo boots a small
//! platform, offers it an open-loop Poisson day of traffic, prints the
//! latency/SLO summary, and writes the full telemetry snapshot to
//! `experiments-out/telemetry_serving.json` (the CI serving-smoke step
//! validates that file with `scripts/check_telemetry_snapshot.py
//! --serving`).

use std::collections::BTreeSet;
use std::time::Duration;

use treads_repro::adplatform::campaign::AdCreative;
use treads_repro::adplatform::profile::Gender;
use treads_repro::adplatform::targeting::{TargetingExpr, TargetingSpec};
use treads_repro::adplatform::{Platform, PlatformConfig};
use treads_repro::adsim_types::{Money, UserId};
use treads_repro::engine::{ResilienceOptions, DAY_MS};
use treads_repro::serving::{OpportunityRequest, ServingConfig, ServingEngine};
use treads_repro::telemetry::Telemetry;
use treads_repro::websim::{ArrivalSchedule, LoadProfile, SiteRegistry};

fn main() {
    let seed = 42;

    // 1. A small platform: one advertiser, one everyone-targeted campaign.
    let mut platform = Platform::us_2018(PlatformConfig::facebook_like(seed));
    let advertiser = platform.register_advertiser("Demo Shoes Inc.");
    let account = platform.open_account(advertiser).expect("account");
    let campaign = platform
        .create_campaign(account, "spring sale", Money::dollars(8), None)
        .expect("campaign");
    platform
        .submit_ad(
            campaign,
            AdCreative::text("Spring sale", "30% off everything"),
            TargetingSpec::including(TargetingExpr::Everyone),
        )
        .expect("ad");
    let users: Vec<UserId> = (0..200)
        .map(|i| platform.register_user(20 + (i % 50) as u8, Gender::Female, "Ohio", "43004"))
        .collect();
    let mut sites = SiteRegistry::new();
    sites.create("news.example", 2);
    sites.create("blog.example", 1);

    // 2. One simulated day of open-loop traffic: Poisson arrivals with a
    //    diurnal curve, generated up front so the demo is reproducible.
    let profile = LoadProfile {
        base_rps: 0.25,
        diurnal_amplitude: 0.5,
        bursts: vec![],
        horizon_ms: DAY_MS,
    };
    let arrivals = ArrivalSchedule::open_loop(&users, &sites.ids(), &profile, seed);
    println!(
        "offering {} requests over one simulated day",
        arrivals.len()
    );

    // 3. Serve them: 2 shard workers, hourly ticks, 32-request
    //    micro-batches that close after at most 200 µs of waiting.
    let engine = ServingEngine::new(ServingConfig {
        shards: 2,
        tick_ms: DAY_MS / 24,
        horizon_ms: DAY_MS,
        seed,
        max_batch: 32,
        max_delay: Duration::from_micros(200),
        ..ServingConfig::default()
    });
    let mut telemetry = Telemetry::new();
    let (outcome, served) = engine.serve_with_telemetry(
        &mut platform,
        &sites,
        &BTreeSet::new(),
        &ResilienceOptions::default(),
        &mut telemetry,
        |frontend| {
            let tickets: Vec<_> = arrivals
                .arrivals()
                .iter()
                .map(|a| {
                    frontend.submit(OpportunityRequest {
                        user: a.user,
                        site: a.site,
                        at: a.at,
                    })
                })
                .collect();
            tickets
                .into_iter()
                .map(|t| t.wait())
                .filter(|r| r.is_served())
                .count()
        },
    );

    // 4. What happened?
    let r = &outcome.report;
    println!(
        "served {served}/{} requests across {} ticks: {} impressions, {} shed",
        r.requests, r.ticks, r.impressions, r.shed
    );
    let lat = &r.latency;
    println!(
        "latency: p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms over {} requests",
        lat.quantile(0.50) as f64 / 1e6,
        lat.quantile(0.95) as f64 / 1e6,
        lat.quantile(0.99) as f64 / 1e6,
        lat.count(),
    );
    println!(
        "SLO p99 < {} ms: {} breach(es) in {} tick windows",
        ServingConfig::default().slo.target_ns / 1_000_000,
        r.slo_breaches,
        r.slo_windows,
    );

    // 5. Persist the telemetry snapshot for the CI smoke check.
    std::fs::create_dir_all("experiments-out").expect("create experiments-out/");
    std::fs::write(
        "experiments-out/telemetry_serving.json",
        telemetry.snapshot_json(),
    )
    .expect("write telemetry snapshot");
    println!("wrote experiments-out/telemetry_serving.json");

    assert_eq!(
        served as u64 + r.shed,
        r.requests,
        "every request accounted"
    );
}
