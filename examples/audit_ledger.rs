//! Audit the platform's delivery-receipt ledger.
//!
//! ```text
//! cargo run --example audit_ledger          # honest platform, clean audit
//! cargo run --example audit_ledger forge    # dishonest publish, caught
//! ```
//!
//! The flow is the transparency-ledger contract end to end: run the batch
//! engine with checkpointing on, recompute the receipt chains from the
//! checkpoint's impression log and diff them against the committed heads
//! (a resume would refuse to continue past a mismatch), then play the
//! auditor against the platform's *published* ledger — honestly, or with
//! a forged receipt slipped in — and attribute every divergence to an
//! exact chain, receipt index, and tick. Finally the user side: one
//! browser extension cross-checks the ledger's claims about it against
//! what it actually rendered.

use std::collections::BTreeSet;

use treads_repro::adsim_types::UserId;
use treads_repro::engine::{Engine, EngineConfig, FaultPlan, ResilienceOptions};
use treads_repro::resilience::{receipts_from_impressions, LEDGER_CHAINS};
use treads_repro::treads::encoding::Encoding;
use treads_repro::treads::planner::CampaignPlan;
use treads_repro::websim::{ReceiptClaim, SessionConfig, SiteRegistry};
use treads_repro::workload::CohortScenario;

const SEED: u64 = 31;

fn main() {
    let dishonest = std::env::args().nth(1).as_deref() == Some("forge");

    // 1. A cohort scenario with one Tread campaign, run under the
    //    supervised engine with a checkpoint every other tick.
    let mut s = CohortScenario::setup(SEED, 60, 30);
    let names: Vec<String> = s
        .platform
        .attributes
        .partner_attributes()
        .iter()
        .take(12)
        .map(|d| d.name.clone())
        .collect();
    let plan = CampaignPlan::binary_in_ad("audit", &names, Encoding::CodebookToken);
    s.provider
        .run_plan(&mut s.platform, &plan, s.optin_audience)
        .expect("plan runs");

    let mut sites = SiteRegistry::new();
    sites.create("feed.example", 2);
    sites.create("news.example", 1);

    let engine = Engine::new(EngineConfig {
        shards: 2,
        session: SessionConfig {
            views_per_user_per_day: 6.0,
            days: 5,
        },
        seed: SEED,
        ..EngineConfig::default()
    });
    let options = ResilienceOptions {
        checkpoint_every_ticks: 2,
        ..ResilienceOptions::default()
    };
    let extension_users: BTreeSet<UserId> = s.opted_in.iter().copied().collect();
    let resilient = engine
        .run_resilient(
            &mut s.platform,
            &sites,
            &s.users,
            &extension_users,
            &options,
        )
        .expect("supervised run completes");
    let ledger = resilient
        .outcome
        .ledger
        .as_ref()
        .expect("the ledger is on by default");
    println!(
        "run complete: {} receipts across {} hash chains",
        ledger.len(),
        LEDGER_CHAINS
    );

    // 2. Checkpoint replay: recompute the chains from the checkpoint's
    //    own impression log and diff against the heads it committed.
    let cp = resilient
        .checkpoints
        .last()
        .expect("checkpoints were taken");
    let replayed =
        receipts_from_impressions(cp.config.seed, cp.config.tick_ms, &cp.platform.impressions);
    assert_eq!(replayed.heads(), cp.ledger, "checkpoint rewrote history");
    println!(
        "checkpoint replay: committed heads match {} impressions re-chained from the log",
        cp.platform.impressions.len()
    );

    // 3. The audit: the run's emission kept only the commitment (heads
    //    and counts), so the platform first materializes the full chains
    //    from its impression log — and they must reproduce the committed
    //    heads exactly. Then it publishes — honestly, or with a
    //    properly-signed forged receipt appended to its fullest chain —
    //    and the auditor diffs the publish against the recomputed
    //    reference.
    let full = receipts_from_impressions(ledger.seed(), ledger.tick_ms(), s.platform.log.all());
    assert_eq!(
        full.heads(),
        ledger.heads(),
        "materialized chains must reproduce the emission commitment"
    );
    let fullest = ledger
        .heads()
        .into_iter()
        .max_by_key(|h| h.count)
        .expect("heads cover every chain")
        .chain;
    let publish_plan = if dishonest {
        FaultPlan::new().forge_receipt(fullest)
    } else {
        FaultPlan::new()
    };
    let (published, injected) = full.publish(&publish_plan);
    let report = full.audit(&published);
    for f in &report.findings {
        println!(
            "equivocation: chain={} kind={:?} index={} tick={}",
            f.chain, f.kind, f.index, f.tick
        );
    }
    if report.is_clean() {
        println!(
            "ledger audit: clean ({} receipts checked across {} chains)",
            report.receipts_checked, report.chains_checked
        );
    } else {
        println!(
            "ledger audit: {} equivocation(s) detected, {} injected",
            report.findings.len(),
            injected.len()
        );
        let injected_set: Vec<_> = injected
            .iter()
            .map(|i| (i.chain, i.kind, i.index))
            .collect();
        assert_eq!(
            report.detected_set(),
            injected_set,
            "the auditor must attribute exactly what was injected"
        );
    }
    assert_eq!(report.is_clean(), !dishonest);

    // 4. The user side: an extension cross-checks the ledger's claims
    //    about it (re-derived via its own pseudonym) against the ads its
    //    browser actually rendered.
    let (user, log) = resilient
        .outcome
        .extensions
        .iter()
        .find(|(_, l)| !l.is_empty())
        .expect("some extension user saw ads");
    let claims: Vec<ReceiptClaim> = full
        .claims_for(*user)
        .into_iter()
        .map(|(ad, at)| ReceiptClaim { ad, at })
        .collect();
    let audit = log.verify_claims(&claims);
    assert!(
        audit.is_clean(),
        "honest claims must match the rendered feed"
    );
    println!(
        "extension cross-check for user {user}: {} claims matched, clean={}",
        audit.matched,
        audit.is_clean()
    );
}
