//! Full partner-data reveal: the paper's validation workload as a library
//! consumer would run it.
//!
//! ```text
//! cargo run --example reveal_partner_data
//! ```
//!
//! Stages the §3.1 validation scenario (two authors, one with a rich
//! data-broker dossier, one a recent arrival), runs all 507
//! partner-category Treads plus the control ad, drives a week of feed
//! browsing, and prints each author's decoded reveal — ending with the
//! provider's invoice, which is $0 at this scale.

use treads_repro::treads::encoding::Encoding;
use treads_repro::treads::planner::CampaignPlan;
use treads_repro::treads::report::{render_markdown, ReportContext};
use treads_repro::treads::TreadClient;
use treads_repro::workload::ValidationScenario;

fn main() {
    let mut s = ValidationScenario::setup(42);

    // One obfuscated Tread per partner attribute + the control ad.
    let names = s.partner_attribute_names();
    println!(
        "running {} partner-attribute Treads + 1 control ad…",
        names.len()
    );
    let plan = CampaignPlan::binary_in_ad("us-partner", &names, Encoding::CodebookToken);
    let mut receipt = s
        .provider
        .run_plan(&mut s.platform, &plan, s.optin_audience)
        .expect("plan placed");
    s.provider
        .run_control(&mut s.platform, &mut receipt, s.optin_audience)
        .expect("control placed");

    // A week of browsing.
    let logs = s.browse_authors(60);
    let client = TreadClient::new(s.provider.codebook.clone(), &s.platform.attributes);

    for (label, user) in [("author A", s.author_a), ("author B", s.author_b)] {
        let revealed = client.decode_log(&logs[&user], |_| None);
        println!("\n{label} ({user}):");
        if revealed.has.is_empty() {
            println!("  no attribute Treads received — the brokers have nothing on them");
        }
        for name in &revealed.has {
            println!("  platform holds: {name}");
        }
        let control_ad = receipt.control.expect("control placed").1;
        let reachable = logs[&user].distinct_ads().contains(&control_ad);
        println!("  control ad received: {reachable}");
    }

    let view = s
        .provider
        .view(&s.platform, &receipt)
        .expect("reports readable");
    println!(
        "\nprovider invoice: gross {}, due {} (small-spend waiver — the paper's \"zero cost\")",
        view.invoice.gross, view.invoice.due
    );

    // The user-facing artifact: author A's transparency report.
    let revealed_a = client.decode_log(&logs[&s.author_a], |_| None);
    let report = render_markdown(
        &revealed_a,
        &ReportContext {
            platform_name: "the simulated ad platform".into(),
            provider_name: "Know Your Data".into(),
            generated_at_ms: s.platform.clock.now().millis(),
        },
    );
    println!("\n--- author A's transparency report ---\n\n{report}");
}
