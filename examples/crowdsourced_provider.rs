//! The crowdsourced transparency provider (§4 "Evading shutdown").
//!
//! ```text
//! cargo run --example crowdsourced_provider
//! ```
//!
//! If a platform starts hunting Treads, "a number of privacy-conscious
//! organizations or individuals could each create an advertising account
//! and run a few Treads, with each account being responsible for a small
//! subset of the overall set of targeting attributes." This example runs
//! the full 507-attribute plan twice — once from a single account, once
//! split across 15 accounts — and triggers the platform's enforcement
//! sweep after each.

use treads_repro::adplatform::{Platform, PlatformConfig};
use treads_repro::adsim_types::Money;
use treads_repro::treads::crowdsource::{
    optin_crowd, run_crowdsourced, setup_crowd_channels, survival_after_sweep,
};
use treads_repro::treads::encoding::Encoding;
use treads_repro::treads::planner::CampaignPlan;
use treads_repro::treads::provider::TransparencyProvider;

fn run_with_accounts(n_accounts: usize) {
    let mut platform = Platform::us_2018(PlatformConfig::default());
    let mut provider =
        TransparencyProvider::register(&mut platform, "Know Your Data", 7, Money::dollars(10))
            .expect("registration");
    // One opt-in site carries every crowd account's pixel.
    let channels =
        setup_crowd_channels(&mut provider, &mut platform, n_accounts).expect("channels");
    let user = platform.register_user(
        34,
        treads_repro::adplatform::profile::Gender::Unspecified,
        "Ohio",
        "43004",
    );
    optin_crowd(&mut platform, &channels, &[user]).expect("opt-in visit");

    let names: Vec<String> = platform
        .attributes
        .partner_attributes()
        .iter()
        .map(|d| d.name.clone())
        .collect();
    let plan = CampaignPlan::binary_in_ad("us-partner", &names, Encoding::CodebookToken);

    let receipts = run_crowdsourced(
        &mut provider,
        &mut platform,
        &plan,
        &channels,
        /* vary_headlines = */ true,
    )
    .expect("crowdsourced run");

    let report = survival_after_sweep(&mut platform, &receipts);
    println!(
        "{n_accounts:>3} account(s): {:>3} Treads per account, {:>2} suspended, \
         {:>3}/{} Treads survive enforcement",
        507usize.div_ceil(n_accounts),
        report.suspended,
        report.treads_surviving,
        report.treads_placed,
    );
}

fn main() {
    println!("running the 507-attribute plan under the platform's Tread-hunting detector:\n");
    for n in [1, 5, 15] {
        run_with_accounts(n);
    }
    println!("\ncrowdsourcing past the detector's clustering threshold keeps every Tread alive.");
}
