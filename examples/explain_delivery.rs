//! "Why this ad?" — decision provenance for one served impression.
//!
//! ```text
//! cargo run --release --example explain_delivery
//! ```
//!
//! Runs one simulated day through the serving front end with causal
//! tracing fully sampled ([`TraceConfig::full`]), picks a served page,
//! looks up its retained [`RequestTrace`], and renders the complete
//! provenance chain: admission → pixels → per-slot eligibility census →
//! per-candidate verdicts → auction → billing. Everything here is
//! deterministic — the trace id is a pure hash of the request's
//! `(at, user, user_seq)` key, so rerunning this example prints the same
//! ids, the same verdicts, and the same winner every time.
//!
//! The full trace set is also dumped to `experiments-out/traces.json`
//! (machine-readable) and `experiments-out/traces_chrome.json` (Chrome
//! trace-event format — load it in Perfetto or `chrome://tracing`). The
//! CI trace-smoke step greps this example's `explained winner:` line and
//! `jq`-validates both dumps.

use std::collections::BTreeSet;
use std::time::Duration;

use treads_repro::adplatform::campaign::AdCreative;
use treads_repro::adplatform::targeting::{TargetingExpr, TargetingSpec};
use treads_repro::adplatform::{Platform, PlatformConfig};
use treads_repro::adsim_types::{Money, SimTime, UserId};
use treads_repro::engine::{ResilienceOptions, DAY_MS};
use treads_repro::serving::{
    OpportunityRequest, Response, ServingConfig, ServingEngine, TraceConfig,
};
use treads_repro::telemetry::{
    traces_to_chrome, traces_to_json, RequestTrace, Telemetry, TraceEventKind,
};
use treads_repro::websim::{ArrivalSchedule, LoadProfile, SiteRegistry};

fn main() {
    let seed = 42;

    // 1. A small platform with two competing campaigns, so the candidate
    //    table has something to disagree about.
    let mut platform = Platform::us_2018(PlatformConfig::facebook_like(seed));
    let advertiser = platform.register_advertiser("Demo Shoes Inc.");
    let account = platform.open_account(advertiser).expect("account");
    let campaign = platform
        .create_campaign(account, "spring sale", Money::dollars(8), None)
        .expect("campaign");
    platform
        .submit_ad(
            campaign,
            AdCreative::text("Spring sale", "30% off everything"),
            TargetingSpec::including(TargetingExpr::Everyone),
        )
        .expect("ad");
    let users: Vec<UserId> = (0..200)
        .map(|i| {
            platform.register_user(
                20 + (i % 50) as u8,
                treads_repro::adplatform::profile::Gender::Female,
                "Ohio",
                "43004",
            )
        })
        .collect();
    let mut sites = SiteRegistry::new();
    sites.create("news.example", 2);
    let shop = sites.create("shop.example", 1);
    let pixel = platform.create_pixel(account, "shop pixel").expect("pixel");
    sites.embed_pixel(shop, pixel);

    // 2. One deterministic open-loop day of traffic.
    let profile = LoadProfile {
        base_rps: 0.25,
        diurnal_amplitude: 0.5,
        bursts: vec![],
        horizon_ms: DAY_MS,
    };
    let arrivals = ArrivalSchedule::open_loop(&users, &sites.ids(), &profile, seed);

    // 3. Serve with tracing fully sampled: every request's decision chain
    //    is retained (up to the collector capacity).
    let engine = ServingEngine::new(ServingConfig {
        shards: 2,
        tick_ms: DAY_MS / 24,
        horizon_ms: DAY_MS,
        seed,
        max_batch: 32,
        max_delay: Duration::from_micros(200),
        trace: TraceConfig::full(),
        ..ServingConfig::default()
    });
    let mut telemetry = Telemetry::new();
    let (_outcome, answered) = engine.serve_with_telemetry(
        &mut platform,
        &sites,
        &BTreeSet::new(),
        &ResilienceOptions::default(),
        &mut telemetry,
        |frontend| {
            let tickets: Vec<_> = arrivals
                .arrivals()
                .iter()
                .map(|a| {
                    let req = OpportunityRequest {
                        user: a.user,
                        site: a.site,
                        at: a.at,
                    };
                    (req, frontend.submit(req))
                })
                .collect();
            tickets
                .into_iter()
                .map(|(req, t)| (req, t.wait()))
                .collect::<Vec<_>>()
        },
    );

    // 4. Pick the first page that actually delivered an ad, and find its
    //    trace by the canonical (at, user) key + matching winners.
    let traces = telemetry.traces();
    let (req, page) = answered
        .iter()
        .find_map(|(req, resp)| match resp {
            Response::Served(page) if !page.ads.is_empty() => Some((req, page)),
            _ => None,
        })
        .expect("a healthy full-sampling day serves at least one ad");
    let won: Vec<u64> = page.ads.iter().map(|a| a.raw()).collect();
    let trace = traces
        .iter()
        .find(|t| t.at == req.at && t.user == req.user.raw() && t.won_ads() == won)
        .expect("full sampling retains the serving trace of every page");

    explain(trace, req.at, page.slots);

    // The grep anchor for the CI trace-smoke step: the explained winner
    // must be the ad the page actually carries.
    assert_eq!(trace.won_ads(), won, "trace winner matches the served page");
    println!("explained winner: ad={}", won[0]);

    // 5. Dump every retained trace for offline tooling.
    std::fs::create_dir_all("experiments-out").expect("create experiments-out/");
    std::fs::write("experiments-out/traces.json", traces_to_json(traces))
        .expect("write traces.json");
    std::fs::write(
        "experiments-out/traces_chrome.json",
        traces_to_chrome(traces),
    )
    .expect("write traces_chrome.json");
    println!(
        "wrote {} retained traces to experiments-out/traces.json (+ Chrome trace-event dump)",
        traces.len()
    );
}

/// Renders one trace as a human-readable "why this ad" report.
fn explain(trace: &RequestTrace, at: SimTime, slots: u32) {
    println!(
        "why this ad? trace {} — user {} at t={}ms (seq {}), {} slot(s)",
        trace.id, trace.user, at.0, trace.user_seq, slots
    );
    for (i, span) in trace.spans.iter().enumerate() {
        let depth = {
            let mut d = 0;
            let mut cur = span.parent;
            while let Some(p) = cur {
                d += 1;
                cur = trace.spans[p].parent;
            }
            d
        };
        println!(
            "{:indent$}[span] {} (t={}ms, +{}ns for {}ns)",
            "",
            span.name,
            span.at.0,
            span.start_ns,
            span.dur_ns,
            indent = 2 + depth * 2
        );
        for event in trace.events.iter().filter(|e| e.span == i) {
            println!(
                "{:indent$}- {}",
                "",
                render(&event.kind),
                indent = 4 + depth * 2
            );
        }
    }
}

fn render(kind: &TraceEventKind) -> String {
    match *kind {
        TraceEventKind::Admitted { shard } => format!("admitted to shard {shard}"),
        TraceEventKind::Shed { reason } => format!("shed ({reason})"),
        TraceEventKind::FaultDegraded { what, detail } => {
            format!("fault degraded: {what} ({detail})")
        }
        TraceEventKind::SloBreachWindow => "tick window breached the latency SLO".to_string(),
        TraceEventKind::MergeConflict { at, user, user_seq } => {
            format!("merge conflict on key (at={at}, user={user}, seq={user_seq})")
        }
        TraceEventKind::PixelFired { pixel } => format!("pixel {pixel} fired"),
        TraceEventKind::Slot {
            slot,
            considered,
            index_pruned,
            not_servable,
            suspended,
            over_budget,
            frequency_capped,
            targeting_mismatch,
            eligible,
            compiled_evals,
        } => format!(
            "slot {slot} census: {considered} considered ({index_pruned} index-pruned, \
             {not_servable} not servable, {suspended} suspended, {over_budget} over budget, \
             {frequency_capped} frequency-capped, {targeting_mismatch} targeting mismatch) \
             -> {eligible} eligible [{compiled_evals} compiled evals]"
        ),
        TraceEventKind::Candidate {
            slot,
            ad,
            verdict,
            bid_cpm_micros,
        } => format!(
            "slot {slot} candidate ad {ad}: {verdict} (bid cap ${:.2} CPM)",
            bid_cpm_micros as f64 / 1e6
        ),
        TraceEventKind::Auction {
            slot,
            outcome,
            winner,
            clearing_cpm_micros,
            advertiser_bids,
            background_competitors,
            best_background_cpm_micros,
        } => format!(
            "slot {slot} auction: {outcome} (winner ad {winner} at ${:.2} CPM; \
             {advertiser_bids} advertiser bid(s) vs {background_competitors} background \
             competitor(s), best background ${:.2} CPM)",
            clearing_cpm_micros as f64 / 1e6,
            best_background_cpm_micros as f64 / 1e6
        ),
        TraceEventKind::Billed {
            slot,
            ad,
            price_micros,
        } => format!(
            "slot {slot} billed: ad {ad} charged ${:.6} for this impression",
            price_micros as f64 / 1e6
        ),
    }
}
