//! Quickstart: run one Tread end to end in ~60 lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The flow is the paper's §3 in miniature: boot a simulated ad platform,
//! register a transparency provider, let one user opt in by liking the
//! provider's page, run a single obfuscated Tread for "Net worth: $2M+",
//! let the user browse, and decode what their browser extension captured.

use treads_repro::adplatform::{Platform, PlatformConfig};
use treads_repro::adsim_types::Money;
use treads_repro::treads::encoding::Encoding;
use treads_repro::treads::planner::CampaignPlan;
use treads_repro::treads::provider::TransparencyProvider;
use treads_repro::treads::TreadClient;
use treads_repro::websim::extension::ExtensionLog;

fn main() {
    // 1. A simulated ad platform with the paper's 2018 U.S. catalog:
    //    614 platform attributes + 507 data-broker partner categories.
    let mut platform = Platform::us_2018(PlatformConfig::default());

    // 2. A user the platform knows a lot about — including partner data
    //    its own transparency page will never show them.
    let user = platform.register_user(
        41,
        treads_repro::adplatform::profile::Gender::Female,
        "Massachusetts",
        "02115",
    );
    let net_worth = platform
        .attributes
        .id_of("Net worth: $2M+")
        .expect("catalog attribute");
    platform
        .profiles
        .grant_attribute(user, net_worth)
        .expect("user exists");

    // 3. A transparency provider — just another advertiser, bidding the
    //    paper's elevated $10 CPM.
    let mut provider =
        TransparencyProvider::register(&mut platform, "Know Your Data", 7, Money::dollars(10))
            .expect("registration");
    let (page, audience) = provider
        .setup_page_optin(&mut platform)
        .expect("page opt-in");

    // 4. The user opts in by liking the provider's page.
    platform.user_likes_page(user, page).expect("like");

    // 5. One obfuscated Tread for the net-worth attribute.
    let plan =
        CampaignPlan::binary_in_ad("quickstart", &["Net worth: $2M+"], Encoding::CodebookToken);
    provider
        .run_plan(&mut platform, &plan, audience)
        .expect("plan placed");

    // 6. The user browses; their extension captures rendered ads.
    let mut extension = ExtensionLog::for_user(user);
    for _ in 0..8 {
        if let Ok(treads_repro::adplatform::auction::AuctionOutcome::Won { ad, .. }) =
            platform.browse(user)
        {
            let creative = platform.campaigns.ad(ad).expect("won ad").creative.clone();
            extension.observe(ad, creative, platform.clock.now());
        }
    }

    // 7. Decode: the user learns what the platform holds about them.
    let client = TreadClient::new(provider.codebook.clone(), &platform.attributes);
    let revealed = client.decode_log(&extension, |_| None);
    println!("The ad platform's own preferences page shows this user:");
    for name in platform.user_ad_preferences(user).expect("user exists") {
        println!("  - {name}");
    }
    println!("(note: no partner data — it is hidden from users)\n");
    println!("Treads revealed to the user:");
    for name in &revealed.has {
        println!("  - {name}   <- hidden data-broker attribute, now visible");
    }
    assert!(revealed.has.contains("Net worth: $2M+"));
}
