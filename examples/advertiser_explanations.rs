//! Advertiser-driven transparency (§4): publishing and verifying intent
//! explanations.
//!
//! ```text
//! cargo run --example advertiser_explanations
//! ```
//!
//! The paper's Salsa example: a studio wants "experienced professional
//! Salsa dancers" but the platform only lets it target "aged 30+ who are
//! interested in Salsa". The studio attaches a Tread-style explanation to
//! its ordinary ad; a regulator (or user) cross-checks it against the
//! platform's independent explanation.

use treads_repro::adplatform::campaign::AdCreative;
use treads_repro::adplatform::targeting::{TargetingExpr, TargetingSpec};
use treads_repro::adplatform::{Platform, PlatformConfig};
use treads_repro::adsim_types::Money;
use treads_repro::treads::advertiser::{
    compare_disclosures, verify_explanation, IntentExplanation,
};

fn main() {
    let mut platform = Platform::us_2018(PlatformConfig::default());
    let studio = platform.register_advertiser("Salsa Pro Studio");
    let account = platform.open_account(studio).expect("account");
    let campaign = platform
        .create_campaign(account, "advanced classes", Money::dollars(2), None)
        .expect("campaign");

    let salsa = platform
        .attributes
        .id_of("Interest: salsa dancing (Music)")
        .expect("catalog attribute");
    let ad = platform
        .submit_ad(
            campaign,
            AdCreative::text("Salsa Pro", "Advanced classes, Tuesdays."),
            TargetingSpec::including(TargetingExpr::And(vec![
                TargetingExpr::AgeRange { min: 30, max: 120 },
                TargetingExpr::Attr(salsa),
            ])),
        )
        .expect("ad approved");

    // A matching user sees the ad.
    let user = platform.register_user(
        36,
        treads_repro::adplatform::profile::Gender::Female,
        "Illinois",
        "60601",
    );
    platform
        .profiles
        .grant_attribute(user, salsa)
        .expect("user");

    // The platform's own explanation.
    println!(
        "platform says: {:?}\n",
        platform.explain(ad, user).expect("explains")
    );

    // The studio publishes its intent explanation alongside the ad.
    let explanation = IntentExplanation {
        ad,
        intent: "Experienced professional Salsa dancers (the platform offers no such \
                 option, so we targeted: aged 30+ and interested in Salsa)"
            .into(),
        claimed_attributes: vec!["Interest: salsa dancing (Music)".into()],
        claims_pii_audience: false,
    };
    println!("advertiser explains:");
    println!("  intent: {}", explanation.intent);
    println!("  parameters used: {:?}\n", explanation.claimed_attributes);

    // Anyone can verify the claim.
    let outcome = verify_explanation(&platform, &explanation, user).expect("verifiable");
    println!("verification against platform + actual targeting: {outcome:?}");

    let cmp = compare_disclosures(&platform, &explanation, user).expect("comparable");
    println!(
        "\ndisclosure comparison — platform: {}/{} attributes, no intent; \
         advertiser: {}/{} attributes, intent: {}",
        cmp.platform_disclosed,
        cmp.actual,
        cmp.advertiser_disclosed,
        cmp.actual,
        cmp.intent_disclosed
    );
}
