//! Composing targeting with the expression DSL.
//!
//! ```text
//! cargo run --example targeting_dsl
//! ```
//!
//! The paper's §2.1 example audience — "Millennials who live in Chicago,
//! are interested in musicals, are currently unemployed, and are not in a
//! relationship" — written in the library's targeting DSL, compiled
//! against the platform catalog, and used to drive a real delivery: only
//! the matching user receives the ad.

use treads_repro::adplatform::campaign::AdCreative;
use treads_repro::adplatform::dsl;
use treads_repro::adplatform::profile::Gender;
use treads_repro::adplatform::targeting::TargetingSpec;
use treads_repro::adplatform::{Platform, PlatformConfig};
use treads_repro::adsim_types::Money;

fn main() {
    let mut platform = Platform::us_2018(PlatformConfig::default());
    platform.config.auction.competitor_rate = 0.0;

    // The paper's example, as DSL. ("Unemployed" and "in a relationship"
    // map onto the catalog's relationship/behavior attributes.)
    let src = "age 24-39 AND zip:60601 \
               AND attr:'Interest: musicals (Music)' \
               AND NOT attr:'Relationship: in a relationship'";
    println!("targeting source:\n  {src}\n");
    let expr = dsl::parse(src, &platform.attributes).expect("valid DSL");
    println!(
        "parsed and re-rendered:\n  {}\n",
        dsl::render(&expr, &platform.attributes)
    );

    // Two users: one matching, one in a relationship.
    let musicals = platform
        .attributes
        .id_of("Interest: musicals (Music)")
        .expect("catalog attribute");
    let relationship = platform
        .attributes
        .id_of("Relationship: in a relationship")
        .expect("catalog attribute");
    let matching = platform.register_user(29, Gender::Female, "Illinois", "60601");
    platform
        .profiles
        .grant_attribute(matching, musicals)
        .expect("user");
    let taken = platform.register_user(29, Gender::Male, "Illinois", "60601");
    platform
        .profiles
        .grant_attribute(taken, musicals)
        .expect("user");
    platform
        .profiles
        .grant_attribute(taken, relationship)
        .expect("user");

    // Run an ad with the parsed spec.
    let adv = platform.register_advertiser("Chicago Musicals Meetup");
    let acct = platform.open_account(adv).expect("account");
    let camp = platform
        .create_campaign(acct, "meetup", Money::dollars(5), None)
        .expect("campaign");
    platform
        .submit_ad(
            camp,
            AdCreative::text("Singles musicals night", "This Friday in the Loop."),
            TargetingSpec::including(expr),
        )
        .expect("ad");

    for (label, user) in [
        ("matching user", matching),
        ("user in a relationship", taken),
    ] {
        let outcome = platform.browse(user).expect("browse");
        println!("{label} browses -> {outcome:?}");
    }
}
