//! Offline stand-in for `crossbeam`.
//!
//! Provides the API surface this workspace uses:
//!
//! * the scoped-thread API (`crossbeam::scope` / `crossbeam::thread::scope`)
//!   the engine uses, implemented on top of `std::thread::scope` (stable
//!   since Rust 1.63). Semantics differ from upstream in one way: a
//!   panicking child thread propagates through `std::thread::scope` instead
//!   of surfacing as `Err` from `scope`, so the `Result` returned here is
//!   always `Ok`. Callers that `.unwrap()` the scope result (the common
//!   idiom) behave identically.
//! * the [`channel`] MPMC channels (`bounded` / `unbounded`) the serving
//!   front end uses, implemented over `Mutex<VecDeque>` + `Condvar` with
//!   upstream's disconnect semantics. A `bounded(0)` rendezvous channel is
//!   not supported (the workspace never creates one); zero capacities are
//!   promoted to 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use thread::scope;

pub mod thread {
    //! Scoped threads.

    use std::thread as std_thread;

    /// A scope handle: spawn borrows non-`'static` data from the
    /// environment; all spawned threads join before `scope` returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned within a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result.
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope for spawning threads that borrow from the caller's
    /// stack. Always returns `Ok` (see crate docs for the panic-semantics
    /// difference from upstream).
    pub fn scope<'env, F, R>(f: F) -> std_thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels.
    //!
    //! Mirrors the `crossbeam-channel` API this workspace uses: `bounded` /
    //! `unbounded` constructors, cloneable [`Sender`]s and [`Receiver`]s,
    //! blocking `send` / `recv`, `try_recv`, and `recv_timeout`, with
    //! upstream's disconnect semantics (a receive on an empty channel whose
    //! senders are all gone fails; a send whose receivers are all gone
    //! fails and hands the message back).

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        capacity: usize,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        /// Signalled when a message arrives or the last sender leaves.
        readable: Condvar,
        /// Signalled when space frees up or the last receiver leaves.
        writable: Condvar,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> MutexGuard<'_, State<T>> {
            // The stub forbids unsafe and never panics while holding the
            // lock with an inconsistent queue, so poisoning is benign.
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// The sending half of a channel. Cloneable; the channel disconnects
    /// for receivers when every clone is dropped.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of a channel. Cloneable (MPMC); the channel
    /// disconnects for senders when every clone is dropped.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// The channel is disconnected: every receiver is gone. Carries the
    /// unsent message back to the caller.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Receiving failed: the channel is empty and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a non-blocking receive returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message ready right now, but senders remain.
        Empty,
        /// Empty and every sender is gone; nothing will ever arrive.
        Disconnected,
    }

    /// Why a bounded-wait receive returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// Empty and every sender is gone; nothing will ever arrive.
        Disconnected,
    }

    /// A FIFO channel buffering at most `capacity` messages; `send` blocks
    /// while full. Capacity 0 (upstream's rendezvous mode) is promoted
    /// to 1 — see the crate docs.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(capacity.max(1))
    }

    /// A FIFO channel with no backpressure; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(usize::MAX)
    }

    fn with_capacity<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Delivers `msg`, blocking while the channel is full. Fails —
        /// returning the message — once every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.lock();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(msg));
                }
                if state.queue.len() < state.capacity {
                    state.queue.push_back(msg);
                    drop(state);
                    self.chan.readable.notify_one();
                    return Ok(());
                }
                state = self
                    .chan
                    .writable
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Receiver { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.lock().senders += 1;
            Self {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut state = self.chan.lock();
                state.senders -= 1;
                state.senders
            };
            if remaining == 0 {
                // Wake blocked receivers so they observe the disconnect.
                self.chan.readable.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Takes the next message, blocking until one arrives. Fails once
        /// the channel is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.chan.lock();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    drop(state);
                    self.chan.writable.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .chan
                    .readable
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Takes the next message if one is ready, without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.chan.lock();
            match state.queue.pop_front() {
                Some(msg) => {
                    drop(state);
                    self.chan.writable.notify_one();
                    Ok(msg)
                }
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Takes the next message, blocking at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.chan.lock();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    drop(state);
                    self.chan.writable.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, result) = self
                    .chan
                    .readable
                    .wait_timeout(state, left)
                    .unwrap_or_else(|e| e.into_inner());
                state = guard;
                if result.timed_out() && state.queue.is_empty() {
                    if state.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.lock().receivers += 1;
            Self {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut state = self.chan.lock();
                state.receivers -= 1;
                state.receivers
            };
            if remaining == 0 {
                // Wake blocked senders so they observe the disconnect.
                self.chan.writable.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod channel_tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn unbounded_fifo_roundtrip() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded();
        tx.send(1u32).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(7u32).is_err());
    }

    #[test]
    fn bounded_blocks_until_space_frees() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        let total = crate::scope(|s| {
            let h = s.spawn(move |_| {
                // Blocks until the main thread drains the first message.
                tx.send(2u32).unwrap();
            });
            let a = rx.recv().unwrap();
            let b = rx.recv().unwrap();
            h.join().unwrap();
            a + b
        })
        .unwrap();
        assert_eq!(total, 3);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9u32).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cross_thread_producer_consumer() {
        let (tx, rx) = bounded(4);
        let sum = crate::scope(|s| {
            for chunk in 0..4u64 {
                let tx = tx.clone();
                s.spawn(move |_| {
                    for i in 0..25u64 {
                        tx.send(chunk * 25 + i).unwrap();
                    }
                });
            }
            drop(tx);
            let mut sum = 0u64;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            sum
        })
        .unwrap();
        assert_eq!(sum, (0..100).sum());
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = crate::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let n = crate::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }
}
