//! Offline stand-in for `crossbeam`.
//!
//! Provides the scoped-thread API (`crossbeam::scope` /
//! `crossbeam::thread::scope`) the engine uses, implemented on top of
//! `std::thread::scope` (stable since Rust 1.63). Semantics differ from
//! upstream in one way: a panicking child thread propagates through
//! `std::thread::scope` instead of surfacing as `Err` from `scope`, so the
//! `Result` returned here is always `Ok`. Callers that `.unwrap()` the
//! scope result (the common idiom) behave identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use thread::scope;

pub mod thread {
    //! Scoped threads.

    use std::thread as std_thread;

    /// A scope handle: spawn borrows non-`'static` data from the
    /// environment; all spawned threads join before `scope` returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned within a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result.
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope for spawning threads that borrow from the caller's
    /// stack. Always returns `Ok` (see crate docs for the panic-semantics
    /// difference from upstream).
    pub fn scope<'env, F, R>(f: F) -> std_thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = crate::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let n = crate::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }
}
