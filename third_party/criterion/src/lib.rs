//! Offline stand-in for `criterion`.
//!
//! Reproduces the macro/API surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion`, benchmark groups,
//! `BenchmarkId`, `Throughput`, `black_box`) with a simple
//! calibrate-then-measure timing loop instead of criterion's full
//! statistical machinery. Good enough to rank hot paths and track
//! regressions offline; not a substitute for criterion's CIs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum wall-clock time each benchmark is measured for.
const MEASURE_TARGET: Duration = Duration::from_millis(300);

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

/// Label for one benchmark case within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Throughput annotation for a group (reported as elements/sec).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The per-benchmark timing handle.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`: calibrates an iteration count, then measures.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: find an iteration count that runs ≳ MEASURE_TARGET.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= MEASURE_TARGET || n >= 1 << 20 {
                self.iters_done = n;
                self.elapsed = took;
                return;
            }
            let scale = (MEASURE_TARGET.as_secs_f64() / took.as_secs_f64().max(1e-9)).min(64.0);
            n = ((n as f64 * scale).ceil() as u64).max(n + 1);
        }
    }

    fn ns_per_iter(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.iters_done.max(1) as f64
    }
}

fn report(group: Option<&str>, name: &str, throughput: Option<Throughput>, b: &Bencher) {
    let full = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    let ns = b.ns_per_iter();
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / (ns / 1e9))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 / (ns / 1e9))
        }
        None => String::new(),
    };
    println!(
        "bench: {full:<52} {:>14} ns/iter ({} iters){rate}",
        format_ns(ns),
        b.iters_done
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else {
        format!("{ns:.1}")
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the group's throughput annotation.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for source compatibility; the stub sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for source compatibility; the stub sizes runs by time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(Some(&self.name), &id.to_string(), self.throughput, &b);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        report(Some(&self.name), &id.to_string(), self.throughput, &b);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(None, name, None, &b);
        self
    }
}

/// Declares a group of benchmark functions, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs each group, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
