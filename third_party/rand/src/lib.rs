//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the *API subset it actually uses* — `RngCore`, `SeedableRng`, the `Rng`
//! extension trait (`gen`, `gen_range`, `gen_bool`) and `rngs::StdRng` —
//! behind the same paths as rand 0.8. The generator is xoshiro256\*\*
//! seeded through splitmix64: deterministic, fast, and statistically solid
//! for simulation workloads. Streams are **not** bit-compatible with
//! upstream `StdRng` (ChaCha12); the workspace only relies on internal
//! determinism, never on upstream-exact draws.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (never produced by [`rngs::StdRng`]).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator by expanding a `u64` through splitmix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = Splitmix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct Splitmix64(u64);

impl Splitmix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64, u128 => next_u64, i128 => next_u64);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}

sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        f64::draw(self) < p
    }

    /// Fills `dest` with uniform values.
    fn fill<T: Standard>(&mut self, dest: &mut [T]) {
        for slot in dest.iter_mut() {
            *slot = T::draw(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng, Splitmix64};

    /// The workspace's standard deterministic generator: xoshiro256\*\*.
    ///
    /// Not bit-compatible with upstream rand's ChaCha12-based `StdRng`;
    /// the workspace depends only on internal reproducibility.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Exports the raw xoshiro256\*\* state for checkpointing.
        ///
        /// A generator restored via [`StdRng::restore`] from this value
        /// continues the exact output sequence, which is what lets the
        /// simulation engine freeze and resume RNG cursors bit-identically.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state exported by [`StdRng::state`].
        ///
        /// The all-zero state is unreachable from any seeded generator
        /// (xoshiro preserves non-zeroness); it is remapped through
        /// splitmix64 the same way `from_seed` handles degenerate seeds so
        /// a corrupted checkpoint cannot produce a stuck generator.
        pub fn restore(state: [u64; 4]) -> Self {
            let mut s = state;
            if s == [0; 4] {
                let mut sm = Splitmix64(0x9E37_79B9_7F4A_7C15);
                for word in s.iter_mut() {
                    *word = sm.next();
                }
            }
            Self { s }
        }

        fn next(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state; mix the seed
            // through splitmix64 so even degenerate seeds work.
            if s == [0; 4] {
                let mut sm = Splitmix64(0x9E37_79B9_7F4A_7C15);
                for word in s.iter_mut() {
                    *word = sm.next();
                }
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::from_seed([7; 32]);
        let mut b = StdRng::from_seed([7; 32]);
        let xs: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::from_seed([8; 32]);
        assert_ne!(xs[0], c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&z));
        }
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0; 32]);
        let draws: Vec<u64> = (0..8).map(|_| rng.gen()).collect();
        assert!(draws.iter().any(|&x| x != 0));
    }
}
