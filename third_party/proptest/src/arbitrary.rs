//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (see [`any`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The canonical full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary_value(rng: &mut TestRng) -> crate::sample::Index {
        crate::sample::Index::from_raw(rng.next_u64())
    }
}
