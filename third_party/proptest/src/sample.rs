//! Sampling helpers (`prop::sample`).

/// An arbitrary index into a collection of as-yet-unknown size, as in
/// upstream proptest: draw one via `any::<prop::sample::Index>()`, then
/// project it onto a concrete length with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index {
    raw: u64,
}

impl Index {
    pub(crate) fn from_raw(raw: u64) -> Self {
        Self { raw }
    }

    /// Projects this index onto a collection of `len` elements.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.raw % len as u64) as usize
    }
}
