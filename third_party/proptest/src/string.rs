//! Regex-literal string strategies.
//!
//! Upstream proptest treats `&str` strategies as full regexes. This stand-in
//! parses the subset the workspace actually writes:
//!
//! * literal characters (everything outside the forms below)
//! * `.` — any printable ASCII (0x20..=0x7E)
//! * `[...]` character classes with ranges (`A-Z`), literal members, and a
//!   trailing `-` treated literally
//! * `{n}` / `{m,n}` repetition applied to the preceding atom
//!
//! Anything else is generated verbatim as a literal.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// One parsed unit of the pattern: a set of candidate chars plus a
/// repetition range (inclusive).
#[derive(Debug, Clone)]
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// A compiled pattern strategy; see [`pattern`].
#[derive(Debug, Clone)]
pub struct PatternStrategy {
    atoms: Vec<Atom>,
}

impl Strategy for PatternStrategy {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let count = rng.usize_in(atom.min, atom.max);
            for _ in 0..count {
                let pick = rng.usize_in(0, atom.chars.len() - 1);
                out.push(atom.chars[pick]);
            }
        }
        out
    }
}

/// All printable ASCII, the expansion of `.` here.
fn printable_ascii() -> Vec<char> {
    (0x20u8..=0x7Eu8).map(|b| b as char).collect()
}

/// Parses a `[...]` body (without brackets) into its member characters.
fn parse_class(body: &str) -> Vec<char> {
    let mut chars = Vec::new();
    let items: Vec<char> = body.chars().collect();
    let mut i = 0;
    while i < items.len() {
        if i + 2 < items.len() && items[i + 1] == '-' {
            let (lo, hi) = (items[i], items[i + 2]);
            for c in lo..=hi {
                chars.push(c);
            }
            i += 3;
        } else {
            // Covers literal members and a trailing '-'.
            chars.push(items[i]);
            i += 1;
        }
    }
    chars.sort_unstable();
    chars.dedup();
    assert!(!chars.is_empty(), "empty character class");
    chars
}

/// Parses a `{n}` / `{m,n}` body (without braces) into (min, max).
fn parse_repeat(body: &str) -> (usize, usize) {
    match body.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse().expect("bad repetition lower bound"),
            hi.trim().parse().expect("bad repetition upper bound"),
        ),
        None => {
            let n = body.trim().parse().expect("bad repetition count");
            (n, n)
        }
    }
}

/// Compiles `pat` into a string strategy.
pub fn pattern(pat: impl AsRef<str>) -> PatternStrategy {
    let pat = pat.as_ref();
    let mut atoms: Vec<Atom> = Vec::new();
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '.' => {
                atoms.push(Atom {
                    chars: printable_ascii(),
                    min: 1,
                    max: 1,
                });
                i += 1;
            }
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + 1 + p)
                    .expect("unterminated character class");
                let body: String = chars[i + 1..close].iter().collect();
                atoms.push(Atom {
                    chars: parse_class(&body),
                    min: 1,
                    max: 1,
                });
                i = close + 1;
            }
            '{' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + 1 + p)
                    .expect("unterminated repetition");
                let body: String = chars[i + 1..close].iter().collect();
                let (min, max) = parse_repeat(&body);
                let atom = atoms.last_mut().expect("repetition with no atom");
                atom.min = min;
                atom.max = max;
                i = close + 1;
            }
            '\\' => {
                // Escaped literal.
                let lit = chars.get(i + 1).copied().expect("dangling escape");
                atoms.push(Atom {
                    chars: vec![lit],
                    min: 1,
                    max: 1,
                });
                i += 2;
            }
            c => {
                atoms.push(Atom {
                    chars: vec![c],
                    min: 1,
                    max: 1,
                });
                i += 1;
            }
        }
    }
    PatternStrategy { atoms }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_with_range_and_literals() {
        let s = pattern("[A-Za-z0-9 ]{1,20}");
        let mut rng = TestRng::from_name("class_test");
        for _ in 0..200 {
            let v = s.gen_value(&mut rng);
            assert!((1..=20).contains(&v.chars().count()), "{v:?}");
            assert!(
                v.chars().all(|c| c.is_ascii_alphanumeric() || c == ' '),
                "{v:?}"
            );
        }
    }

    #[test]
    fn dot_repetition_allows_empty() {
        let s = pattern(".{0,80}");
        let mut rng = TestRng::from_name("dot_test");
        let mut saw_empty = false;
        for _ in 0..400 {
            let v = s.gen_value(&mut rng);
            assert!(v.chars().count() <= 80);
            assert!(v.chars().all(|c| (' '..='~').contains(&c)), "{v:?}");
            saw_empty |= v.is_empty();
        }
        assert!(saw_empty, "length 0 should occur in 400 draws");
    }

    #[test]
    fn trailing_dash_is_literal() {
        let s = pattern("[a-c-]{1,8}");
        let mut rng = TestRng::from_name("dash_test");
        for _ in 0..100 {
            let v = s.gen_value(&mut rng);
            assert!(v.chars().all(|c| matches!(c, 'a'..='c' | '-')), "{v:?}");
        }
    }

    #[test]
    fn plain_literal_round_trips() {
        let s = pattern("hello");
        let mut rng = TestRng::from_name("lit_test");
        assert_eq!(s.gen_value(&mut rng), "hello");
    }
}
