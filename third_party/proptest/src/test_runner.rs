//! The runner substrate: configuration, failure type, and the test RNG.

use std::fmt;

/// Per-block configuration, mirroring the upstream fields this workspace
/// uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed property case (produced by the `prop_assert*` macros).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic generator behind every strategy draw.
///
/// Seeded from the property's module path, so a given test binary replays
/// the exact same cases run over run — failures are reproducible without
/// persisted seeds.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// An RNG seeded from the test's fully qualified name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, then splitmix64 to fill the state.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut state = h;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniform bits (xoshiro256\*\*).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi]`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + (self.next_u64() % (hi - lo + 1) as u64) as usize
    }
}
