//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;
use crate::DynStrategy;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// Object-safe generation core; implemented via [`Strategy`].
pub trait StrategyObj {
    /// The generated value type.
    type Value;
    /// Generates one value.
    fn gen_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> StrategyObj for S {
    type Value = S::Value;
    fn gen_dyn(&self, rng: &mut TestRng) -> Self::Value {
        self.gen_value(rng)
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy behind a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }

    /// Builds a recursive strategy: `f` receives a strategy for the
    /// "inner" levels and returns the branching level. `depth` bounds the
    /// recursion; `_desired_size` and `_expected_branch_size` are accepted
    /// for source compatibility with upstream.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            // Each level is a coin flip between bottoming out at the base
            // strategy and recursing one level deeper, so generated values
            // mix leaves and branches with depth ≤ `depth`.
            current = union(vec![base.clone(), f(current).boxed()]);
        }
        current
    }
}

/// A cloneable, type-erased [`Strategy`].
pub struct BoxedStrategy<V> {
    inner: DynStrategy<V>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng) -> V {
        self.inner.gen_dyn(rng)
    }

    fn boxed(self) -> BoxedStrategy<V>
    where
        Self: Sized + 'static,
    {
        self
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Maps another strategy's values through a function.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Uniformly picks one of several strategies per generated value (the
/// engine behind [`crate::prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng) -> V {
        let pick = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[pick].gen_value(rng)
    }
}

/// Builds a [`Union`] over the given arms.
pub fn union<V>(arms: Vec<BoxedStrategy<V>>) -> BoxedStrategy<V>
where
    V: 'static,
{
    assert!(!arms.is_empty(), "union needs at least one arm");
    Union { arms }.boxed()
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn gen_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$v:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/a, B/b)
    (A/a, B/b, C/c)
    (A/a, B/b, C/c, D/d)
    (A/a, B/b, C/c, D/d, E/e)
}

impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        crate::string::pattern(self).gen_value(rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        crate::string::pattern(self).gen_value(rng)
    }
}
