//! Collection strategies (`prop::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Strategy for `Vec<T>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.size.start < self.size.end, "empty size range");
        let len = rng.usize_in(self.size.start, self.size.end - 1);
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// A `Vec` strategy with elements from `element` and length in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy for `BTreeSet<T>` with a target size drawn from `size`.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        assert!(self.size.start < self.size.end, "empty size range");
        let target = rng.usize_in(self.size.start, self.size.end - 1);
        let mut set = BTreeSet::new();
        // Duplicate draws shrink the set below `target`; cap the retries so
        // narrow element domains still terminate.
        let mut attempts = 0usize;
        while set.len() < target && attempts < target.saturating_mul(10) + 16 {
            set.insert(self.element.gen_value(rng));
            attempts += 1;
        }
        set
    }
}

/// A `BTreeSet` strategy with elements from `element` and size in `size`.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

/// Strategy for `BTreeMap<K, V>` with a target size drawn from `size`.
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        assert!(self.size.start < self.size.end, "empty size range");
        let target = rng.usize_in(self.size.start, self.size.end - 1);
        let mut map = BTreeMap::new();
        let mut attempts = 0usize;
        while map.len() < target && attempts < target.saturating_mul(10) + 16 {
            map.insert(self.key.gen_value(rng), self.value.gen_value(rng));
            attempts += 1;
        }
        map
    }
}

/// A `BTreeMap` strategy with keys/values from the given strategies and
/// size in `size`.
pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy { key, value, size }
}
