//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest's API this workspace's property tests
//! use — the `proptest!` / `prop_assert*!` / `prop_oneof!` macros, the
//! [`Strategy`] trait with `prop_map` / `prop_recursive`, range and
//! regex-literal strategies, `prop::collection::{vec, btree_set,
//! btree_map}`, `prop::sample::Index`, and `any::<T>()` — as a plain
//! randomized test runner.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports the case number and message;
//!   re-running is deterministic (the RNG is seeded from the test's module
//!   path), so failures reproduce exactly.
//! * **Regex strategies** support the literal/class/`{m,n}` subset the
//!   workspace uses (e.g. `"[A-Za-z0-9 ]{1,20}"`, `".{0,80}"`), not full
//!   regex syntax.
//! * Default case count is 64 (upstream: 256) to fit the single-core CI
//!   budget; `ProptestConfig::with_cases` overrides per block.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

pub mod test_runner;
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

pub mod strategy;
pub use strategy::{BoxedStrategy, Just, Strategy};

pub mod arbitrary;
pub use arbitrary::{any, Arbitrary};

pub mod collection;
pub mod sample;
pub mod string;

/// The `proptest::prelude`, mirroring the upstream import surface.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::string;
    }
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items, as upstream.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                $( let $arg = $crate::Strategy::gen_value(&($strat), &mut rng); )*
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l == r,
                    "assertion failed: {:?} != {:?}: {}",
                    l,
                    r,
                    format!($($fmt)+)
                );
            }
        }
    };
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
            }
        }
    };
}

/// Picks one of several strategies (uniformly) per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::union(vec![ $( $crate::Strategy::boxed($arm) ),+ ])
    };
}

// Internal helper used by BoxedStrategy.
pub(crate) type DynStrategy<V> = Arc<dyn strategy::StrategyObj<Value = V>>;
