//! Offline stand-in for the `bytes` crate.
//!
//! Provides the `BytesMut` + `BufMut` subset the encoding pipeline uses,
//! backed by a plain `Vec<u8>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// A growable byte buffer (Vec-backed stand-in for `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Consumes the buffer, yielding its bytes ("freezing" it).
    pub fn freeze(self) -> Vec<u8> {
        self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

/// Append-only byte-sink operations (stand-in for `bytes::BufMut`).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_read_back() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u8(1);
        buf.put_slice(&[2, 3]);
        buf.put_u16(0x0405);
        assert_eq!(buf.to_vec(), vec![1, 2, 3, 4, 5]);
        assert_eq!(buf.len(), 5);
        assert_eq!(buf.freeze(), vec![1, 2, 3, 4, 5]);
    }
}
