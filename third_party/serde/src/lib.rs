//! Offline stand-in for `serde`.
//!
//! The workspace decorates types with `#[derive(Serialize, Deserialize)]`
//! but never serializes them (no format crate is in the tree), so this
//! stub provides blanket-implemented marker traits and re-exports the
//! no-op derives under the upstream names. Swapping the real serde back in
//! requires only restoring the registry dependency — call sites are
//! source-compatible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
