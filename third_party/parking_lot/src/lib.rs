//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API
//! (no lock poisoning: a poisoned std lock is recovered transparently,
//! matching parking_lot's semantics where panicking while holding a lock
//! simply releases it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock (std-backed, poison-free API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock (std-backed, poison-free API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
