//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as
//! declarative markers — nothing serializes at runtime (there is no
//! serde_json in the dependency tree). These derives therefore expand to
//! nothing; the marker traits in the stub `serde` crate are implemented
//! blanket-wide. `#[serde(...)]` helper attributes are accepted and
//! ignored.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
