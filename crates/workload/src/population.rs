//! Synthetic user populations.
//!
//! Generates platform users end to end, through the same interfaces real
//! data flows through:
//!
//! 1. register the user with demographics (ages, genders, states drawn
//!    deterministically);
//! 2. attach PII (email always; phone for most, sometimes with 2FA or
//!    contact-sync provenance — the PETS 2019 finding E7 builds on);
//! 3. grant **platform attributes** by catalog prevalence;
//! 4. build a **broker dossier** from the user's footprint (sparse, per
//!    `treads_broker::CoverageModel`), ship all dossiers as a
//!    [`treads_broker::BrokerFeed`], and onboard the feed — partner
//!    attributes arrive on profiles only via hashed-PII matching, exactly
//!    like production partner integrations.

use crate::names;
use adplatform::attributes::US_STATES;
use adplatform::profile::{Gender, PiiKind, PiiProvenance};
use adplatform::Platform;
use adsim_types::rng::SeedSource;
use adsim_types::UserId;
use rand::Rng;
use serde::{Deserialize, Serialize};
use treads_broker::coverage::Footprint;
use treads_broker::{BrokerFeed, CoverageModel};

/// A hand-specified persona (used by the validation scenario for the two
/// authors).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Persona {
    /// Display label.
    pub label: String,
    /// Age.
    pub age: u8,
    /// Gender.
    pub gender: Gender,
    /// U.S. state.
    pub state: String,
    /// ZIP code.
    pub zip: String,
    /// Email (PII).
    pub email: String,
    /// Exact partner attributes this persona's broker dossier asserts
    /// (empty = no dossier at all).
    pub partner_attributes: Vec<String>,
    /// Platform attribute names to grant directly.
    pub platform_attributes: Vec<String>,
}

/// Population generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Number of users to generate.
    pub size: usize,
    /// Fraction of users who attach a phone number.
    pub phone_rate: f64,
    /// Of phone-attachers, fraction whose phone arrived via 2FA.
    pub two_factor_rate: f64,
    /// Scale on platform-attribute prevalences.
    pub platform_attribute_scale: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        Self {
            size: 1_000,
            phone_rate: 0.7,
            two_factor_rate: 0.3,
            platform_attribute_scale: 1.0,
        }
    }
}

/// What population generation produced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PopulationReport {
    /// The generated users, in creation order.
    pub users: Vec<UserId>,
    /// Users whose broker dossier matched (have ≥1 partner attribute).
    pub broker_covered: usize,
    /// Total partner-attribute grants from feed onboarding.
    pub partner_grants: usize,
}

/// Generates a population onto the platform (see module docs for the
/// pipeline). Deterministic per `(platform seed-independent) seeds` value.
pub fn generate(
    platform: &mut Platform,
    config: &PopulationConfig,
    coverage: &CoverageModel,
    seeds: SeedSource,
) -> PopulationReport {
    let mut rng = seeds.rng("population");
    let mut feed = BrokerFeed::new();
    let mut users = Vec::with_capacity(config.size);
    let partner_names: std::collections::BTreeSet<String> = platform
        .attributes
        .partner_attributes()
        .iter()
        .map(|d| d.name.clone())
        .collect();
    // Broker catalog for dossier sampling (same construction as the
    // platform's partner side).
    let broker_catalog = treads_broker::PartnerCatalog::us();

    for i in 0..config.size {
        let age = rng.gen_range(18..80);
        let gender = match i % 3 {
            0 => Gender::Female,
            1 => Gender::Male,
            _ => Gender::Unspecified,
        };
        let state = US_STATES[rng.gen_range(0..US_STATES.len())];
        let zip = format!("{:05}", 10_000 + rng.gen_range(0..80_000));
        let user = platform.register_user(age, gender, state, &zip);
        users.push(user);

        // PII.
        let email = names::email(i);
        platform
            .attach_user_pii(user, PiiKind::Email, &email, PiiProvenance::UserProvided)
            .expect("fresh user");
        let mut phone = None;
        if rng.gen::<f64>() < config.phone_rate {
            let raw = names::phone(i);
            let provenance = if rng.gen::<f64>() < config.two_factor_rate {
                PiiProvenance::TwoFactor
            } else {
                PiiProvenance::UserProvided
            };
            platform
                .attach_user_pii(user, PiiKind::Phone, &raw, provenance)
                .expect("fresh user");
            phone = Some(raw);
        }

        // Platform attributes by prevalence.
        let grants: Vec<_> = platform
            .attributes
            .platform_attributes()
            .iter()
            .filter(|d| {
                rng.gen::<f64>() < (d.prevalence * config.platform_attribute_scale).min(1.0)
            })
            .map(|d| d.id)
            .collect();
        for id in grants {
            platform
                .profiles
                .grant_attribute(user, id)
                .expect("fresh user");
        }

        // Broker dossier from a sampled footprint.
        let footprint = Footprint {
            years_resident: rng.gen_range(0.0..40.0),
            affluence: rng.gen::<f64>(),
            purchase_activity: rng.gen::<f64>(),
        };
        if let Some(dossier) = coverage.sample_dossier(
            &broker_catalog,
            &footprint,
            &email,
            phone.as_deref(),
            &mut rng,
        ) {
            feed.ingest(dossier);
        }
    }

    let partner_grants = platform.onboard_broker_feed(&feed);
    let broker_covered = users
        .iter()
        .filter(|&&u| {
            platform
                .profile(u)
                .expect("generated user")
                .attributes
                .iter()
                .any(|id| {
                    platform
                        .attributes
                        .get(*id)
                        .map(|d| partner_names.contains(&d.name))
                        .unwrap_or(false)
                })
        })
        .count();

    PopulationReport {
        users,
        broker_covered,
        partner_grants,
    }
}

/// Installs a hand-specified persona: registers the user, attaches PII,
/// grants platform attributes, and (if the persona has partner
/// attributes) ships a one-dossier broker feed and onboards it.
pub fn install_persona(platform: &mut Platform, persona: &Persona) -> UserId {
    let user = platform.register_user(persona.age, persona.gender, &persona.state, &persona.zip);
    platform
        .attach_user_pii(
            user,
            PiiKind::Email,
            &persona.email,
            PiiProvenance::UserProvided,
        )
        .expect("fresh persona user");
    for name in &persona.platform_attributes {
        let id = platform
            .attributes
            .id_of(name)
            .unwrap_or_else(|| panic!("persona references unknown platform attribute {name:?}"));
        platform
            .profiles
            .grant_attribute(user, id)
            .expect("fresh persona user");
    }
    if !persona.partner_attributes.is_empty() {
        let mut record = treads_broker::BrokerRecord::from_pii(&persona.email, None);
        for name in &persona.partner_attributes {
            record.assert_attribute(name.clone());
        }
        let mut feed = BrokerFeed::new();
        feed.ingest(record);
        platform.onboard_broker_feed(&feed);
    }
    user
}

#[cfg(test)]
mod tests {
    use super::*;
    use adplatform::PlatformConfig;

    fn small_platform() -> Platform {
        Platform::us_2018(PlatformConfig::default())
    }

    #[test]
    fn generate_produces_full_profiles() {
        let mut p = small_platform();
        let config = PopulationConfig {
            size: 60,
            ..PopulationConfig::default()
        };
        let report = generate(
            &mut p,
            &config,
            &CoverageModel::default(),
            SeedSource::new(42),
        );
        assert_eq!(report.users.len(), 60);
        assert_eq!(p.profiles.len(), 60);
        // Everyone has an email; most have attributes.
        let with_attrs = report
            .users
            .iter()
            .filter(|&&u| !p.profile(u).expect("u").attributes.is_empty())
            .count();
        assert!(with_attrs > 50);
        // Broker coverage is partial, not total (sparse by design).
        assert!(report.broker_covered > 0);
        assert!(report.broker_covered < 60);
        assert!(report.partner_grants > 0);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let run = |seed| {
            let mut p = small_platform();
            let config = PopulationConfig {
                size: 30,
                ..PopulationConfig::default()
            };
            let report = generate(
                &mut p,
                &config,
                &CoverageModel::default(),
                SeedSource::new(seed),
            );
            let sizes: Vec<usize> = report
                .users
                .iter()
                .map(|&u| p.profile(u).expect("u").attributes.len())
                .collect();
            (report.partner_grants, sizes)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn persona_installation() {
        let mut p = small_platform();
        let persona = Persona {
            label: "author A".into(),
            age: 45,
            gender: Gender::Male,
            state: "Massachusetts".into(),
            zip: "02115".into(),
            email: "authorA@example.com".into(),
            partner_attributes: vec!["Net worth: $2M+".into()],
            platform_attributes: vec!["Interest: musicals (Music)".into()],
        };
        let user = install_persona(&mut p, &persona);
        let profile = p.profile(user).expect("installed");
        let nw = p.attributes.id_of("Net worth: $2M+").expect("attr");
        let musicals = p
            .attributes
            .id_of("Interest: musicals (Music)")
            .expect("attr");
        assert!(profile.has_attribute(nw));
        assert!(profile.has_attribute(musicals));
    }

    #[test]
    #[should_panic(expected = "unknown platform attribute")]
    fn persona_with_bad_attribute_panics() {
        let mut p = small_platform();
        let persona = Persona {
            label: "bad".into(),
            age: 30,
            gender: Gender::Female,
            state: "Ohio".into(),
            zip: "43004".into(),
            email: "x@example.com".into(),
            partner_attributes: vec![],
            platform_attributes: vec!["No such".into()],
        };
        install_persona(&mut p, &persona);
    }
}
