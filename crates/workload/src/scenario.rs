//! Experiment scenario presets.
//!
//! [`ValidationScenario`] is the paper's §3.1 validation, faithfully
//! staged: a U.S.-2018 platform (614 platform attributes + 507 partner
//! categories), a transparency provider bidding $10 CPM (5× the $2
//! recommendation), page-based opt-in, and two users modeled on the
//! paper's two U.S.-based authors — author A with exactly the eleven
//! partner attributes the paper reports revealing (net worth, restaurant
//! and apparel purchase behaviour, job role, home type, auto purchase
//! intent, charitable giving), author B a recent-arrival graduate student
//! with no broker dossier at all.
//!
//! [`CohortScenario`] generates an N-user opted-in cohort over a full
//! synthetic population, for the cost/privacy/baseline experiments.

use crate::population::{generate, install_persona, Persona, PopulationConfig};
use adplatform::profile::Gender;
use adplatform::{Platform, PlatformConfig};
use adsim_types::rng::SeedSource;
use adsim_types::{AudienceId, Money, UserId};
use adsim_types::{SimTime, SiteId};
use std::collections::BTreeMap;
use treads_broker::catalog::VALIDATION_ATTRIBUTES;
use treads_broker::CoverageModel;
use treads_core::provider::TransparencyProvider;
use websim::extension::ExtensionLog;
use websim::session::{BrowsingEvent, SessionSchedule};
use websim::site::SiteRegistry;

/// The staged validation rig.
#[derive(Debug)]
pub struct ValidationScenario {
    /// The ad platform.
    pub platform: Platform,
    /// The transparency provider ("Know Your Data").
    pub provider: TransparencyProvider,
    /// The provider's opt-in page.
    pub page: u64,
    /// The page-engagement audience of opted-in users.
    pub optin_audience: AudienceId,
    /// Author A: long-time resident, rich broker dossier (the 11
    /// validation attributes).
    pub author_a: UserId,
    /// Author B: recent arrival, no dossier.
    pub author_b: UserId,
    /// Browsable sites (one ad-carrying feed).
    pub sites: SiteRegistry,
    /// The feed site.
    pub feed_site: SiteId,
}

impl ValidationScenario {
    /// The provider's bid cap in the validation: $10 CPM, five times the
    /// recommended $2.
    pub fn validation_bid() -> Money {
        Money::dollars(10)
    }

    /// Stages the full scenario.
    pub fn setup(seed: u64) -> Self {
        let config = PlatformConfig {
            seed,
            ..PlatformConfig::default()
        };
        let mut platform = Platform::us_2018(config);

        // The two authors.
        let author_a = install_persona(
            &mut platform,
            &Persona {
                label: "author A (long-time US resident)".into(),
                age: 45,
                gender: Gender::Male,
                state: "Massachusetts".into(),
                zip: "02115".into(),
                email: "author.a@example.com".into(),
                partner_attributes: VALIDATION_ATTRIBUTES
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                platform_attributes: vec![
                    "Interest: musicals (Music)".into(),
                    "Behavior: ios user".into(),
                ],
            },
        );
        let author_b = install_persona(
            &mut platform,
            &Persona {
                label: "author B (graduate student, ~1 year in the US)".into(),
                age: 27,
                gender: Gender::Male,
                state: "Massachusetts".into(),
                zip: "02115".into(),
                email: "author.b@example.com".into(),
                partner_attributes: vec![], // no broker dossier
                platform_attributes: vec!["Interest: coffee (Food & Drink)".into()],
            },
        );

        // The provider, its page, and opt-in by page like.
        let provider = TransparencyProvider::register(
            &mut platform,
            "Know Your Data",
            seed ^ 0x7472_6561_6400,
            Self::validation_bid(),
        )
        .expect("fresh platform accepts the provider");
        let (page, optin_audience) = provider
            .setup_page_optin(&mut platform)
            .expect("fresh provider account is active");
        platform
            .user_likes_page(author_a, page)
            .expect("author A exists");
        platform
            .user_likes_page(author_b, page)
            .expect("author B exists");
        // One ad-carrying feed site.
        let mut sites = SiteRegistry::new();
        let feed_site = sites.create("social-feed.example", 1);

        Self {
            platform,
            provider,
            page,
            optin_audience,
            author_a,
            author_b,
            sites,
            feed_site,
        }
    }

    /// Drives `rounds` feed page-views for both authors (interleaved, one
    /// simulated minute apart) with extensions installed, and returns the
    /// extension logs.
    pub fn browse_authors(&mut self, rounds: usize) -> BTreeMap<UserId, ExtensionLog> {
        let start = self.platform.clock.now().millis();
        let mut events = Vec::with_capacity(rounds * 2);
        for r in 0..rounds {
            for (slot, user) in [self.author_a, self.author_b].into_iter().enumerate() {
                events.push(BrowsingEvent::PageView {
                    user,
                    site: self.feed_site,
                    at: SimTime(start + (r as u64 * 2 + slot as u64) * 60_000),
                });
            }
        }
        let schedule = SessionSchedule::from_events(events);
        let mut extensions = BTreeMap::new();
        extensions.insert(self.author_a, ExtensionLog::for_user(self.author_a));
        extensions.insert(self.author_b, ExtensionLog::for_user(self.author_b));
        schedule.drive(&mut self.platform, &self.sites, &mut extensions);
        extensions
    }

    /// All 507 partner-attribute names, in catalog order — the paper's
    /// full validation plan.
    pub fn partner_attribute_names(&self) -> Vec<String> {
        self.platform
            .attributes
            .partner_attributes()
            .iter()
            .map(|d| d.name.clone())
            .collect()
    }
}

/// An N-user opted-in cohort over a synthetic population.
#[derive(Debug)]
pub struct CohortScenario {
    /// The ad platform.
    pub platform: Platform,
    /// The transparency provider.
    pub provider: TransparencyProvider,
    /// The anonymous (pixel) opt-in audience.
    pub optin_audience: AudienceId,
    /// The opt-in pixel.
    pub optin_pixel: adsim_types::PixelId,
    /// All generated users.
    pub users: Vec<UserId>,
    /// The subset that opted in.
    pub opted_in: Vec<UserId>,
}

impl CohortScenario {
    /// Generates a population of `population` users of whom the first
    /// `optin` opt in anonymously via the provider's pixel.
    pub fn setup(seed: u64, population: usize, optin: usize) -> Self {
        assert!(optin <= population, "cannot opt in more users than exist");
        let mut platform = Platform::us_2018(PlatformConfig {
            seed,
            ..PlatformConfig::default()
        });
        let report = generate(
            &mut platform,
            &PopulationConfig {
                size: population,
                ..PopulationConfig::default()
            },
            &CoverageModel::default(),
            SeedSource::new(seed),
        );
        let provider = TransparencyProvider::register(
            &mut platform,
            "Know Your Data",
            seed ^ 0x636f_686f_7274,
            Money::dollars(2), // the recommended bid, for cost experiments
        )
        .expect("fresh platform accepts the provider");
        let (optin_pixel, optin_audience) = provider
            .setup_pixel_optin(&mut platform, "cohort-optin")
            .expect("fresh provider account is active");
        let opted_in: Vec<UserId> = report.users.iter().take(optin).copied().collect();
        treads_core::optin::optin_by_pixel(&mut platform, optin_pixel, &opted_in)
            .expect("generated users exist");
        Self {
            platform,
            provider,
            optin_audience,
            optin_pixel,
            users: report.users,
            opted_in,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_scenario_stages_the_paper_setup() {
        let s = ValidationScenario::setup(1);
        // Both authors opted in.
        let aud = s
            .platform
            .audiences
            .get(s.optin_audience)
            .expect("audience exists");
        assert!(aud.contains(s.author_a));
        assert!(aud.contains(s.author_b));
        // Author A holds exactly the 11 validation partner attributes.
        let partner_held = |u| {
            s.platform
                .profile(u)
                .expect("author exists")
                .attributes
                .iter()
                .filter(|id| {
                    s.platform
                        .attributes
                        .get(**id)
                        .map(|d| d.source.is_partner())
                        .unwrap_or(false)
                })
                .count()
        };
        assert_eq!(partner_held(s.author_a), 11);
        assert_eq!(partner_held(s.author_b), 0);
        assert_eq!(s.partner_attribute_names().len(), 507);
    }

    #[test]
    fn browse_authors_returns_both_logs() {
        let mut s = ValidationScenario::setup(2);
        let logs = s.browse_authors(3);
        assert_eq!(logs.len(), 2);
        assert!(logs.contains_key(&s.author_a));
        // No Treads run yet → nothing captured (background competitors
        // win auctions but their ads are not ours).
        assert!(logs[&s.author_a].is_empty());
    }

    #[test]
    fn cohort_scenario_opts_in_the_requested_subset() {
        let s = CohortScenario::setup(3, 50, 20);
        assert_eq!(s.users.len(), 50);
        assert_eq!(s.opted_in.len(), 20);
        let aud = s
            .platform
            .audiences
            .get(s.optin_audience)
            .expect("audience exists");
        assert_eq!(aud.exact_size(), 20);
    }

    #[test]
    #[should_panic(expected = "cannot opt in more users")]
    fn cohort_optin_bounds_checked() {
        CohortScenario::setup(4, 10, 11);
    }
}
