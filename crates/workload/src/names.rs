//! Deterministic synthetic identities.
//!
//! Every generated person gets a stable (index-derived) name, email, and
//! phone number, so populations regenerate identically from a seed and
//! test failures name a findable person.

/// First-name pool.
const FIRST: [&str; 20] = [
    "Avery", "Blake", "Casey", "Devon", "Emery", "Finley", "Gray", "Harper", "Indigo", "Jules",
    "Kai", "Lane", "Morgan", "Noor", "Oakley", "Parker", "Quinn", "Reese", "Sage", "Tatum",
];

/// Last-name pool.
const LAST: [&str; 20] = [
    "Abbott", "Barnes", "Chen", "Diaz", "Ellis", "Flores", "Grant", "Hayes", "Iqbal", "Jensen",
    "Khan", "Larson", "Meyer", "Novak", "Ortiz", "Patel", "Reyes", "Silva", "Tran", "Ueda",
];

/// The synthetic person at `index`.
pub fn full_name(index: usize) -> String {
    format!(
        "{} {} {}",
        FIRST[index % FIRST.len()],
        LAST[(index / FIRST.len()) % LAST.len()],
        index / (FIRST.len() * LAST.len()),
    )
    .trim_end_matches(" 0")
    .to_string()
}

/// The synthetic person's email.
pub fn email(index: usize) -> String {
    format!("person{index}@example.com")
}

/// The synthetic person's phone number (NANP test-range style).
pub fn phone(index: usize) -> String {
    format!(
        "+1-555-{:03}-{:04}",
        (index / 10_000) % 1_000,
        index % 10_000
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities_are_deterministic_and_distinct() {
        assert_eq!(email(7), email(7));
        assert_ne!(email(7), email(8));
        assert_ne!(phone(7), phone(8));
        let mut seen = std::collections::HashSet::new();
        for i in 0..5_000 {
            assert!(seen.insert(phone(i)), "phone collision at {i}");
        }
    }

    #[test]
    fn names_cycle_without_duplicating_early() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..400 {
            assert!(seen.insert(full_name(i)), "name collision at {i}");
        }
        assert_eq!(full_name(0), "Avery Abbott");
    }
}
