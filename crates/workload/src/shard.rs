//! Deterministic user partitioning for the parallel engine.
//!
//! A [`ShardPlan`] splits a population across N shards by user id (`raw %
//! N`), so shard membership is a pure function of the user and the shard
//! count — independent of the order users are listed in, of thread
//! scheduling, and of everything else. Each shard owns its users
//! exclusively: their frequency-cap counters, extension logs, and RNG
//! streams live on exactly one shard, which is what lets the engine run
//! shards without locks.

use adsim_types::UserId;

/// A partition of users across engine shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shards: Vec<Vec<UserId>>,
}

impl ShardPlan {
    /// Partitions `users` across `shards` shards by `user.raw() % shards`.
    ///
    /// Within a shard, users keep the order they were listed in.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn partition(users: &[UserId], shards: usize) -> Self {
        assert!(shards > 0, "a shard plan needs at least one shard");
        let mut buckets: Vec<Vec<UserId>> = vec![Vec::new(); shards];
        for &user in users {
            buckets[Self::shard_index(user, shards)].push(user);
        }
        Self { shards: buckets }
    }

    /// The shard owning `user` under an N-shard split.
    pub fn shard_index(user: UserId, shards: usize) -> usize {
        (user.raw() % shards as u64) as usize
    }

    /// Number of shards (including empty ones).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard user lists.
    pub fn shards(&self) -> &[Vec<UserId>] {
        &self.shards
    }

    /// Total users across all shards.
    pub fn user_count(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn users(n: u64) -> Vec<UserId> {
        (1..=n).map(UserId).collect()
    }

    #[test]
    fn partition_covers_every_user_exactly_once() {
        let us = users(100);
        let plan = ShardPlan::partition(&us, 8);
        assert_eq!(plan.shard_count(), 8);
        assert_eq!(plan.user_count(), 100);
        let mut seen: Vec<UserId> = plan.shards().iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, us);
    }

    #[test]
    fn membership_is_a_function_of_the_user_id() {
        let plan = ShardPlan::partition(&users(50), 4);
        for (i, shard) in plan.shards().iter().enumerate() {
            for &u in shard {
                assert_eq!(ShardPlan::shard_index(u, 4), i);
            }
        }
    }

    #[test]
    fn single_shard_keeps_input_order() {
        let us = users(10);
        let plan = ShardPlan::partition(&us, 1);
        assert_eq!(plan.shards()[0], us);
    }

    #[test]
    fn input_order_does_not_change_membership() {
        let mut reversed = users(30);
        reversed.reverse();
        let a = ShardPlan::partition(&users(30), 3);
        let b = ShardPlan::partition(&reversed, 3);
        for shard in 0..3 {
            let mut xs = a.shards()[shard].clone();
            let mut ys = b.shards()[shard].clone();
            xs.sort_unstable();
            ys.sort_unstable();
            assert_eq!(xs, ys);
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        ShardPlan::partition(&users(1), 0);
    }
}
