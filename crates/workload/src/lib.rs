//! Workload and scenario generation for the Treads experiments.
//!
//! * [`names`] — deterministic synthetic identities (names, emails,
//!   phones) so populations are reproducible and self-describing.
//! * [`population`] — synthesizes a platform user population: demographics,
//!   platform attributes sampled by catalog prevalence, PII, and
//!   data-broker dossiers matched on via hashed PII (the full
//!   broker → platform onboarding path).
//! * [`shard`] — deterministic user partitioning ([`shard::ShardPlan`])
//!   for the parallel engine: shard membership is a pure function of the
//!   user id, so any shard count replays the same simulation.
//! * [`scenario`] — experiment presets, most importantly
//!   [`scenario::ValidationScenario`]: the paper's §3.1 validation setup —
//!   the U.S.-2018 platform, two authors (one with the eleven partner
//!   attributes the paper's author actually had revealed, one a recent
//!   arrival with no broker dossier), a registered transparency provider,
//!   and page-based opt-in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod names;
pub mod population;
pub mod scenario;
pub mod shard;

pub use population::{Persona, PopulationConfig, PopulationReport};
pub use scenario::{CohortScenario, ValidationScenario};
pub use shard::ShardPlan;
