//! The sparse-coverage model: which people have broker dossiers, and what
//! is in them.
//!
//! Data brokers compile dossiers from offline footprints — credit activity,
//! property records, loyalty programs. Coverage is therefore *sparse and
//! biased*: long-time residents with purchase histories are richly covered,
//! while (as the paper observes of its second author, a graduate student
//! in the U.S. for about a year) recent arrivals may have **no** dossier at
//! all. That asymmetry is exactly what the paper's validation surfaced —
//! one author received eleven partner-attribute Treads, the other only the
//! control ad — so the model makes "years of U.S. footprint" the primary
//! coverage driver.

use crate::catalog::PartnerCatalog;
use crate::records::BrokerRecord;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A person's offline footprint, the input to the coverage model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Footprint {
    /// Years of U.S. residence / economic activity.
    pub years_resident: f64,
    /// Relative affluence in [0, 1]; scales financial-segment coverage.
    pub affluence: f64,
    /// Relative purchase activity in [0, 1]; scales purchase-segment
    /// coverage.
    pub purchase_activity: f64,
}

impl Footprint {
    /// A typical long-time resident with moderate affluence.
    pub fn typical() -> Self {
        Self {
            years_resident: 15.0,
            affluence: 0.5,
            purchase_activity: 0.5,
        }
    }

    /// A recent arrival with essentially no offline footprint — the
    /// paper's second author.
    pub fn recent_arrival() -> Self {
        Self {
            years_resident: 1.0,
            affluence: 0.2,
            purchase_activity: 0.2,
        }
    }
}

/// Parameters of the coverage model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageModel {
    /// Years of residence at which the probability of having *any* dossier
    /// reaches one half (logistic midpoint).
    pub dossier_midpoint_years: f64,
    /// Steepness of the dossier-probability logistic.
    pub dossier_steepness: f64,
    /// Global multiplier on per-attribute assignment probability.
    pub attribute_density: f64,
}

impl Default for CoverageModel {
    fn default() -> Self {
        Self {
            dossier_midpoint_years: 3.0,
            dossier_steepness: 1.2,
            attribute_density: 1.0,
        }
    }
}

impl CoverageModel {
    /// Probability that a person with this footprint has a broker dossier
    /// at all.
    pub fn dossier_probability(&self, fp: &Footprint) -> f64 {
        let x = self.dossier_steepness * (fp.years_resident - self.dossier_midpoint_years);
        1.0 / (1.0 + (-x).exp())
    }

    /// Samples a dossier for a person: `None` if the broker has never heard
    /// of them, otherwise a record populated by per-attribute Bernoulli
    /// draws scaled by the footprint.
    ///
    /// Mutually-exclusive groups are respected: at most one attribute per
    /// group is asserted (chosen uniformly among the group when the group
    /// fires at all).
    pub fn sample_dossier<R: Rng>(
        &self,
        catalog: &PartnerCatalog,
        fp: &Footprint,
        email: &str,
        phone: Option<&str>,
        rng: &mut R,
    ) -> Option<BrokerRecord> {
        if rng.gen::<f64>() >= self.dossier_probability(fp) {
            return None;
        }
        let mut record = BrokerRecord::from_pii(email, phone);

        // Group attributes: one draw per group, then a uniform band choice.
        for group in catalog.group_names() {
            let members = catalog.group(group);
            let rate = members.iter().map(|a| a.base_rate).sum::<f64>() / members.len() as f64;
            let p = (rate * self.segment_scale(fp, members[0].segment) * self.attribute_density)
                .clamp(0.0, 1.0);
            if rng.gen::<f64>() < p {
                let pick = rng.gen_range(0..members.len());
                record.assert_attribute(members[pick].name.clone());
            }
        }
        // Ungrouped attributes: independent Bernoulli draws.
        for attr in catalog.attributes().iter().filter(|a| a.group.is_none()) {
            let p =
                (attr.base_rate * self.segment_scale(fp, attr.segment) * self.attribute_density)
                    .clamp(0.0, 1.0);
            if rng.gen::<f64>() < p {
                record.assert_attribute(attr.name.clone());
            }
        }
        Some(record)
    }

    /// Footprint-dependent scaling of a segment's assignment probability.
    fn segment_scale(&self, fp: &Footprint, segment: crate::catalog::Segment) -> f64 {
        use crate::catalog::Segment::*;
        let tenure = (fp.years_resident / 10.0).min(1.5);
        match segment {
            Financial => tenure * (0.5 + fp.affluence),
            Purchase => tenure * (0.5 + fp.purchase_activity),
            Housing | Automotive => tenure * (0.4 + 0.6 * fp.affluence),
            _ => tenure,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsim_types::rng::substream;

    #[test]
    fn recent_arrivals_rarely_have_dossiers() {
        let model = CoverageModel::default();
        let p_recent = model.dossier_probability(&Footprint::recent_arrival());
        let p_typical = model.dossier_probability(&Footprint::typical());
        assert!(p_recent < 0.1, "recent arrival dossier p = {p_recent}");
        assert!(p_typical > 0.99, "typical resident dossier p = {p_typical}");
    }

    #[test]
    fn sampled_dossiers_respect_group_exclusivity() {
        let catalog = PartnerCatalog::us();
        let model = CoverageModel::default();
        let mut rng = substream(7, "coverage-test");
        let mut sampled = 0;
        for i in 0..200 {
            let email = format!("person{i}@example.com");
            if let Some(rec) =
                model.sample_dossier(&catalog, &Footprint::typical(), &email, None, &mut rng)
            {
                sampled += 1;
                for group in catalog.group_names() {
                    let members = catalog.group(group);
                    let held = members.iter().filter(|a| rec.has(&a.name)).count();
                    assert!(held <= 1, "group {group} violated exclusivity: {held} held");
                }
            }
        }
        assert!(sampled > 150, "typical residents should mostly be covered");
    }

    #[test]
    fn typical_dossiers_are_nonempty_and_plausible() {
        let catalog = PartnerCatalog::us();
        let model = CoverageModel::default();
        let mut rng = substream(11, "coverage-size");
        let mut sizes = Vec::new();
        for i in 0..100 {
            let email = format!("p{i}@example.com");
            if let Some(rec) =
                model.sample_dossier(&catalog, &Footprint::typical(), &email, None, &mut rng)
            {
                sizes.push(rec.len() as f64);
            }
        }
        let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
        // A covered person should hold a few dozen partner attributes —
        // the same order of magnitude as the "98 data points" press
        // coverage the paper cites — and never all 507.
        assert!(mean > 10.0 && mean < 200.0, "mean dossier size {mean}");
        assert!(sizes.iter().all(|&s| s < 400.0));
    }

    #[test]
    fn density_knob_scales_coverage() {
        let catalog = PartnerCatalog::us();
        let sparse = CoverageModel {
            attribute_density: 0.1,
            ..CoverageModel::default()
        };
        let dense = CoverageModel {
            attribute_density: 1.0,
            ..CoverageModel::default()
        };
        let mut rng_a = substream(3, "density-a");
        let mut rng_b = substream(3, "density-b");
        let mut total_sparse = 0usize;
        let mut total_dense = 0usize;
        for i in 0..50 {
            let email = format!("q{i}@example.com");
            if let Some(r) =
                sparse.sample_dossier(&catalog, &Footprint::typical(), &email, None, &mut rng_a)
            {
                total_sparse += r.len();
            }
            if let Some(r) =
                dense.sample_dossier(&catalog, &Footprint::typical(), &email, None, &mut rng_b)
            {
                total_dense += r.len();
            }
        }
        assert!(
            total_dense > total_sparse * 3,
            "density knob ineffective: dense={total_dense} sparse={total_sparse}"
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let catalog = PartnerCatalog::us();
        let model = CoverageModel::default();
        let sample = |seed| {
            let mut rng = substream(seed, "determinism");
            model.sample_dossier(
                &catalog,
                &Footprint::typical(),
                "same@example.com",
                None,
                &mut rng,
            )
        };
        assert_eq!(sample(5), sample(5));
    }
}
