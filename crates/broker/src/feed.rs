//! The broker→platform feed.
//!
//! Real partner-category integrations work by identity matching: the broker
//! and the platform compare hashed PII, and attributes from matched
//! dossiers become targetable "partner categories" on the matched platform
//! accounts. [`BrokerFeed`] holds a broker's records indexed by hashed
//! email and phone, and [`BrokerFeed::match_user`] resolves one platform
//! user's hashed identifiers against them.
//!
//! The feed never exposes raw PII — it only ever sees digests, mirroring
//! the privacy posture of real onboarding pipelines.

use crate::records::BrokerRecord;
use adsim_types::hash::Digest;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::collections::HashMap;

/// Outcome of matching one platform user against the feed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchOutcome {
    /// No dossier matched either identifier.
    NoMatch,
    /// A dossier matched; these attribute names onboard onto the user.
    Matched {
        /// Attribute names asserted by the matched dossier.
        attributes: BTreeSet<String>,
        /// Which identifier matched (`"email"` or `"phone"`).
        via: &'static str,
    },
}

/// A broker's outbound feed: dossiers indexed by hashed identifiers.
#[derive(Debug, Clone, Default)]
pub struct BrokerFeed {
    by_email: HashMap<Digest, usize>,
    by_phone: HashMap<Digest, usize>,
    records: Vec<BrokerRecord>,
}

impl BrokerFeed {
    /// An empty feed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests a dossier. Later records for the same hashed email replace
    /// earlier ones (brokers ship full refreshes, not deltas).
    pub fn ingest(&mut self, record: BrokerRecord) {
        if let Some(&idx) = self.by_email.get(&record.hashed_email) {
            // Replace in place; re-point the phone index if it changes.
            if let Some(old_phone) = self.records[idx].hashed_phone {
                self.by_phone.remove(&old_phone);
            }
            if let Some(phone) = record.hashed_phone {
                self.by_phone.insert(phone, idx);
            }
            self.records[idx] = record;
            return;
        }
        let idx = self.records.len();
        self.by_email.insert(record.hashed_email, idx);
        if let Some(phone) = record.hashed_phone {
            self.by_phone.insert(phone, idx);
        }
        self.records.push(record);
    }

    /// Number of dossiers in the feed.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the feed holds no dossiers.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Matches one platform user's hashed identifiers against the feed,
    /// email first (the stronger key), then phone.
    pub fn match_user(
        &self,
        hashed_email: Option<&Digest>,
        hashed_phone: Option<&Digest>,
    ) -> MatchOutcome {
        if let Some(email) = hashed_email {
            if let Some(&idx) = self.by_email.get(email) {
                return MatchOutcome::Matched {
                    attributes: self.records[idx].attributes.clone(),
                    via: "email",
                };
            }
        }
        if let Some(phone) = hashed_phone {
            if let Some(&idx) = self.by_phone.get(phone) {
                return MatchOutcome::Matched {
                    attributes: self.records[idx].attributes.clone(),
                    via: "phone",
                };
            }
        }
        MatchOutcome::NoMatch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsim_types::hash::hash_pii;

    fn dossier(email: &str, phone: Option<&str>, attrs: &[&str]) -> BrokerRecord {
        let mut r = BrokerRecord::from_pii(email, phone);
        for a in attrs {
            r.assert_attribute(*a);
        }
        r
    }

    #[test]
    fn match_by_email() {
        let mut feed = BrokerFeed::new();
        feed.ingest(dossier("alice@example.com", None, &["Net worth: $2M+"]));
        let out = feed.match_user(Some(&hash_pii("ALICE@example.com")), None);
        match out {
            MatchOutcome::Matched { attributes, via } => {
                assert_eq!(via, "email");
                assert!(attributes.contains("Net worth: $2M+"));
            }
            other => panic!("expected match, got {other:?}"),
        }
    }

    #[test]
    fn match_by_phone_fallback() {
        let mut feed = BrokerFeed::new();
        feed.ingest(dossier(
            "bob@example.com",
            Some("+1-555-0101"),
            &["Housing: renter"],
        ));
        // Unknown email, known phone.
        let out = feed.match_user(
            Some(&hash_pii("other@example.com")),
            Some(&hash_pii("+1-555-0101")),
        );
        assert!(matches!(out, MatchOutcome::Matched { via: "phone", .. }));
    }

    #[test]
    fn no_match_for_unknown_user() {
        let feed = BrokerFeed::new();
        assert_eq!(
            feed.match_user(Some(&hash_pii("x@example.com")), None),
            MatchOutcome::NoMatch
        );
        assert_eq!(feed.match_user(None, None), MatchOutcome::NoMatch);
    }

    #[test]
    fn refresh_replaces_dossier() {
        let mut feed = BrokerFeed::new();
        feed.ingest(dossier("c@example.com", Some("+1-555-0102"), &["old"]));
        feed.ingest(dossier("c@example.com", Some("+1-555-0199"), &["new"]));
        assert_eq!(feed.len(), 1);
        // Old phone index is gone, new one resolves.
        assert_eq!(
            feed.match_user(None, Some(&hash_pii("+1-555-0102"))),
            MatchOutcome::NoMatch
        );
        match feed.match_user(None, Some(&hash_pii("+1-555-0199"))) {
            MatchOutcome::Matched { attributes, .. } => {
                assert!(attributes.contains("new") && !attributes.contains("old"));
            }
            other => panic!("expected match, got {other:?}"),
        }
    }

    #[test]
    fn email_takes_precedence_over_phone() {
        let mut feed = BrokerFeed::new();
        feed.ingest(dossier("d@example.com", None, &["via-email"]));
        feed.ingest(dossier(
            "e@example.com",
            Some("+1-555-0103"),
            &["via-phone"],
        ));
        let out = feed.match_user(
            Some(&hash_pii("d@example.com")),
            Some(&hash_pii("+1-555-0103")),
        );
        match out {
            MatchOutcome::Matched { attributes, via } => {
                assert_eq!(via, "email");
                assert!(attributes.contains("via-email"));
            }
            other => panic!("expected match, got {other:?}"),
        }
    }
}
