//! Broker person records.
//!
//! A data broker knows people by their offline identities (mailing lists,
//! loyalty programs, public records), keyed here — as in real
//! broker→platform integrations — by **hashed PII**. A record carries the
//! set of catalog attributes the broker asserts about the person.

use adsim_types::hash::{hash_pii, Digest};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One person's dossier at a data broker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BrokerRecord {
    /// Hashed email address (normalized, SHA-256), the primary match key.
    pub hashed_email: Digest,
    /// Hashed phone number, an alternate match key (optional — brokers
    /// often hold only one identifier).
    pub hashed_phone: Option<Digest>,
    /// Names of the catalog attributes this person holds. A `BTreeSet`
    /// keeps iteration order deterministic across the whole simulation.
    pub attributes: BTreeSet<String>,
}

impl BrokerRecord {
    /// Creates a record from raw (unhashed) PII. The broker normalizes and
    /// hashes exactly like the platform will, so match keys line up.
    pub fn from_pii(email: &str, phone: Option<&str>) -> Self {
        Self {
            hashed_email: hash_pii(email),
            hashed_phone: phone.map(hash_pii),
            attributes: BTreeSet::new(),
        }
    }

    /// Creates a record directly from already-hashed identifiers.
    pub fn from_hashes(hashed_email: Digest, hashed_phone: Option<Digest>) -> Self {
        Self {
            hashed_email,
            hashed_phone,
            attributes: BTreeSet::new(),
        }
    }

    /// Adds an attribute assertion to the dossier.
    pub fn assert_attribute(&mut self, name: impl Into<String>) {
        self.attributes.insert(name.into());
    }

    /// True if the dossier asserts `name`.
    pub fn has(&self, name: &str) -> bool {
        self.attributes.contains(name)
    }

    /// Number of asserted attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// True if the broker asserts nothing about this person.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pii_normalizes_before_hashing() {
        let a = BrokerRecord::from_pii(" Alice@Example.COM", Some("+1-555-0100"));
        let b = BrokerRecord::from_pii("alice@example.com", Some("+1-555-0100"));
        assert_eq!(a.hashed_email, b.hashed_email);
        assert_eq!(a.hashed_phone, b.hashed_phone);
    }

    #[test]
    fn attribute_assertions() {
        let mut r = BrokerRecord::from_pii("a@example.com", None);
        assert!(r.is_empty());
        r.assert_attribute("Net worth: $2M+");
        r.assert_attribute("Net worth: $2M+"); // idempotent
        r.assert_attribute("Job role: professor / educator");
        assert_eq!(r.len(), 2);
        assert!(r.has("Net worth: $2M+"));
        assert!(!r.has("Home type: apartment"));
    }

    #[test]
    fn attributes_iterate_in_sorted_order() {
        let mut r = BrokerRecord::from_pii("a@example.com", None);
        r.assert_attribute("zeta");
        r.assert_attribute("alpha");
        let order: Vec<_> = r.attributes.iter().cloned().collect();
        assert_eq!(order, vec!["alpha".to_string(), "zeta".to_string()]);
    }

    #[test]
    fn phone_is_optional() {
        let r = BrokerRecord::from_pii("a@example.com", None);
        assert!(r.hashed_phone.is_none());
    }
}
