//! The partner-category catalog.
//!
//! Generates a deterministic taxonomy of exactly **507** U.S. partner
//! attributes — the number the paper reports Facebook sourced from data
//! brokers for U.S. advertisers as of early 2018. The names are synthetic
//! but shaped like the real catalog (net worth bands, "kinds of restaurants
//! purchased at", job roles, home types, automobile purchase intent, …),
//! and the eleven attributes the paper's author actually received Treads
//! for all exist verbatim so the validation scenario can reference them.
//!
//! Attributes are binary, but mutually-exclusive *groups* (e.g., the nine
//! net-worth bands) model the paper's non-binary attributes: a user holds
//! at most one attribute of a group, and the planner's log₂(m) bit-slice
//! plans (§3.1 "Scale") operate on groups.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Top-level taxonomy segment of a partner attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Segment {
    /// Net worth, income, investable assets.
    Financial,
    /// Purchase behaviour (restaurants, apparel, grocery, …).
    Purchase,
    /// Occupation and job role.
    Occupation,
    /// Housing: home type, value, ownership.
    Housing,
    /// Automotive: make/segment likely to be purchased, timing.
    Automotive,
    /// Travel habits.
    Travel,
    /// Charitable giving.
    Charitable,
    /// Media and device usage.
    Media,
    /// Household composition and life events.
    Household,
}

impl Segment {
    /// All segments, in catalog order.
    pub const ALL: [Segment; 9] = [
        Segment::Financial,
        Segment::Purchase,
        Segment::Occupation,
        Segment::Housing,
        Segment::Automotive,
        Segment::Travel,
        Segment::Charitable,
        Segment::Media,
        Segment::Household,
    ];

    /// Human-readable segment label.
    pub fn label(self) -> &'static str {
        match self {
            Segment::Financial => "Financial",
            Segment::Purchase => "Purchase behavior",
            Segment::Occupation => "Occupation",
            Segment::Housing => "Housing",
            Segment::Automotive => "Automotive",
            Segment::Travel => "Travel",
            Segment::Charitable => "Charitable giving",
            Segment::Media => "Media usage",
            Segment::Household => "Household",
        }
    }
}

/// One partner attribute as shipped by a data broker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartnerAttribute {
    /// Catalog-unique name, e.g. `"Net worth: $2M+"`.
    pub name: String,
    /// Taxonomy segment.
    pub segment: Segment,
    /// The (synthetic) broker supplying this attribute.
    pub broker: &'static str,
    /// Mutually-exclusive group this attribute belongs to, if any
    /// (e.g. all nine net-worth bands share group `"net_worth"`).
    pub group: Option<&'static str>,
    /// Population base rate: fraction of broker-covered users holding this
    /// attribute, used by the coverage model.
    pub base_rate: f64,
}

/// The synthetic brokers supplying the feed. Fictional stand-ins for the
/// paper's Acxiom / Oracle Data Cloud / Epsilon.
pub const BROKERS: [&str; 3] = [
    "NorthStar Data",
    "Meridian Insights",
    "BlueHarbor Analytics",
];

/// The full U.S. partner-category catalog.
#[derive(Debug, Clone)]
pub struct PartnerCatalog {
    attributes: Vec<PartnerAttribute>,
    by_name: HashMap<String, usize>,
    groups: HashMap<&'static str, Vec<usize>>,
}

/// Number of U.S. partner categories the paper reports (early 2018).
pub const US_PARTNER_ATTRIBUTE_COUNT: usize = 507;

/// The eleven attributes the paper's validation actually revealed for one
/// author (net worth, restaurant & apparel purchases, job role, home type,
/// auto purchase intent). The validation scenario assigns exactly these.
pub const VALIDATION_ATTRIBUTES: [&str; 11] = [
    "Net worth: $2M+",
    "Purchase behavior: fine dining restaurants",
    "Purchase behavior: fast casual restaurants",
    "Purchase behavior: business apparel",
    "Purchase behavior: athletic apparel",
    "Job role: professor / educator",
    "Job role: senior management",
    "Home type: single-family home",
    "Likely auto purchase: luxury sedan",
    "Likely auto purchase: within 6 months",
    "Charitable giving: education causes",
];

impl PartnerCatalog {
    /// Builds the deterministic U.S. catalog of exactly
    /// [`US_PARTNER_ATTRIBUTE_COUNT`] attributes.
    pub fn us() -> Self {
        let mut attributes = Vec::with_capacity(US_PARTNER_ATTRIBUTE_COUNT);

        let push = |name: String,
                    segment: Segment,
                    group: Option<&'static str>,
                    base_rate: f64,
                    attributes: &mut Vec<PartnerAttribute>| {
            // Brokers are assigned round-robin — which broker supplies an
            // attribute is irrelevant to every experiment, but having
            // several reproduces the paper's "multiple data brokers" setup.
            let broker = BROKERS[attributes.len() % BROKERS.len()];
            attributes.push(PartnerAttribute {
                name,
                segment,
                broker,
                group,
                base_rate,
            });
        };

        // --- Financial (9 net worth + 10 income + 8 assets + 13 products = 40)
        for band in [
            "under $100k",
            "$100k-$250k",
            "$250k-$500k",
            "$500k-$750k",
            "$750k-$1M",
            "$1M-$1.5M",
            "$1.5M-$2M",
            "$2M+",
            "unknown band",
        ] {
            push(
                format!("Net worth: {band}"),
                Segment::Financial,
                Some("net_worth"),
                0.11,
                &mut attributes,
            );
        }
        for band in [
            "under $30k",
            "$30k-$40k",
            "$40k-$50k",
            "$50k-$75k",
            "$75k-$100k",
            "$100k-$125k",
            "$125k-$150k",
            "$150k-$250k",
            "$250k-$350k",
            "$350k+",
        ] {
            push(
                format!("Household income: {band}"),
                Segment::Financial,
                Some("household_income"),
                0.10,
                &mut attributes,
            );
        }
        for band in [
            "under $50k",
            "$50k-$100k",
            "$100k-$250k",
            "$250k-$500k",
            "$500k-$1M",
            "$1M-$2M",
            "$2M-$3M",
            "$3M+",
        ] {
            push(
                format!("Investable assets: {band}"),
                Segment::Financial,
                Some("investable_assets"),
                0.12,
                &mut attributes,
            );
        }
        for product in [
            "premium credit card holder",
            "travel rewards card holder",
            "store card holder",
            "active investor",
            "mutual fund investor",
            "retirement plan contributor",
            "life insurance holder",
            "auto insurance shopper",
            "home insurance shopper",
            "mortgage holder",
            "mortgage refinance prospect",
            "personal loan prospect",
            "high-yield savings user",
        ] {
            push(
                format!("Financial: {product}"),
                Segment::Financial,
                None,
                0.15,
                &mut attributes,
            );
        }

        // --- Purchase behaviour (170)
        for kind in [
            "fine dining restaurants",
            "fast casual restaurants",
            "fast food restaurants",
            "coffee shops",
            "family restaurants",
            "pizza restaurants",
            "ethnic cuisine restaurants",
            "steakhouses",
            "seafood restaurants",
            "vegetarian restaurants",
            "buffet restaurants",
            "delivery-first restaurants",
            "bakeries and desserts",
            "bars and pubs",
            "juice and smoothie shops",
        ] {
            push(
                format!("Purchase behavior: {kind}"),
                Segment::Purchase,
                Some("restaurants"),
                0.20,
                &mut attributes,
            );
        }
        for kind in [
            "business apparel",
            "athletic apparel",
            "luxury apparel",
            "casual apparel",
            "children's apparel",
            "shoes and footwear",
            "accessories and jewelry",
            "outdoor apparel",
            "plus-size apparel",
            "discount apparel",
            "online-first apparel",
            "seasonal apparel",
        ] {
            push(
                format!("Purchase behavior: {kind}"),
                Segment::Purchase,
                Some("apparel"),
                0.18,
                &mut attributes,
            );
        }
        let purchase_families: [(&str, &[&str]); 9] = [
            (
                "grocery",
                &[
                    "organic groceries",
                    "premium groceries",
                    "bulk groceries",
                    "prepared meals",
                    "specialty foods",
                    "health foods",
                    "store-brand groceries",
                    "grocery delivery",
                    "farmers markets",
                    "international groceries",
                    "snack foods",
                    "beverages",
                    "wine and spirits",
                    "craft beer",
                    "baby food",
                ],
            ),
            (
                "electronics",
                &[
                    "premium smartphones",
                    "budget smartphones",
                    "laptops and computers",
                    "gaming consoles",
                    "smart home devices",
                    "audio equipment",
                    "cameras",
                    "wearables",
                    "home theater",
                    "computer accessories",
                    "early technology adopter",
                    "refurbished electronics",
                ],
            ),
            (
                "beauty",
                &[
                    "premium cosmetics",
                    "skincare products",
                    "haircare products",
                    "fragrances",
                    "natural beauty products",
                    "men's grooming",
                    "salon services",
                    "spa services",
                    "nail care",
                    "beauty subscriptions",
                ],
            ),
            (
                "pets",
                &[
                    "dog products",
                    "cat products",
                    "premium pet food",
                    "pet healthcare",
                    "pet services",
                    "aquarium supplies",
                    "pet insurance",
                    "pet toys",
                ],
            ),
            (
                "children",
                &[
                    "baby products",
                    "toys and games",
                    "children's books",
                    "educational products",
                    "children's furniture",
                    "strollers and car seats",
                    "children's electronics",
                    "school supplies",
                ],
            ),
            (
                "sports",
                &[
                    "golf equipment",
                    "fitness equipment",
                    "running gear",
                    "cycling gear",
                    "team sports equipment",
                    "outdoor recreation",
                    "hunting and fishing",
                    "winter sports",
                    "water sports",
                    "gym memberships",
                    "yoga and pilates",
                    "sports memorabilia",
                ],
            ),
            (
                "home_garden",
                &[
                    "home improvement",
                    "furniture",
                    "home decor",
                    "kitchen appliances",
                    "gardening supplies",
                    "lawn care",
                    "smart home upgrades",
                    "bedding and bath",
                    "lighting",
                    "outdoor furniture",
                    "cleaning services",
                    "home security",
                ],
            ),
            (
                "online",
                &[
                    "frequent online shopper",
                    "marketplace shopper",
                    "subscription box buyer",
                    "flash sale shopper",
                    "coupon user",
                    "cross-border shopper",
                    "same-day delivery user",
                    "buy-online-pickup-in-store user",
                    "mobile app shopper",
                    "social commerce buyer",
                ],
            ),
            (
                "seasonal",
                &[
                    "holiday gift shopper",
                    "back-to-school shopper",
                    "black friday shopper",
                    "valentine's day shopper",
                    "halloween shopper",
                    "summer travel shopper",
                    "tax season purchaser",
                    "new year fitness purchaser",
                ],
            ),
        ];
        for (family, kinds) in purchase_families {
            // Family groups are informational only (not mutually exclusive),
            // so they are not registered as value groups.
            let _ = family;
            for kind in kinds {
                push(
                    format!("Purchase behavior: {kind}"),
                    Segment::Purchase,
                    None,
                    0.16,
                    &mut attributes,
                );
            }
        }
        // 15 + 12 + (15+12+10+8+8+12+12+10+8) = 27 + 95 = 122... plus 48 more below.
        for kind in [
            "premium brand affinity",
            "value brand affinity",
            "brand loyalist",
            "deal seeker",
            "impulse buyer",
            "research-heavy buyer",
            "gift card purchaser",
            "charitable checkout donor",
            "subscription services user",
            "streaming services payer",
            "big-box store shopper",
            "department store shopper",
            "convenience store shopper",
            "warehouse club member",
            "pharmacy shopper",
            "office supplies buyer",
            "books and media buyer",
            "musical instruments buyer",
            "art and craft supplies buyer",
            "collectibles buyer",
            "luggage buyer",
            "watch buyer",
            "sunglasses buyer",
            "handbag buyer",
            "premium chocolate buyer",
            "vitamins and supplements buyer",
            "organic personal care buyer",
            "eco-friendly products buyer",
            "small business supplies buyer",
            "party supplies buyer",
            "photography services buyer",
            "floral services buyer",
            "dry cleaning user",
            "meal kit subscriber",
            "coffee subscription user",
            "razor subscription user",
            "contact lens buyer",
            "hearing aid prospect",
            "mobility aids buyer",
            "medical alert prospect",
            "home oxygen prospect",
            "orthopedic products buyer",
            "premium mattress buyer",
            "air purifier buyer",
            "water filtration buyer",
            "solar installation prospect",
            "ev charger prospect",
            "generator buyer",
        ] {
            push(
                format!("Purchase behavior: {kind}"),
                Segment::Purchase,
                None,
                0.14,
                &mut attributes,
            );
        }

        // --- Occupation (42)
        for role in [
            "professor / educator",
            "senior management",
            "middle management",
            "small business owner",
            "healthcare professional",
            "nurse",
            "physician",
            "legal professional",
            "accountant / finance professional",
            "engineer",
            "software developer",
            "IT professional",
            "sales professional",
            "marketing professional",
            "human resources professional",
            "real estate professional",
            "construction worker",
            "skilled tradesperson",
            "manufacturing worker",
            "transportation worker",
            "truck driver",
            "retail worker",
            "food service worker",
            "hospitality worker",
            "government employee",
            "military / veteran",
            "police / fire / ems",
            "farmer / agriculture",
            "artist / designer",
            "writer / journalist",
            "scientist / researcher",
            "social worker",
            "clergy",
            "pilot / aviation",
            "pharmacist",
            "dentist",
            "veterinarian",
            "architect",
            "consultant",
            "freelancer / gig worker",
            "student (graduate)",
            "retired",
        ] {
            push(
                format!("Job role: {role}"),
                Segment::Occupation,
                Some("job_role"),
                0.05,
                &mut attributes,
            );
        }

        // --- Housing (35: 8 type + 12 value + 5 ownership + 10 profile)
        for t in [
            "single-family home",
            "townhouse",
            "condominium",
            "apartment",
            "mobile home",
            "multi-family home",
            "farm / ranch",
            "senior living",
        ] {
            push(
                format!("Home type: {t}"),
                Segment::Housing,
                Some("home_type"),
                0.13,
                &mut attributes,
            );
        }
        for band in [
            "under $100k",
            "$100k-$200k",
            "$200k-$300k",
            "$300k-$400k",
            "$400k-$500k",
            "$500k-$750k",
            "$750k-$1M",
            "$1M-$1.5M",
            "$1.5M-$2M",
            "$2M-$3M",
            "$3M-$5M",
            "$5M+",
        ] {
            push(
                format!("Home value: {band}"),
                Segment::Housing,
                Some("home_value"),
                0.08,
                &mut attributes,
            );
        }
        for o in [
            "homeowner",
            "renter",
            "first-time buyer prospect",
            "likely to move",
            "recent mover",
        ] {
            push(
                format!("Housing: {o}"),
                Segment::Housing,
                Some("ownership"),
                0.20,
                &mut attributes,
            );
        }
        for p in [
            "home built before 1960",
            "home built 1960-1990",
            "home built after 1990",
            "pool owner",
            "large lot owner",
            "vacation home owner",
            "investment property owner",
            "recently remodeled home",
            "energy-efficient home",
            "smart home equipped",
        ] {
            push(
                format!("Housing: {p}"),
                Segment::Housing,
                None,
                0.10,
                &mut attributes,
            );
        }

        // --- Automotive (60: 24 make + 14 segment + 6 timing + 16 profile)
        for make in [
            "domestic economy make",
            "domestic premium make",
            "japanese economy make",
            "japanese premium make",
            "german luxury make",
            "korean economy make",
            "electric vehicle make",
            "italian sports make",
            "british luxury make",
            "swedish safety make",
            "american truck make",
            "hybrid pioneer make",
            "budget import make",
            "premium suv make",
            "commercial van make",
            "classic muscle make",
            "off-road specialist make",
            "minivan specialist make",
            "luxury crossover make",
            "compact city make",
            "performance tuner make",
            "full-size luxury make",
            "mid-market sedan make",
            "adventure motorcycle make",
        ] {
            push(
                format!("Likely auto purchase make: {make}"),
                Segment::Automotive,
                Some("auto_make"),
                0.04,
                &mut attributes,
            );
        }
        for seg in [
            "luxury sedan",
            "economy sedan",
            "compact car",
            "mid-size sedan",
            "full-size sedan",
            "compact suv",
            "mid-size suv",
            "full-size suv",
            "pickup truck",
            "minivan",
            "sports car",
            "electric vehicle",
            "hybrid vehicle",
            "motorcycle",
        ] {
            push(
                format!("Likely auto purchase: {seg}"),
                Segment::Automotive,
                Some("auto_segment"),
                0.07,
                &mut attributes,
            );
        }
        for timing in [
            "within 3 months",
            "within 6 months",
            "within 12 months",
            "within 24 months",
            "new vehicle",
            "used vehicle",
        ] {
            push(
                format!("Likely auto purchase: {timing}"),
                Segment::Automotive,
                Some("auto_timing"),
                0.08,
                &mut attributes,
            );
        }
        for p in [
            "owns one vehicle",
            "owns two vehicles",
            "owns three or more vehicles",
            "luxury vehicle owner",
            "truck owner",
            "suv owner",
            "ev owner",
            "motorcycle owner",
            "vehicle over 10 years old",
            "recently purchased vehicle",
            "auto loan holder",
            "auto lease holder",
            "diy auto maintainer",
            "premium fuel buyer",
            "frequent car washer",
            "aftermarket parts buyer",
        ] {
            push(
                format!("Automotive: {p}"),
                Segment::Automotive,
                None,
                0.10,
                &mut attributes,
            );
        }

        // --- Travel (40)
        for t in [
            "frequent flyer",
            "frequent international traveler",
            "frequent domestic traveler",
            "business traveler",
            "luxury traveler",
            "budget traveler",
            "cruise traveler",
            "all-inclusive resort traveler",
            "adventure traveler",
            "family vacation traveler",
            "weekend getaway traveler",
            "road trip traveler",
            "camping and rv traveler",
            "ski vacation traveler",
            "beach vacation traveler",
            "theme park visitor",
            "casino visitor",
            "national parks visitor",
            "hotel loyalty member",
            "airline loyalty member",
            "vacation rental user",
            "travel package buyer",
            "last-minute booker",
            "early planner",
            "solo traveler",
            "group tour traveler",
            "eco-tourism traveler",
            "culinary tourism traveler",
            "wine country visitor",
            "golf vacation traveler",
            "spa retreat traveler",
            "timeshare owner",
            "timeshare prospect",
            "travel insurance buyer",
            "premium cabin flyer",
            "airport lounge user",
            "rental car user",
            "rideshare-to-airport user",
            "international data plan buyer",
            "travel credit card prospect",
        ] {
            push(
                format!("Travel: {t}"),
                Segment::Travel,
                None,
                0.12,
                &mut attributes,
            );
        }

        // --- Charitable (20)
        for c in [
            "education causes",
            "health causes",
            "children's causes",
            "animal welfare",
            "environmental causes",
            "religious organizations",
            "veterans causes",
            "arts and culture",
            "international relief",
            "disaster relief",
            "political causes",
            "local community causes",
            "food banks",
            "homeless services",
            "cancer research",
            "wildlife conservation",
            "human rights causes",
            "public broadcasting",
            "alumni giving",
            "high-value donor",
        ] {
            push(
                format!("Charitable giving: {c}"),
                Segment::Charitable,
                None,
                0.09,
                &mut attributes,
            );
        }

        // --- Media (40)
        for m in [
            "heavy tv viewer",
            "cord cutter",
            "streaming video subscriber",
            "premium cable subscriber",
            "sports broadcast viewer",
            "news broadcast viewer",
            "talk radio listener",
            "music streaming subscriber",
            "podcast listener",
            "audiobook listener",
            "print newspaper reader",
            "digital news subscriber",
            "magazine subscriber",
            "avid book reader",
            "video gamer (console)",
            "video gamer (pc)",
            "video gamer (mobile)",
            "esports follower",
            "social media heavy user",
            "video sharing heavy user",
            "early morning media consumer",
            "late night media consumer",
            "binge watcher",
            "reality tv viewer",
            "documentary viewer",
            "classic movies viewer",
            "premium streaming bundler",
            "live events streamer",
            "smart tv owner",
            "streaming device owner",
            "tablet-first consumer",
            "smartphone-first consumer",
            "desktop-first consumer",
            "smart speaker owner",
            "tech news follower",
            "finance news follower",
            "celebrity news follower",
            "diy content viewer",
            "cooking content viewer",
            "fitness content viewer",
        ] {
            push(
                format!("Media: {m}"),
                Segment::Media,
                None,
                0.15,
                &mut attributes,
            );
        }

        // --- Household (30)
        for h in [
            "married",
            "single",
            "new parent",
            "parent of toddler",
            "parent of school-age child",
            "parent of teenager",
            "empty nester",
            "multi-generational household",
            "single-parent household",
            "household of one",
            "household of two",
            "household of three or more",
            "recently engaged",
            "recently married",
            "expecting a child",
            "recent college graduate",
            "recent retiree",
            "caregiver for elderly parent",
            "grandparent",
            "pet household (dog)",
            "pet household (cat)",
            "new home purchaser",
            "recent job change",
            "recently relocated state",
            "military household",
            "college-bound household",
            "first-generation college household",
            "bilingual household",
            "work-from-home household",
            "high-education household",
            "dual-income household",
            "single-income household",
            "renter-to-owner transition",
            "downsizing household",
            "upsizing household",
            "urban household",
            "suburban household",
            "rural household",
            "gated community household",
            "hoa member household",
            "long commute household",
            "public transit household",
            "frequent mover",
            "long-tenure resident",
            "seasonal resident",
            "boat owner household",
            "rv owner household",
            "pool service household",
            "landscaping service household",
            "housekeeping service household",
            "childcare service household",
            "tutoring service household",
            "elder care service household",
            "home warranty holder",
            "solar panel household",
            "backup generator household",
            "well water household",
            "septic system household",
            "fireplace household",
            "home gym household",
        ] {
            push(
                format!("Household: {h}"),
                Segment::Household,
                None,
                0.11,
                &mut attributes,
            );
        }

        let mut by_name = HashMap::with_capacity(attributes.len());
        let mut groups: HashMap<&'static str, Vec<usize>> = HashMap::new();
        for (idx, attr) in attributes.iter().enumerate() {
            let prior = by_name.insert(attr.name.clone(), idx);
            assert!(prior.is_none(), "duplicate attribute name: {}", attr.name);
            if let Some(g) = attr.group {
                groups.entry(g).or_default().push(idx);
            }
        }

        let catalog = Self {
            attributes,
            by_name,
            groups,
        };
        assert_eq!(
            catalog.len(),
            US_PARTNER_ATTRIBUTE_COUNT,
            "US catalog must contain exactly {} attributes",
            US_PARTNER_ATTRIBUTE_COUNT
        );
        catalog
    }

    /// Number of attributes in the catalog.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// True if the catalog is empty (never the case for [`PartnerCatalog::us`]).
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// All attributes, in stable catalog order.
    pub fn attributes(&self) -> &[PartnerAttribute] {
        &self.attributes
    }

    /// Looks up an attribute by its exact name.
    pub fn by_name(&self, name: &str) -> Option<&PartnerAttribute> {
        self.by_name.get(name).map(|&i| &self.attributes[i])
    }

    /// The member attributes of a mutually-exclusive group, in catalog
    /// order (e.g. `"net_worth"` → the nine bands).
    pub fn group(&self, group: &str) -> Vec<&PartnerAttribute> {
        self.groups
            .get(group)
            .map(|idxs| idxs.iter().map(|&i| &self.attributes[i]).collect())
            .unwrap_or_default()
    }

    /// Names of all mutually-exclusive groups, sorted.
    pub fn group_names(&self) -> Vec<&'static str> {
        let mut names: Vec<_> = self.groups.keys().copied().collect();
        names.sort_unstable();
        names
    }

    /// All attributes in a segment, in catalog order.
    pub fn segment(&self, segment: Segment) -> Vec<&PartnerAttribute> {
        self.attributes
            .iter()
            .filter(|a| a.segment == segment)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_exactly_507_us_attributes() {
        let c = PartnerCatalog::us();
        assert_eq!(c.len(), 507);
        assert!(!c.is_empty());
    }

    #[test]
    fn names_are_unique() {
        let c = PartnerCatalog::us();
        let mut names = std::collections::HashSet::new();
        for a in c.attributes() {
            assert!(names.insert(&a.name), "duplicate: {}", a.name);
        }
    }

    #[test]
    fn validation_attributes_all_exist() {
        let c = PartnerCatalog::us();
        for name in VALIDATION_ATTRIBUTES {
            assert!(
                c.by_name(name).is_some(),
                "validation attribute missing from catalog: {name}"
            );
        }
    }

    #[test]
    fn net_worth_group_has_nine_bands() {
        let c = PartnerCatalog::us();
        let bands = c.group("net_worth");
        assert_eq!(bands.len(), 9);
        assert!(bands.iter().all(|a| a.segment == Segment::Financial));
        assert!(bands.iter().any(|a| a.name == "Net worth: $2M+"));
    }

    #[test]
    fn groups_are_consistent() {
        let c = PartnerCatalog::us();
        for g in c.group_names() {
            let members = c.group(g);
            assert!(members.len() >= 2, "group {g} has <2 members");
            for m in &members {
                assert_eq!(m.group, Some(g));
            }
        }
        // Specific group sizes used by the scale experiment.
        assert_eq!(c.group("home_value").len(), 12);
        assert_eq!(c.group("job_role").len(), 42);
        assert_eq!(c.group("auto_make").len(), 24);
    }

    #[test]
    fn every_segment_is_populated() {
        let c = PartnerCatalog::us();
        for seg in Segment::ALL {
            assert!(
                !c.segment(seg).is_empty(),
                "segment {seg:?} has no attributes"
            );
        }
        // Segment labels are human-readable and distinct.
        let labels: std::collections::HashSet<_> = Segment::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), Segment::ALL.len());
    }

    #[test]
    fn brokers_are_all_represented() {
        let c = PartnerCatalog::us();
        for broker in BROKERS {
            assert!(
                c.attributes().iter().any(|a| a.broker == broker),
                "broker {broker} supplies nothing"
            );
        }
    }

    #[test]
    fn base_rates_are_probabilities() {
        let c = PartnerCatalog::us();
        for a in c.attributes() {
            assert!(
                a.base_rate > 0.0 && a.base_rate < 1.0,
                "{} has invalid base rate {}",
                a.name,
                a.base_rate
            );
        }
    }

    #[test]
    fn catalog_construction_is_deterministic() {
        let a = PartnerCatalog::us();
        let b = PartnerCatalog::us();
        assert_eq!(a.attributes(), b.attributes());
    }

    #[test]
    fn by_name_lookup() {
        let c = PartnerCatalog::us();
        assert!(c.by_name("Net worth: $2M+").is_some());
        assert!(c.by_name("No such attribute").is_none());
    }
}
