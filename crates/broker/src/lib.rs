//! Data-broker substrate.
//!
//! The paper's validation targets Facebook's **partner categories**: 507
//! U.S. targeting attributes sourced from external data brokers (Acxiom,
//! Oracle Data Cloud, …), available to advertisers but *hidden from users*
//! by the platform's own transparency page. Those feeds are proprietary, so
//! this crate builds the synthetic equivalent (see DESIGN.md §2):
//!
//! * [`catalog`] — a deterministic partner-category taxonomy generator that
//!   produces exactly the paper's 507 U.S. attributes, organized in
//!   segments (financial, purchase behaviour, occupation, housing,
//!   automotive, …) with mutually-exclusive value *groups* (e.g., nine net
//!   worth bands) used by the log₂(m) scale experiments.
//! * [`records`] — broker person records keyed by hashed PII, carrying the
//!   attributes the broker claims to know about a person.
//! * [`coverage`] — the sparse-coverage model: who has a broker dossier at
//!   all. This is what reproduces the paper's validation contrast (one
//!   author had 11 partner attributes; the other — a recent-arrival
//!   graduate student — had none).
//! * [`feed`] — the broker→platform feed: matches broker records to
//!   platform users through hashed email/phone, exactly how real partner
//!   integrations onboard data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod coverage;
pub mod feed;
pub mod records;

pub use catalog::{PartnerAttribute, PartnerCatalog, Segment};
pub use coverage::CoverageModel;
pub use feed::{BrokerFeed, MatchOutcome};
pub use records::BrokerRecord;
