//! Deterministic merge of per-shard event batches.

use crate::event::ShardEvent;

/// Merges per-shard event batches into the canonical global order.
///
/// The result is sorted by [`ShardEvent::key`] — `(at, user, user_seq)` —
/// which is unique per event and independent of which batch an event
/// arrived in. Consequently the merge is **permutation-invariant**: any
/// partition of the same events into any number of batches, in any order,
/// merges to the identical sequence. This is the property that makes
/// 1-shard and 8-shard runs byte-identical, and it is checked by a
/// property test in the workspace integration suite.
pub fn merge_batches(batches: Vec<Vec<ShardEvent>>) -> Vec<ShardEvent> {
    let mut all: Vec<ShardEvent> = batches.into_iter().flatten().collect();
    all.sort_by_key(ShardEvent::key);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsim_types::{PixelId, SimTime, UserId};

    fn fire(at: u64, user: u64, seq: u64) -> ShardEvent {
        ShardEvent::PixelFire {
            at: SimTime(at),
            user: UserId(user),
            user_seq: seq,
            pixel: PixelId(1),
        }
    }

    #[test]
    fn merge_is_partition_invariant() {
        let events = vec![fire(3, 1, 0), fire(1, 2, 0), fire(1, 2, 1), fire(2, 1, 1)];
        let one = merge_batches(vec![events.clone()]);
        let two = merge_batches(vec![events[..2].to_vec(), events[2..].to_vec()]);
        let four = merge_batches(events.iter().map(|&e| vec![e]).collect());
        assert_eq!(one, two);
        assert_eq!(one, four);
        // And the order is the canonical one.
        assert_eq!(
            one,
            vec![fire(1, 2, 0), fire(1, 2, 1), fire(2, 1, 1), fire(3, 1, 0)]
        );
    }

    #[test]
    fn empty_batches_are_fine() {
        assert!(merge_batches(vec![]).is_empty());
        assert!(merge_batches(vec![vec![], vec![]]).is_empty());
    }
}
