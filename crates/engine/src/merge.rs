//! Deterministic merge of per-shard event batches.

use adsim_types::{SimTime, UserId};

use crate::event::ShardEvent;

/// A violation of the merge key's uniqueness invariant.
///
/// `(at, user, user_seq)` is unique per event by construction — each
/// user's `seq` counter advances once per event — so a duplicate key can
/// only mean a replay bug: the same batch folded twice, a shard tick
/// re-executed without restoring its cursor snapshot, or a corrupted
/// checkpoint. Surfacing it as a typed error (instead of silently
/// accepting, or a debug-only assert) is what lets the resilience
/// supervisor prove its recovery paths really are idempotent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeError {
    /// The duplicated key's timestamp.
    pub at: SimTime,
    /// The duplicated key's user.
    pub user: UserId,
    /// The duplicated key's per-user sequence number.
    pub user_seq: u64,
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "duplicate event key (at={}, user={}, seq={}): a batch was applied twice \
             or a shard re-ran without snapshot restore",
            self.at.0, self.user, self.user_seq
        )
    }
}

impl std::error::Error for MergeError {}

/// Merges per-shard event batches into the canonical global order.
///
/// The result is sorted by [`ShardEvent::key`] — `(at, user, user_seq)` —
/// which is unique per event and independent of which batch an event
/// arrived in. Consequently the merge is **permutation-invariant**: any
/// partition of the same events into any number of batches, in any order,
/// merges to the identical sequence. This is the property that makes
/// 1-shard and 8-shard runs byte-identical, and it is checked by a
/// property test in the workspace integration suite.
///
/// A duplicate key fails with [`MergeError`] — see its docs for why that
/// can only be a replay bug.
pub fn merge_batches(batches: Vec<Vec<ShardEvent>>) -> Result<Vec<ShardEvent>, MergeError> {
    let mut all: Vec<ShardEvent> = batches.into_iter().flatten().collect();
    all.sort_by_key(ShardEvent::key);
    for pair in all.windows(2) {
        let (at, user, user_seq) = pair[0].key();
        if (at, user, user_seq) == pair[1].key() {
            return Err(MergeError { at, user, user_seq });
        }
    }
    Ok(all)
}

/// [`merge_batches`], but **lossy**: instead of failing on a duplicate
/// key, keeps the first event of each duplicated key (first in the
/// canonical sort order, which is deterministic because the sort is
/// stable over the flattened batch order) and returns one [`MergeError`]
/// per dropped event. The serving applier uses this — a duplicate key
/// from a buggy fault replay must degrade and be counted, not take the
/// front end down. The batch engine keeps the strict form: there a
/// duplicate means corrupted recovery state and must abort the run.
pub fn merge_batches_lossy(batches: Vec<Vec<ShardEvent>>) -> (Vec<ShardEvent>, Vec<MergeError>) {
    let mut all: Vec<ShardEvent> = batches.into_iter().flatten().collect();
    all.sort_by_key(ShardEvent::key);
    let mut conflicts = Vec::new();
    all.dedup_by(|next, kept| {
        let (at, user, user_seq) = kept.key();
        let dup = (at, user, user_seq) == next.key();
        if dup {
            conflicts.push(MergeError { at, user, user_seq });
        }
        dup
    });
    (all, conflicts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsim_types::PixelId;

    fn fire(at: u64, user: u64, seq: u64) -> ShardEvent {
        ShardEvent::PixelFire {
            at: SimTime(at),
            user: UserId(user),
            user_seq: seq,
            pixel: PixelId(1),
        }
    }

    #[test]
    fn merge_is_partition_invariant() {
        let events = vec![fire(3, 1, 0), fire(1, 2, 0), fire(1, 2, 1), fire(2, 1, 1)];
        let one = merge_batches(vec![events.clone()]).expect("unique keys");
        let two =
            merge_batches(vec![events[..2].to_vec(), events[2..].to_vec()]).expect("unique keys");
        let four = merge_batches(events.iter().map(|&e| vec![e]).collect()).expect("unique keys");
        assert_eq!(one, two);
        assert_eq!(one, four);
        // And the order is the canonical one.
        assert_eq!(
            one,
            vec![fire(1, 2, 0), fire(1, 2, 1), fire(2, 1, 1), fire(3, 1, 0)]
        );
    }

    #[test]
    fn empty_batches_are_fine() {
        assert!(merge_batches(vec![]).expect("empty").is_empty());
        assert!(merge_batches(vec![vec![], vec![]])
            .expect("empty")
            .is_empty());
    }

    #[test]
    fn lossy_merge_keeps_first_and_reports_conflicts() {
        let batch = vec![fire(1, 2, 0), fire(2, 2, 1)];
        let (merged, conflicts) = merge_batches_lossy(vec![batch.clone(), batch.clone()]);
        assert_eq!(merged, vec![fire(1, 2, 0), fire(2, 2, 1)]);
        assert_eq!(conflicts.len(), 2);
        assert_eq!(
            conflicts[0],
            MergeError {
                at: SimTime(1),
                user: UserId(2),
                user_seq: 0,
            }
        );
        // Conflict-free input matches the strict merge exactly.
        let strict = merge_batches(vec![batch.clone()]).expect("unique");
        let (lossy, none) = merge_batches_lossy(vec![batch]);
        assert_eq!(strict, lossy);
        assert!(none.is_empty());
    }

    #[test]
    fn duplicate_keys_surface_as_typed_errors() {
        // The same batch delivered twice — the at-least-once failure mode.
        let batch = vec![fire(1, 2, 0), fire(2, 2, 1)];
        let err = merge_batches(vec![batch.clone(), batch]).unwrap_err();
        assert_eq!(
            err,
            MergeError {
                at: SimTime(1),
                user: UserId(2),
                user_seq: 0,
            }
        );
        assert!(err.to_string().contains("duplicate event key"));
        // Duplicates across *different* variants with one key also fail:
        // key equality is what matters, not payload equality.
        let err = merge_batches(vec![vec![fire(5, 1, 3)], vec![fire(5, 1, 3)]]).unwrap_err();
        assert_eq!(err.user_seq, 3);
    }
}
