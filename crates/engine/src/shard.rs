//! Per-shard execution state.
//!
//! A shard exclusively owns a subset of users (assigned by
//! [`treads_workload::ShardPlan`]) and everything keyed on them:
//!
//! * each user's **browsing schedule**, generated one day at a time from
//!   the per-user-per-day substream `session-user-{id}-day-{d}` —
//!   identical whichever shard (or pipeline stage) runs it;
//! * each user's **auction RNG**, substream `engine-user-{id}` — likewise;
//! * the shard's **frequency caps**, which are per-`(ad, user)` counters
//!   and therefore never shared across shards;
//! * the **extension logs** of its users who run the Treads extension.
//!
//! During a tick the shard only *reads* the platform (via
//! [`Platform::decide_browse`] against a frozen
//! [`adplatform::billing::BudgetSnapshot`]) and accumulates its
//! globally-visible effects as a [`ShardBatch`] for the engine to merge.

use std::collections::{BTreeMap, BTreeSet};

use adplatform::billing::BudgetView;
use adplatform::delivery::{DeliveryScratch, DeliveryStats, FrequencyCaps};
use adplatform::Platform;
use adsim_types::rng::substream;
use adsim_types::{SimTime, SiteId, UserId};
use rand::rngs::StdRng;
use std::time::Instant;
use treads_telemetry::{
    FlightEvent, FlightKind, FlightRecorder, Histogram, Registry, RequestTrace, TraceConfig,
    TraceEventKind, TraceId,
};
use websim::{BrowsingEvent, ExtensionLog, SessionConfig, SessionSchedule, SiteRegistry};

use treads_resilience::checkpoint::{ExtensionSnapshot, ShardCheckpoint, UserCursor};
use treads_resilience::LostWork;

use crate::engine::DAY_MS;
use crate::event::ShardEvent;

/// One user's execution state inside its owning shard.
///
/// `Clone` is what makes crash recovery cheap to reason about: the
/// supervisor snapshots a shard before a tick attempt and restores the
/// snapshot wholesale, so a half-executed attempt can never leak partial
/// cursor/RNG state into the retry.
///
/// Browsing schedules are **windowed**: only the not-yet-consumed suffix
/// of already-generated days lives in `buf`. Day `d` of the schedule is a
/// pure function of `(user, seed, d)`
/// ([`SessionSchedule::generate_day_for_user`]), so days are materialized
/// lazily — by [`ShardState::prefetch_sessions`] ahead of the tick that
/// needs them (possibly on another thread, overlapped with the previous
/// tick's merge), or on demand inside the tick as a fallback — and
/// dropped once consumed. The total consumed-event count (`consumed`) is
/// the only schedule state a checkpoint needs.
#[derive(Clone)]
struct UserRuntime {
    id: UserId,
    /// Auction randomness: substream `engine-user-{id}` of the engine seed.
    rng: StdRng,
    /// Pending window of the browsing schedule: the unconsumed events of
    /// every day generated so far, time-sorted.
    buf: Vec<BrowsingEvent>,
    /// Read head into `buf` (events before it are consumed).
    buf_pos: usize,
    /// Number of schedule days already generated into `buf`.
    gen_days: u64,
    /// Total browsing events consumed since the run began — the
    /// checkpoint cursor (day-generation replays it on resume).
    consumed: u64,
    /// Per-user event counter; becomes the `user_seq` merge-key component.
    seq: u64,
    /// Per-user flight-event counter: the `seq` tie-breaker of this user's
    /// journal entries. Advances only on journaled events, entirely from
    /// user-owned state, so it is shard-count-invariant like `seq`.
    fseq: u64,
}

impl UserRuntime {
    /// The user's frozen checkpoint cursor.
    fn cursor(&self) -> UserCursor {
        UserCursor {
            user: self.id,
            rng: self.rng.state(),
            cursor: self.consumed,
            seq: self.seq,
            fseq: self.fseq,
        }
    }
}

/// What a shard should record during a tick, decided once by the engine.
#[derive(Debug, Clone, Copy)]
pub struct TickProbe {
    /// Record metrics and flight events this tick.
    pub record: bool,
    /// Ring capacity for the shard's per-tick flight journal.
    pub flight_capacity: usize,
    /// Causal-trace sampling policy (disabled unless telemetry is live).
    pub trace: TraceConfig,
    /// The engine seed, the salt of every derived [`TraceId`]. Trace ids
    /// are a pure function of `(seed, at, user, user_seq)`, so they are
    /// shard-count-invariant like the merge key itself.
    pub seed: u64,
}

impl TickProbe {
    /// A probe that records nothing (what [`crate::Engine::run`] uses).
    pub fn off() -> Self {
        Self {
            record: false,
            flight_capacity: 1,
            trace: TraceConfig::disabled(),
            seed: 0,
        }
    }
}

/// Delivery (win handling) is micro-scale work — timing every win would
/// cost more than the work itself — so `phase.delivery_ns` times one win
/// in this many and scales the sample up.
const DELIVERY_SAMPLE: u64 = 16;

/// Tick-local counter accumulator. Hot-loop increments hit plain fields;
/// the registry (a name-keyed map) is touched once per tick at flush.
#[derive(Default)]
struct TickTally {
    page_views: u64,
    considered: u64,
    not_servable: u64,
    suspended: u64,
    over_budget: u64,
    frequency_capped: u64,
    targeting_mismatch: u64,
    won: u64,
    lost_to_background: u64,
    unfilled: u64,
    cap_rejections: u64,
    treads_observed: u64,
    index_candidates: u64,
    index_pruned: u64,
    compiled_evals: u64,
}

/// Everything a shard hands back after one tick.
#[derive(Debug, Clone)]
pub struct ShardBatch {
    /// The producing shard's index (for deterministic collection order).
    pub shard: usize,
    /// Globally-visible effects, in shard-local production order.
    pub events: Vec<ShardEvent>,
    /// Delivery statistics accrued this tick.
    pub stats: DeliveryStats,
    /// Page views processed this tick.
    pub page_views: u64,
    /// Metrics recorded this tick (empty when the probe was off).
    pub telemetry: Registry,
    /// Flight events journaled this tick, in shard-local production order.
    pub flight: Vec<FlightEvent>,
    /// Flight events this shard's per-tick ring evicted.
    pub flight_dropped: u64,
    /// Head-sampled request traces built this tick, in shard-local
    /// production order (the engine re-sorts by request key).
    pub traces: Vec<RequestTrace>,
}

/// A point inside a tick at which an injected crash strikes.
///
/// The crash fires when the attempt's page-view count *exceeds*
/// `after_page_views`, so successive retry attempts (which pass their
/// attempt number here) die progressively deeper into the tick — each
/// failed attempt leaves behind a *different* half-mutated state, which is
/// exactly what snapshot-restore recovery must be robust to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Page views the attempt completes before dying.
    pub after_page_views: u64,
}

/// A shard tick attempt died mid-execution.
///
/// Carries no payload on purpose: a crashed process reports nothing, and
/// the supervisor must recover from the tick-start snapshot alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSignal;

/// A shard: exclusive owner of its users' simulation state.
#[derive(Clone)]
pub struct ShardState {
    index: usize,
    users: Vec<UserRuntime>,
    /// Per-user dirty flags since the last checkpoint frame: set whenever
    /// a user consumes a browsing event (the only way cursor/RNG/seq
    /// state can move), drained by [`Self::take_dirty_cursors`]. A
    /// crash-restored snapshot restores the flags wholesale, so a flag
    /// can be spuriously *set* after recovery (a harmless, slightly
    /// larger delta) but never spuriously clear.
    dirty: Vec<bool>,
    freq: FrequencyCaps,
    extensions: BTreeMap<UserId, ExtensionLog>,
    /// Inputs of day-keyed schedule generation, retained so days can be
    /// materialized lazily (see [`UserRuntime::buf`]).
    site_ids: Vec<SiteId>,
    session: SessionConfig,
    seed: u64,
    /// Reusable per-decide buffers (candidate list, bid list), warm
    /// across every opportunity this shard ever runs.
    /// Pure scratch: cleared before use, so it carries no state between
    /// opportunities and is deliberately absent from checkpoints.
    scratch: DeliveryScratch,
}

impl ShardState {
    /// Builds a shard for `users`. Construction is cheap: browsing
    /// schedules are generated day by day as ticks (or
    /// [`Self::prefetch_sessions`]) demand them, not up front.
    pub fn new(
        index: usize,
        users: &[UserId],
        extension_users: &BTreeSet<UserId>,
        sites: &[SiteId],
        session: &SessionConfig,
        seed: u64,
        frequency_cap: u32,
    ) -> Self {
        let runtimes: Vec<UserRuntime> = users
            .iter()
            .map(|&id| UserRuntime {
                id,
                rng: substream(seed, &format!("engine-user-{}", id.raw())),
                buf: Vec::new(),
                buf_pos: 0,
                gen_days: 0,
                consumed: 0,
                seq: 0,
                fseq: 0,
            })
            .collect();
        let extensions = users
            .iter()
            .filter(|u| extension_users.contains(u))
            .map(|&u| (u, ExtensionLog::for_user(u)))
            .collect();
        Self {
            index,
            dirty: vec![false; runtimes.len()],
            users: runtimes,
            freq: FrequencyCaps::new(frequency_cap),
            extensions,
            site_ids: sites.to_vec(),
            session: *session,
            seed,
            scratch: DeliveryScratch::new(),
        }
    }

    /// Number of users owned by this shard.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Materializes every schedule day starting before `until` that is
    /// not yet generated, for every user, dropping consumed events first.
    ///
    /// Day generation is a pure function of `(user, seed, day)`, so this
    /// can run on any thread at any time before the events are needed —
    /// the engine overlaps tick `t+1`'s prefetch with tick `t`'s
    /// merge/apply. Ticks that outrun the prefetch fall back to on-demand
    /// generation with identical results.
    pub fn prefetch_sessions(&mut self, until: SimTime) {
        for user in &mut self.users {
            if user.buf_pos > 0 {
                user.buf.drain(..user.buf_pos);
                user.buf_pos = 0;
            }
            while user.gen_days < self.session.days && user.gen_days * DAY_MS < until.millis() {
                user.buf.extend(SessionSchedule::generate_day_for_user(
                    user.id,
                    &self.site_ids,
                    &self.session,
                    self.seed,
                    user.gen_days,
                ));
                user.gen_days += 1;
            }
        }
    }

    /// Runs all of this shard's browsing events with `at < tick_end`.
    ///
    /// Reads the platform's catalog state and the tick's frozen `budget`;
    /// mutates only shard-owned state (cursors, RNGs, frequency caps,
    /// extension logs). Users are processed sequentially — within a tick
    /// the decide inputs are frozen and frequency caps are per-user, so
    /// cross-user processing order cannot influence any outcome.
    ///
    /// `probe` controls telemetry: with it on, the shard additionally
    /// fills the batch's metrics registry and flight journal. Telemetry
    /// never touches an RNG and every recorded quantity derives from
    /// user-owned state, so probed and unprobed runs simulate identically.
    pub fn run_tick<B: BudgetView>(
        &mut self,
        platform: &Platform,
        budget: &B,
        sites: &SiteRegistry,
        tick_end: SimTime,
        probe: TickProbe,
    ) -> ShardBatch {
        self.try_run_tick(platform, budget, sites, tick_end, probe, None)
            .expect("a tick without an injected crash point cannot crash")
    }

    /// [`Self::run_tick`], but with an optional injected [`CrashPoint`].
    ///
    /// On `Err(CrashSignal)` the shard's state is **half-mutated garbage**
    /// (cursors and RNGs advanced partway through the tick) and the
    /// partial batch is discarded; the caller must restore a tick-start
    /// snapshot before retrying. The fault-free path (`crash: None`) can
    /// never fail.
    pub fn try_run_tick<B: BudgetView>(
        &mut self,
        platform: &Platform,
        budget: &B,
        sites: &SiteRegistry,
        tick_end: SimTime,
        probe: TickProbe,
        crash: Option<CrashPoint>,
    ) -> Result<ShardBatch, CrashSignal> {
        // `cfg!` first so the whole recording path const-folds away when
        // the engine is built without its `telemetry` feature.
        let record = cfg!(feature = "telemetry") && probe.record;
        // Tracing rides on the recording path: ids and sampling are pure
        // functions of user-owned state (no RNG draws, no platform
        // mutation), so traced and untraced runs simulate identically.
        let tracing = record && probe.trace.enabled;
        let mut batch = ShardBatch {
            shard: self.index,
            events: Vec::new(),
            stats: DeliveryStats::default(),
            page_views: 0,
            telemetry: Registry::new(),
            flight: Vec::new(),
            flight_dropped: 0,
            traces: Vec::new(),
        };
        let mut flight = FlightRecorder::with_capacity(probe.flight_capacity.max(1));
        // Phase wall time accumulates across the whole tick and is
        // observed once, so the histograms read "per shard-tick". The
        // auction timer chains per *user* (two clock reads per user-tick,
        // not per opportunity) and covers the whole decide loop; delivery
        // is sampled — see `DELIVERY_SAMPLE`.
        let mut auction_ns = 0u64;
        let mut delivery_ns = 0u64;
        let mut tally = TickTally::default();
        let mut eligible_hist = Histogram::small_values();
        let mut candidate_hist = Histogram::small_values();
        for (ui, user) in self.users.iter_mut().enumerate() {
            let uid = user.id;
            let mut chain = if record { Some(Instant::now()) } else { None };
            loop {
                if user.buf_pos == user.buf.len() {
                    // Window exhausted: generate the next day on demand if
                    // it can still contribute events before `tick_end`
                    // (prefetched shards never take this path).
                    if user.gen_days >= self.session.days
                        || user.gen_days * DAY_MS >= tick_end.millis()
                    {
                        break;
                    }
                    user.buf = SessionSchedule::generate_day_for_user(
                        uid,
                        &self.site_ids,
                        &self.session,
                        self.seed,
                        user.gen_days,
                    );
                    user.buf_pos = 0;
                    user.gen_days += 1;
                    continue;
                }
                let BrowsingEvent::PageView { site, at, .. } = user.buf[user.buf_pos];
                if at >= tick_end {
                    break;
                }
                user.buf_pos += 1;
                user.consumed += 1;
                self.dirty[ui] = true;
                let site = match sites.get(site) {
                    Some(s) => s,
                    None => continue,
                };
                batch.page_views += 1;
                tally.page_views += 1;
                if let Some(cp) = crash {
                    if batch.page_views > cp.after_page_views {
                        // Die with cursors/RNGs already advanced for this
                        // page view: the most hostile partial state.
                        return Err(CrashSignal);
                    }
                }
                // The trace id is keyed on the page view's *first* merge
                // key — `user.seq` before any pixel or impression of this
                // view consumes one — so any stage that knows the request
                // key can re-derive the same id on any shard count.
                let trace_id = if tracing {
                    TraceId::from_key(probe.seed, at, uid.raw(), user.seq)
                } else {
                    TraceId(0)
                };
                let mut trace = (tracing && probe.trace.sampled(trace_id))
                    .then(|| RequestTrace::new(trace_id, at, uid.raw(), user.seq, true));
                let root = trace.as_mut().map(|t| t.span("page_view", None, at));
                for &pixel in &site.pixels {
                    if let (Some(t), Some(root)) = (trace.as_mut(), root) {
                        t.event(root, TraceEventKind::PixelFired { pixel: pixel.raw() });
                    }
                    batch.events.push(ShardEvent::PixelFire {
                        at,
                        user: uid,
                        user_seq: user.seq,
                        pixel,
                    });
                    user.seq += 1;
                }
                for slot in 0..u32::from(site.ad_slots_per_view) {
                    batch.stats.opportunities += 1;
                    let traced = platform
                        .decide_browse_traced_with_scratch(
                            uid,
                            at,
                            budget,
                            &self.freq,
                            &mut user.rng,
                            &mut self.scratch,
                        )
                        .expect("engine users are registered on the platform");
                    if record {
                        let b = traced.breakdown;
                        eligible_hist.observe(u64::from(b.eligible));
                        // Under indexed selection `considered` IS the
                        // candidate-set size; under the linear scan it is
                        // the whole inventory and `index_pruned` is zero.
                        candidate_hist.observe(u64::from(b.considered));
                        tally.index_candidates += u64::from(b.considered);
                        tally.index_pruned += u64::from(b.index_pruned);
                        tally.considered += u64::from(b.considered);
                        tally.not_servable += u64::from(b.not_servable);
                        tally.suspended += u64::from(b.suspended);
                        tally.over_budget += u64::from(b.over_budget);
                        tally.frequency_capped += u64::from(b.frequency_capped);
                        tally.targeting_mismatch += u64::from(b.targeting_mismatch);
                        tally.compiled_evals += u64::from(b.compiled_evals);
                        let outcome_tag = match traced.decision.outcome {
                            adplatform::auction::AuctionOutcome::Won { .. } => "won",
                            adplatform::auction::AuctionOutcome::LostToBackground => {
                                "lost_to_background"
                            }
                            adplatform::auction::AuctionOutcome::Unfilled => "unfilled",
                        };
                        flight.record(FlightEvent {
                            at,
                            user: uid,
                            seq: user.fseq,
                            trace: trace_id.0,
                            kind: FlightKind::AuctionDecided {
                                outcome: outcome_tag,
                                eligible: b.eligible,
                                frequency_capped: b.frequency_capped,
                                over_budget: b.over_budget,
                            },
                        });
                        user.fseq += 1;
                        if b.frequency_capped > 0 {
                            tally.cap_rejections += 1;
                            flight.record(FlightEvent {
                                at,
                                user: uid,
                                seq: user.fseq,
                                trace: trace_id.0,
                                kind: FlightKind::CapRejection {
                                    ads_capped: b.frequency_capped,
                                },
                            });
                            user.fseq += 1;
                        }
                        if let Some(t) = trace.as_mut() {
                            let span = t.span("decide_slot", root, at);
                            let b = traced.breakdown;
                            t.event(
                                span,
                                TraceEventKind::Slot {
                                    slot,
                                    considered: b.considered,
                                    index_pruned: b.index_pruned,
                                    not_servable: b.not_servable,
                                    suspended: b.suspended,
                                    over_budget: b.over_budget,
                                    frequency_capped: b.frequency_capped,
                                    targeting_mismatch: b.targeting_mismatch,
                                    eligible: b.eligible,
                                    compiled_evals: b.compiled_evals,
                                },
                            );
                            // Per-candidate verdicts are re-derived (pure,
                            // RNG-free) only for sampled requests — the
                            // decision path above never depends on them.
                            let verdicts = platform
                                .candidate_verdicts(uid, budget, &self.freq)
                                .expect("engine users are registered on the platform");
                            for v in verdicts {
                                t.event(
                                    span,
                                    TraceEventKind::Candidate {
                                        slot,
                                        ad: v.ad.raw(),
                                        verdict: v.verdict,
                                        bid_cpm_micros: v.bid_cpm.as_micros(),
                                    },
                                );
                            }
                            let (winner, clearing) = match traced.decision.outcome {
                                adplatform::auction::AuctionOutcome::Won { ad, clearing_cpm } => {
                                    (ad.raw(), clearing_cpm.as_micros())
                                }
                                _ => (0, 0),
                            };
                            t.event(
                                span,
                                TraceEventKind::Auction {
                                    slot,
                                    outcome: outcome_tag,
                                    winner,
                                    clearing_cpm_micros: clearing,
                                    advertiser_bids: traced.auction.advertiser_bids,
                                    background_competitors: traced.auction.background_competitors,
                                    best_background_cpm_micros: traced
                                        .auction
                                        .best_background_cpm
                                        .as_micros(),
                                },
                            );
                            if let Some(p) = traced.decision.pending.as_ref() {
                                t.event(
                                    span,
                                    TraceEventKind::Billed {
                                        slot,
                                        ad: p.ad.raw(),
                                        price_micros: p.clearing_cpm.as_micros() / 1000,
                                    },
                                );
                            }
                        }
                    }
                    let decision = traced.decision;
                    match decision.outcome {
                        adplatform::auction::AuctionOutcome::Won { .. } => {
                            batch.stats.won += 1;
                            tally.won += 1;
                            let sample = match chain {
                                Some(t) if tally.won % DELIVERY_SAMPLE == 0 => {
                                    let mid = Instant::now();
                                    auction_ns += (mid - t).as_nanos() as u64;
                                    Some(mid)
                                }
                                _ => None,
                            };
                            let pending = decision.pending.expect("a win carries an impression");
                            // The local cap counter must advance immediately
                            // so later views in this same tick see it; the
                            // platform's global counter catches up at merge.
                            self.freq.bump(pending.ad, uid);
                            if let Some(log) = self.extensions.get_mut(&uid) {
                                let creative = platform
                                    .campaigns
                                    .ad(pending.ad)
                                    .expect("won ad exists")
                                    .creative
                                    .clone();
                                log.observe(pending.ad, creative, at);
                                if record {
                                    tally.treads_observed += 1;
                                    flight.record(FlightEvent {
                                        at,
                                        user: uid,
                                        seq: user.fseq,
                                        trace: trace_id.0,
                                        kind: FlightKind::TreadObserved {
                                            ad: pending.ad.raw(),
                                        },
                                    });
                                    user.fseq += 1;
                                }
                            }
                            batch.events.push(ShardEvent::Impression {
                                at,
                                user: uid,
                                user_seq: user.seq,
                                pending,
                            });
                            user.seq += 1;
                            if let Some(mid) = sample {
                                let end = Instant::now();
                                delivery_ns += (end - mid).as_nanos() as u64 * DELIVERY_SAMPLE;
                                chain = Some(end);
                            }
                        }
                        adplatform::auction::AuctionOutcome::LostToBackground => {
                            batch.stats.lost_to_background += 1;
                            tally.lost_to_background += 1;
                        }
                        adplatform::auction::AuctionOutcome::Unfilled => {
                            batch.stats.unfilled += 1;
                            tally.unfilled += 1;
                        }
                    }
                }
                if let Some(t) = trace.take() {
                    batch.traces.push(t);
                }
            }
            if let Some(t) = chain {
                auction_ns += t.elapsed().as_nanos() as u64;
            }
        }
        if record {
            let reg = &mut batch.telemetry;
            reg.add("engine.page_views", tally.page_views);
            reg.add("eligibility.considered", tally.considered);
            reg.add("eligibility.not_servable", tally.not_servable);
            reg.add("eligibility.suspended", tally.suspended);
            reg.add("eligibility.over_budget", tally.over_budget);
            reg.add("eligibility.frequency_capped", tally.frequency_capped);
            reg.add("eligibility.targeting_mismatch", tally.targeting_mismatch);
            reg.add("auction.won", tally.won);
            reg.add("auction.lost_to_background", tally.lost_to_background);
            reg.add("auction.unfilled", tally.unfilled);
            reg.add("delivery.cap_rejections", tally.cap_rejections);
            reg.add("treads.observed", tally.treads_observed);
            reg.add("index.candidates", tally.index_candidates);
            reg.add("index.pruned", tally.index_pruned);
            reg.add("targeting.compiled_evals", tally.compiled_evals);
            reg.merge_histogram("auction.eligible_bids", &eligible_hist);
            reg.merge_histogram("index.candidate_set_size", &candidate_hist);
            reg.observe_ns("phase.auction_ns", auction_ns);
            reg.observe_ns("phase.delivery_ns", delivery_ns);
            batch.flight_dropped = flight.dropped();
            batch.flight = flight.drain();
        }
        Ok(batch)
    }

    /// Skips all of this shard's browsing events with `at < tick_end`
    /// without executing them, returning an exact inventory of the work
    /// abandoned. Used by the supervisor when a shard tick exhausts its
    /// retry budget: the cursor must still advance (or the events would
    /// replay next tick at the wrong time) but nothing else may move.
    ///
    /// `seq`, RNGs, frequency caps, and extension logs are deliberately
    /// untouched. Skipped events are never merged, and every later event
    /// has a strictly later `at`, so reusing the skipped events' sequence
    /// numbers cannot collide in the `(at, user, user_seq)` merge key.
    pub fn skip_tick(&mut self, sites: &SiteRegistry, tick_end: SimTime) -> LostWork {
        let mut lost = LostWork {
            shard: self.index,
            ..LostWork::default()
        };
        for (ui, user) in self.users.iter_mut().enumerate() {
            loop {
                if user.buf_pos == user.buf.len() {
                    if user.gen_days >= self.session.days
                        || user.gen_days * DAY_MS >= tick_end.millis()
                    {
                        break;
                    }
                    user.buf = SessionSchedule::generate_day_for_user(
                        user.id,
                        &self.site_ids,
                        &self.session,
                        self.seed,
                        user.gen_days,
                    );
                    user.buf_pos = 0;
                    user.gen_days += 1;
                    continue;
                }
                let BrowsingEvent::PageView { site, at, .. } = user.buf[user.buf_pos];
                if at >= tick_end {
                    break;
                }
                user.buf_pos += 1;
                user.consumed += 1;
                self.dirty[ui] = true;
                // Unknown sites are skipped without counting, exactly as
                // `run_tick` skips them without simulating.
                let site = match sites.get(site) {
                    Some(s) => s,
                    None => continue,
                };
                lost.page_views += 1;
                lost.pixel_fires += site.pixels.len() as u64;
                lost.opportunities += u64::from(site.ad_slots_per_view);
            }
        }
        lost
    }

    /// This shard's index within the engine.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Freezes the shard's replayable state into a [`ShardCheckpoint`].
    ///
    /// Browsing schedules are *not* captured — they are a pure function of
    /// `(seed, user, sites, session)` and are regenerated by the resuming
    /// host; only the cursor into them is state.
    pub fn export_cursors(&self) -> ShardCheckpoint {
        ShardCheckpoint {
            index: self.index as u64,
            users: self.users.iter().map(UserRuntime::cursor).collect(),
            freq: self.freq.entries(),
            extensions: self
                .extensions
                .iter()
                .map(|(&user, log)| ExtensionSnapshot {
                    user,
                    observations: log.observations().to_vec(),
                })
                .collect(),
        }
    }

    /// Drains the per-user dirty flags, returning `(position, cursor)`
    /// for every user whose schedule state moved since the last drain.
    ///
    /// Positions index the shard's deterministic user order (the same
    /// order [`Self::export_cursors`] freezes), so a delta frame can
    /// address cursors without repeating the full user list. Call this on
    /// *every* checkpoint frame — full frames discard the result but must
    /// still reset the flags so the next delta is relative to them.
    pub fn take_dirty_cursors(&mut self) -> Vec<(u32, UserCursor)> {
        let mut out = Vec::new();
        for (ui, user) in self.users.iter().enumerate() {
            if self.dirty[ui] {
                out.push((ui as u32, user.cursor()));
            }
        }
        for flag in &mut self.dirty {
            *flag = false;
        }
        out
    }

    /// The current frequency-cap count for `(ad, user)` on this shard.
    pub fn freq_count(&self, ad: adsim_types::AdId, user: UserId) -> u32 {
        self.freq.count(ad, user)
    }

    /// The extension logs of this shard's Treads users (delta checkpoints
    /// read append-only suffixes out of them).
    pub fn extensions(&self) -> &BTreeMap<UserId, ExtensionLog> {
        &self.extensions
    }

    /// Restores the replayable state frozen by [`Self::export_cursors`]
    /// into a freshly built shard (same users, same order, same seed).
    ///
    /// Fails without mutating anything if the checkpoint does not describe
    /// this shard: wrong index, wrong user count, or a positional user
    /// mismatch (shard user assignment is deterministic, so any of these
    /// means the host was configured differently than the checkpointed
    /// run).
    pub fn restore_cursors(&mut self, cp: &ShardCheckpoint) -> adsim_types::Result<()> {
        if cp.index != self.index as u64 {
            return Err(adsim_types::Error::invalid(format!(
                "checkpoint is for shard {}, not shard {}",
                cp.index, self.index
            )));
        }
        if cp.users.len() != self.users.len() {
            return Err(adsim_types::Error::invalid(format!(
                "checkpoint has {} users for shard {}, host shard has {}",
                cp.users.len(),
                self.index,
                self.users.len()
            )));
        }
        // Replay day generation to locate each frozen cursor: days are
        // regenerated from day 0, fully-consumed ones discarded, until the
        // consumed-event count is spent. Nothing is applied until every
        // user's cursor is known to fit inside their schedule.
        let mut windows: Vec<(Vec<BrowsingEvent>, usize, u64)> =
            Vec::with_capacity(self.users.len());
        for (user, frozen) in self.users.iter().zip(&cp.users) {
            if user.id != frozen.user {
                return Err(adsim_types::Error::invalid(format!(
                    "checkpoint user {} does not match host shard user {}",
                    frozen.user, user.id
                )));
            }
            let mut remaining = frozen.cursor;
            let mut window = (Vec::new(), 0usize, 0u64);
            for day in 0..self.session.days {
                let events = SessionSchedule::generate_day_for_user(
                    user.id,
                    &self.site_ids,
                    &self.session,
                    self.seed,
                    day,
                );
                if remaining < events.len() as u64 {
                    window = (events, remaining as usize, day + 1);
                    remaining = 0;
                    break;
                }
                remaining -= events.len() as u64;
                window = (Vec::new(), 0, day + 1);
            }
            if remaining > 0 {
                return Err(adsim_types::Error::invalid(format!(
                    "checkpoint cursor {} exceeds user {}'s schedule length",
                    frozen.cursor, user.id
                )));
            }
            windows.push(window);
        }
        if cp.extensions.len() != self.extensions.len()
            || cp
                .extensions
                .iter()
                .any(|e| !self.extensions.contains_key(&e.user))
        {
            return Err(adsim_types::Error::invalid(format!(
                "checkpoint extension-user set does not match host shard {}",
                self.index
            )));
        }
        for ((user, frozen), (buf, buf_pos, gen_days)) in
            self.users.iter_mut().zip(&cp.users).zip(windows)
        {
            user.rng = StdRng::restore(frozen.rng);
            user.buf = buf;
            user.buf_pos = buf_pos;
            user.gen_days = gen_days;
            user.consumed = frozen.cursor;
            user.seq = frozen.seq;
            user.fseq = frozen.fseq;
        }
        for flag in &mut self.dirty {
            *flag = false;
        }
        self.freq.restore_entries(&cp.freq);
        self.extensions = cp
            .extensions
            .iter()
            .map(|e| {
                (
                    e.user,
                    ExtensionLog::from_parts(Some(e.user), e.observations.clone()),
                )
            })
            .collect();
        Ok(())
    }

    /// Consumes the shard, yielding its users' extension logs.
    pub fn into_extensions(self) -> BTreeMap<UserId, ExtensionLog> {
        self.extensions
    }
}
