//! Per-shard execution state.
//!
//! A shard exclusively owns a subset of users (assigned by
//! [`treads_workload::ShardPlan`]) and everything keyed on them:
//!
//! * each user's **browsing schedule**, generated from the per-user
//!   substream `session-user-{id}` — identical whichever shard runs it;
//! * each user's **auction RNG**, substream `engine-user-{id}` — likewise;
//! * the shard's **frequency caps**, which are per-`(ad, user)` counters
//!   and therefore never shared across shards;
//! * the **extension logs** of its users who run the Treads extension.
//!
//! During a tick the shard only *reads* the platform (via
//! [`Platform::decide_browse`] against a frozen
//! [`adplatform::billing::BudgetSnapshot`]) and accumulates its
//! globally-visible effects as a [`ShardBatch`] for the engine to merge.

use std::collections::{BTreeMap, BTreeSet};

use adplatform::billing::BudgetView;
use adplatform::delivery::{DeliveryStats, FrequencyCaps};
use adplatform::Platform;
use adsim_types::rng::substream;
use adsim_types::{SimTime, SiteId, UserId};
use rand::rngs::StdRng;
use websim::{BrowsingEvent, ExtensionLog, SessionConfig, SessionSchedule, SiteRegistry};

use crate::event::ShardEvent;

/// One user's execution state inside its owning shard.
struct UserRuntime {
    id: UserId,
    /// Auction randomness: substream `engine-user-{id}` of the engine seed.
    rng: StdRng,
    /// The user's full browsing schedule, time-sorted.
    events: Vec<BrowsingEvent>,
    /// Index of the next unprocessed event.
    cursor: usize,
    /// Per-user event counter; becomes the `user_seq` merge-key component.
    seq: u64,
}

/// Everything a shard hands back after one tick.
#[derive(Debug, Clone)]
pub struct ShardBatch {
    /// The producing shard's index (for deterministic collection order).
    pub shard: usize,
    /// Globally-visible effects, in shard-local production order.
    pub events: Vec<ShardEvent>,
    /// Delivery statistics accrued this tick.
    pub stats: DeliveryStats,
    /// Page views processed this tick.
    pub page_views: u64,
}

/// A shard: exclusive owner of its users' simulation state.
pub struct ShardState {
    index: usize,
    users: Vec<UserRuntime>,
    freq: FrequencyCaps,
    extensions: BTreeMap<UserId, ExtensionLog>,
}

impl ShardState {
    /// Builds a shard for `users`, generating each user's browsing
    /// schedule from its own substream of `seed`.
    pub fn new(
        index: usize,
        users: &[UserId],
        extension_users: &BTreeSet<UserId>,
        sites: &[SiteId],
        session: &SessionConfig,
        seed: u64,
        frequency_cap: u32,
    ) -> Self {
        let runtimes = users
            .iter()
            .map(|&id| {
                let schedule = SessionSchedule::generate_for_user(id, sites, session, seed);
                UserRuntime {
                    id,
                    rng: substream(seed, &format!("engine-user-{}", id.raw())),
                    events: schedule.events().to_vec(),
                    cursor: 0,
                    seq: 0,
                }
            })
            .collect();
        let extensions = users
            .iter()
            .filter(|u| extension_users.contains(u))
            .map(|&u| (u, ExtensionLog::for_user(u)))
            .collect();
        Self {
            index,
            users: runtimes,
            freq: FrequencyCaps::new(frequency_cap),
            extensions,
        }
    }

    /// Number of users owned by this shard.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Runs all of this shard's browsing events with `at < tick_end`.
    ///
    /// Reads the platform's catalog state and the tick's frozen `budget`;
    /// mutates only shard-owned state (cursors, RNGs, frequency caps,
    /// extension logs). Users are processed sequentially — within a tick
    /// the decide inputs are frozen and frequency caps are per-user, so
    /// cross-user processing order cannot influence any outcome.
    pub fn run_tick<B: BudgetView>(
        &mut self,
        platform: &Platform,
        budget: &B,
        sites: &SiteRegistry,
        tick_end: SimTime,
    ) -> ShardBatch {
        let mut batch = ShardBatch {
            shard: self.index,
            events: Vec::new(),
            stats: DeliveryStats::default(),
            page_views: 0,
        };
        for user in &mut self.users {
            let uid = user.id;
            while user.cursor < user.events.len() {
                let BrowsingEvent::PageView { site, at, .. } = user.events[user.cursor];
                if at >= tick_end {
                    break;
                }
                user.cursor += 1;
                let site = match sites.get(site) {
                    Some(s) => s,
                    None => continue,
                };
                batch.page_views += 1;
                for &pixel in &site.pixels {
                    batch.events.push(ShardEvent::PixelFire {
                        at,
                        user: uid,
                        user_seq: user.seq,
                        pixel,
                    });
                    user.seq += 1;
                }
                for _ in 0..site.ad_slots_per_view {
                    batch.stats.opportunities += 1;
                    let decision = platform
                        .decide_browse(uid, at, budget, &self.freq, &mut user.rng)
                        .expect("engine users are registered on the platform");
                    match decision.outcome {
                        adplatform::auction::AuctionOutcome::Won { .. } => {
                            batch.stats.won += 1;
                            let pending = decision.pending.expect("a win carries an impression");
                            // The local cap counter must advance immediately
                            // so later views in this same tick see it; the
                            // platform's global counter catches up at merge.
                            self.freq.bump(pending.ad, uid);
                            if let Some(log) = self.extensions.get_mut(&uid) {
                                let creative = platform
                                    .campaigns
                                    .ad(pending.ad)
                                    .expect("won ad exists")
                                    .creative
                                    .clone();
                                log.observe(pending.ad, creative, at);
                            }
                            batch.events.push(ShardEvent::Impression {
                                at,
                                user: uid,
                                user_seq: user.seq,
                                pending,
                            });
                            user.seq += 1;
                        }
                        adplatform::auction::AuctionOutcome::LostToBackground => {
                            batch.stats.lost_to_background += 1;
                        }
                        adplatform::auction::AuctionOutcome::Unfilled => {
                            batch.stats.unfilled += 1;
                        }
                    }
                }
            }
        }
        batch
    }

    /// Consumes the shard, yielding its users' extension logs.
    pub fn into_extensions(self) -> BTreeMap<UserId, ExtensionLog> {
        self.extensions
    }
}
