//! Per-shard execution state.
//!
//! A shard exclusively owns a subset of users (assigned by
//! [`treads_workload::ShardPlan`]) and everything keyed on them:
//!
//! * each user's **browsing schedule**, generated from the per-user
//!   substream `session-user-{id}` — identical whichever shard runs it;
//! * each user's **auction RNG**, substream `engine-user-{id}` — likewise;
//! * the shard's **frequency caps**, which are per-`(ad, user)` counters
//!   and therefore never shared across shards;
//! * the **extension logs** of its users who run the Treads extension.
//!
//! During a tick the shard only *reads* the platform (via
//! [`Platform::decide_browse`] against a frozen
//! [`adplatform::billing::BudgetSnapshot`]) and accumulates its
//! globally-visible effects as a [`ShardBatch`] for the engine to merge.

use std::collections::{BTreeMap, BTreeSet};

use adplatform::billing::BudgetView;
use adplatform::delivery::{DeliveryScratch, DeliveryStats, FrequencyCaps};
use adplatform::Platform;
use adsim_types::rng::substream;
use adsim_types::{SimTime, SiteId, UserId};
use rand::rngs::StdRng;
use std::time::Instant;
use treads_telemetry::{
    FlightEvent, FlightKind, FlightRecorder, Histogram, Registry, RequestTrace, TraceConfig,
    TraceEventKind, TraceId,
};
use websim::{BrowsingEvent, ExtensionLog, SessionConfig, SessionSchedule, SiteRegistry};

use treads_resilience::checkpoint::{ExtensionSnapshot, ShardCheckpoint, UserCursor};
use treads_resilience::LostWork;

use crate::event::ShardEvent;

/// One user's execution state inside its owning shard.
///
/// `Clone` is what makes crash recovery cheap to reason about: the
/// supervisor snapshots a shard before a tick attempt and restores the
/// snapshot wholesale, so a half-executed attempt can never leak partial
/// cursor/RNG state into the retry.
#[derive(Clone)]
struct UserRuntime {
    id: UserId,
    /// Auction randomness: substream `engine-user-{id}` of the engine seed.
    rng: StdRng,
    /// The user's full browsing schedule, time-sorted.
    events: Vec<BrowsingEvent>,
    /// Index of the next unprocessed event.
    cursor: usize,
    /// Per-user event counter; becomes the `user_seq` merge-key component.
    seq: u64,
    /// Per-user flight-event counter: the `seq` tie-breaker of this user's
    /// journal entries. Advances only on journaled events, entirely from
    /// user-owned state, so it is shard-count-invariant like `seq`.
    fseq: u64,
}

/// What a shard should record during a tick, decided once by the engine.
#[derive(Debug, Clone, Copy)]
pub struct TickProbe {
    /// Record metrics and flight events this tick.
    pub record: bool,
    /// Ring capacity for the shard's per-tick flight journal.
    pub flight_capacity: usize,
    /// Causal-trace sampling policy (disabled unless telemetry is live).
    pub trace: TraceConfig,
    /// The engine seed, the salt of every derived [`TraceId`]. Trace ids
    /// are a pure function of `(seed, at, user, user_seq)`, so they are
    /// shard-count-invariant like the merge key itself.
    pub seed: u64,
}

impl TickProbe {
    /// A probe that records nothing (what [`crate::Engine::run`] uses).
    pub fn off() -> Self {
        Self {
            record: false,
            flight_capacity: 1,
            trace: TraceConfig::disabled(),
            seed: 0,
        }
    }
}

/// Delivery (win handling) is micro-scale work — timing every win would
/// cost more than the work itself — so `phase.delivery_ns` times one win
/// in this many and scales the sample up.
const DELIVERY_SAMPLE: u64 = 16;

/// Tick-local counter accumulator. Hot-loop increments hit plain fields;
/// the registry (a name-keyed map) is touched once per tick at flush.
#[derive(Default)]
struct TickTally {
    page_views: u64,
    considered: u64,
    not_servable: u64,
    suspended: u64,
    over_budget: u64,
    frequency_capped: u64,
    targeting_mismatch: u64,
    won: u64,
    lost_to_background: u64,
    unfilled: u64,
    cap_rejections: u64,
    treads_observed: u64,
    index_candidates: u64,
    index_pruned: u64,
    compiled_evals: u64,
}

/// Everything a shard hands back after one tick.
#[derive(Debug, Clone)]
pub struct ShardBatch {
    /// The producing shard's index (for deterministic collection order).
    pub shard: usize,
    /// Globally-visible effects, in shard-local production order.
    pub events: Vec<ShardEvent>,
    /// Delivery statistics accrued this tick.
    pub stats: DeliveryStats,
    /// Page views processed this tick.
    pub page_views: u64,
    /// Metrics recorded this tick (empty when the probe was off).
    pub telemetry: Registry,
    /// Flight events journaled this tick, in shard-local production order.
    pub flight: Vec<FlightEvent>,
    /// Flight events this shard's per-tick ring evicted.
    pub flight_dropped: u64,
    /// Head-sampled request traces built this tick, in shard-local
    /// production order (the engine re-sorts by request key).
    pub traces: Vec<RequestTrace>,
}

/// A point inside a tick at which an injected crash strikes.
///
/// The crash fires when the attempt's page-view count *exceeds*
/// `after_page_views`, so successive retry attempts (which pass their
/// attempt number here) die progressively deeper into the tick — each
/// failed attempt leaves behind a *different* half-mutated state, which is
/// exactly what snapshot-restore recovery must be robust to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Page views the attempt completes before dying.
    pub after_page_views: u64,
}

/// A shard tick attempt died mid-execution.
///
/// Carries no payload on purpose: a crashed process reports nothing, and
/// the supervisor must recover from the tick-start snapshot alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSignal;

/// A shard: exclusive owner of its users' simulation state.
#[derive(Clone)]
pub struct ShardState {
    index: usize,
    users: Vec<UserRuntime>,
    freq: FrequencyCaps,
    extensions: BTreeMap<UserId, ExtensionLog>,
    /// Reusable per-decide buffers (candidate list, bid list), warm
    /// across every opportunity this shard ever runs.
    /// Pure scratch: cleared before use, so it carries no state between
    /// opportunities and is deliberately absent from checkpoints.
    scratch: DeliveryScratch,
}

impl ShardState {
    /// Builds a shard for `users`, generating each user's browsing
    /// schedule from its own substream of `seed`.
    pub fn new(
        index: usize,
        users: &[UserId],
        extension_users: &BTreeSet<UserId>,
        sites: &[SiteId],
        session: &SessionConfig,
        seed: u64,
        frequency_cap: u32,
    ) -> Self {
        let runtimes = users
            .iter()
            .map(|&id| {
                let schedule = SessionSchedule::generate_for_user(id, sites, session, seed);
                UserRuntime {
                    id,
                    rng: substream(seed, &format!("engine-user-{}", id.raw())),
                    events: schedule.events().to_vec(),
                    cursor: 0,
                    seq: 0,
                    fseq: 0,
                }
            })
            .collect();
        let extensions = users
            .iter()
            .filter(|u| extension_users.contains(u))
            .map(|&u| (u, ExtensionLog::for_user(u)))
            .collect();
        Self {
            index,
            users: runtimes,
            freq: FrequencyCaps::new(frequency_cap),
            extensions,
            scratch: DeliveryScratch::new(),
        }
    }

    /// Number of users owned by this shard.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Runs all of this shard's browsing events with `at < tick_end`.
    ///
    /// Reads the platform's catalog state and the tick's frozen `budget`;
    /// mutates only shard-owned state (cursors, RNGs, frequency caps,
    /// extension logs). Users are processed sequentially — within a tick
    /// the decide inputs are frozen and frequency caps are per-user, so
    /// cross-user processing order cannot influence any outcome.
    ///
    /// `probe` controls telemetry: with it on, the shard additionally
    /// fills the batch's metrics registry and flight journal. Telemetry
    /// never touches an RNG and every recorded quantity derives from
    /// user-owned state, so probed and unprobed runs simulate identically.
    pub fn run_tick<B: BudgetView>(
        &mut self,
        platform: &Platform,
        budget: &B,
        sites: &SiteRegistry,
        tick_end: SimTime,
        probe: TickProbe,
    ) -> ShardBatch {
        self.try_run_tick(platform, budget, sites, tick_end, probe, None)
            .expect("a tick without an injected crash point cannot crash")
    }

    /// [`Self::run_tick`], but with an optional injected [`CrashPoint`].
    ///
    /// On `Err(CrashSignal)` the shard's state is **half-mutated garbage**
    /// (cursors and RNGs advanced partway through the tick) and the
    /// partial batch is discarded; the caller must restore a tick-start
    /// snapshot before retrying. The fault-free path (`crash: None`) can
    /// never fail.
    pub fn try_run_tick<B: BudgetView>(
        &mut self,
        platform: &Platform,
        budget: &B,
        sites: &SiteRegistry,
        tick_end: SimTime,
        probe: TickProbe,
        crash: Option<CrashPoint>,
    ) -> Result<ShardBatch, CrashSignal> {
        // `cfg!` first so the whole recording path const-folds away when
        // the engine is built without its `telemetry` feature.
        let record = cfg!(feature = "telemetry") && probe.record;
        // Tracing rides on the recording path: ids and sampling are pure
        // functions of user-owned state (no RNG draws, no platform
        // mutation), so traced and untraced runs simulate identically.
        let tracing = record && probe.trace.enabled;
        let mut batch = ShardBatch {
            shard: self.index,
            events: Vec::new(),
            stats: DeliveryStats::default(),
            page_views: 0,
            telemetry: Registry::new(),
            flight: Vec::new(),
            flight_dropped: 0,
            traces: Vec::new(),
        };
        let mut flight = FlightRecorder::with_capacity(probe.flight_capacity.max(1));
        // Phase wall time accumulates across the whole tick and is
        // observed once, so the histograms read "per shard-tick". The
        // auction timer chains per *user* (two clock reads per user-tick,
        // not per opportunity) and covers the whole decide loop; delivery
        // is sampled — see `DELIVERY_SAMPLE`.
        let mut auction_ns = 0u64;
        let mut delivery_ns = 0u64;
        let mut tally = TickTally::default();
        let mut eligible_hist = Histogram::small_values();
        let mut candidate_hist = Histogram::small_values();
        for user in &mut self.users {
            let uid = user.id;
            let mut chain = if record { Some(Instant::now()) } else { None };
            while user.cursor < user.events.len() {
                let BrowsingEvent::PageView { site, at, .. } = user.events[user.cursor];
                if at >= tick_end {
                    break;
                }
                user.cursor += 1;
                let site = match sites.get(site) {
                    Some(s) => s,
                    None => continue,
                };
                batch.page_views += 1;
                tally.page_views += 1;
                if let Some(cp) = crash {
                    if batch.page_views > cp.after_page_views {
                        // Die with cursors/RNGs already advanced for this
                        // page view: the most hostile partial state.
                        return Err(CrashSignal);
                    }
                }
                // The trace id is keyed on the page view's *first* merge
                // key — `user.seq` before any pixel or impression of this
                // view consumes one — so any stage that knows the request
                // key can re-derive the same id on any shard count.
                let trace_id = if tracing {
                    TraceId::from_key(probe.seed, at, uid.raw(), user.seq)
                } else {
                    TraceId(0)
                };
                let mut trace = (tracing && probe.trace.sampled(trace_id))
                    .then(|| RequestTrace::new(trace_id, at, uid.raw(), user.seq, true));
                let root = trace.as_mut().map(|t| t.span("page_view", None, at));
                for &pixel in &site.pixels {
                    if let (Some(t), Some(root)) = (trace.as_mut(), root) {
                        t.event(root, TraceEventKind::PixelFired { pixel: pixel.raw() });
                    }
                    batch.events.push(ShardEvent::PixelFire {
                        at,
                        user: uid,
                        user_seq: user.seq,
                        pixel,
                    });
                    user.seq += 1;
                }
                for slot in 0..u32::from(site.ad_slots_per_view) {
                    batch.stats.opportunities += 1;
                    let traced = platform
                        .decide_browse_traced_with_scratch(
                            uid,
                            at,
                            budget,
                            &self.freq,
                            &mut user.rng,
                            &mut self.scratch,
                        )
                        .expect("engine users are registered on the platform");
                    if record {
                        let b = traced.breakdown;
                        eligible_hist.observe(u64::from(b.eligible));
                        // Under indexed selection `considered` IS the
                        // candidate-set size; under the linear scan it is
                        // the whole inventory and `index_pruned` is zero.
                        candidate_hist.observe(u64::from(b.considered));
                        tally.index_candidates += u64::from(b.considered);
                        tally.index_pruned += u64::from(b.index_pruned);
                        tally.considered += u64::from(b.considered);
                        tally.not_servable += u64::from(b.not_servable);
                        tally.suspended += u64::from(b.suspended);
                        tally.over_budget += u64::from(b.over_budget);
                        tally.frequency_capped += u64::from(b.frequency_capped);
                        tally.targeting_mismatch += u64::from(b.targeting_mismatch);
                        tally.compiled_evals += u64::from(b.compiled_evals);
                        let outcome_tag = match traced.decision.outcome {
                            adplatform::auction::AuctionOutcome::Won { .. } => "won",
                            adplatform::auction::AuctionOutcome::LostToBackground => {
                                "lost_to_background"
                            }
                            adplatform::auction::AuctionOutcome::Unfilled => "unfilled",
                        };
                        flight.record(FlightEvent {
                            at,
                            user: uid,
                            seq: user.fseq,
                            trace: trace_id.0,
                            kind: FlightKind::AuctionDecided {
                                outcome: outcome_tag,
                                eligible: b.eligible,
                                frequency_capped: b.frequency_capped,
                                over_budget: b.over_budget,
                            },
                        });
                        user.fseq += 1;
                        if b.frequency_capped > 0 {
                            tally.cap_rejections += 1;
                            flight.record(FlightEvent {
                                at,
                                user: uid,
                                seq: user.fseq,
                                trace: trace_id.0,
                                kind: FlightKind::CapRejection {
                                    ads_capped: b.frequency_capped,
                                },
                            });
                            user.fseq += 1;
                        }
                        if let Some(t) = trace.as_mut() {
                            let span = t.span("decide_slot", root, at);
                            let b = traced.breakdown;
                            t.event(
                                span,
                                TraceEventKind::Slot {
                                    slot,
                                    considered: b.considered,
                                    index_pruned: b.index_pruned,
                                    not_servable: b.not_servable,
                                    suspended: b.suspended,
                                    over_budget: b.over_budget,
                                    frequency_capped: b.frequency_capped,
                                    targeting_mismatch: b.targeting_mismatch,
                                    eligible: b.eligible,
                                    compiled_evals: b.compiled_evals,
                                },
                            );
                            // Per-candidate verdicts are re-derived (pure,
                            // RNG-free) only for sampled requests — the
                            // decision path above never depends on them.
                            let verdicts = platform
                                .candidate_verdicts(uid, budget, &self.freq)
                                .expect("engine users are registered on the platform");
                            for v in verdicts {
                                t.event(
                                    span,
                                    TraceEventKind::Candidate {
                                        slot,
                                        ad: v.ad.raw(),
                                        verdict: v.verdict,
                                        bid_cpm_micros: v.bid_cpm.as_micros(),
                                    },
                                );
                            }
                            let (winner, clearing) = match traced.decision.outcome {
                                adplatform::auction::AuctionOutcome::Won { ad, clearing_cpm } => {
                                    (ad.raw(), clearing_cpm.as_micros())
                                }
                                _ => (0, 0),
                            };
                            t.event(
                                span,
                                TraceEventKind::Auction {
                                    slot,
                                    outcome: outcome_tag,
                                    winner,
                                    clearing_cpm_micros: clearing,
                                    advertiser_bids: traced.auction.advertiser_bids,
                                    background_competitors: traced.auction.background_competitors,
                                    best_background_cpm_micros: traced
                                        .auction
                                        .best_background_cpm
                                        .as_micros(),
                                },
                            );
                            if let Some(p) = traced.decision.pending.as_ref() {
                                t.event(
                                    span,
                                    TraceEventKind::Billed {
                                        slot,
                                        ad: p.ad.raw(),
                                        price_micros: p.clearing_cpm.as_micros() / 1000,
                                    },
                                );
                            }
                        }
                    }
                    let decision = traced.decision;
                    match decision.outcome {
                        adplatform::auction::AuctionOutcome::Won { .. } => {
                            batch.stats.won += 1;
                            tally.won += 1;
                            let sample = match chain {
                                Some(t) if tally.won % DELIVERY_SAMPLE == 0 => {
                                    let mid = Instant::now();
                                    auction_ns += (mid - t).as_nanos() as u64;
                                    Some(mid)
                                }
                                _ => None,
                            };
                            let pending = decision.pending.expect("a win carries an impression");
                            // The local cap counter must advance immediately
                            // so later views in this same tick see it; the
                            // platform's global counter catches up at merge.
                            self.freq.bump(pending.ad, uid);
                            if let Some(log) = self.extensions.get_mut(&uid) {
                                let creative = platform
                                    .campaigns
                                    .ad(pending.ad)
                                    .expect("won ad exists")
                                    .creative
                                    .clone();
                                log.observe(pending.ad, creative, at);
                                if record {
                                    tally.treads_observed += 1;
                                    flight.record(FlightEvent {
                                        at,
                                        user: uid,
                                        seq: user.fseq,
                                        trace: trace_id.0,
                                        kind: FlightKind::TreadObserved {
                                            ad: pending.ad.raw(),
                                        },
                                    });
                                    user.fseq += 1;
                                }
                            }
                            batch.events.push(ShardEvent::Impression {
                                at,
                                user: uid,
                                user_seq: user.seq,
                                pending,
                            });
                            user.seq += 1;
                            if let Some(mid) = sample {
                                let end = Instant::now();
                                delivery_ns += (end - mid).as_nanos() as u64 * DELIVERY_SAMPLE;
                                chain = Some(end);
                            }
                        }
                        adplatform::auction::AuctionOutcome::LostToBackground => {
                            batch.stats.lost_to_background += 1;
                            tally.lost_to_background += 1;
                        }
                        adplatform::auction::AuctionOutcome::Unfilled => {
                            batch.stats.unfilled += 1;
                            tally.unfilled += 1;
                        }
                    }
                }
                if let Some(t) = trace.take() {
                    batch.traces.push(t);
                }
            }
            if let Some(t) = chain {
                auction_ns += t.elapsed().as_nanos() as u64;
            }
        }
        if record {
            let reg = &mut batch.telemetry;
            reg.add("engine.page_views", tally.page_views);
            reg.add("eligibility.considered", tally.considered);
            reg.add("eligibility.not_servable", tally.not_servable);
            reg.add("eligibility.suspended", tally.suspended);
            reg.add("eligibility.over_budget", tally.over_budget);
            reg.add("eligibility.frequency_capped", tally.frequency_capped);
            reg.add("eligibility.targeting_mismatch", tally.targeting_mismatch);
            reg.add("auction.won", tally.won);
            reg.add("auction.lost_to_background", tally.lost_to_background);
            reg.add("auction.unfilled", tally.unfilled);
            reg.add("delivery.cap_rejections", tally.cap_rejections);
            reg.add("treads.observed", tally.treads_observed);
            reg.add("index.candidates", tally.index_candidates);
            reg.add("index.pruned", tally.index_pruned);
            reg.add("targeting.compiled_evals", tally.compiled_evals);
            reg.merge_histogram("auction.eligible_bids", &eligible_hist);
            reg.merge_histogram("index.candidate_set_size", &candidate_hist);
            reg.observe_ns("phase.auction_ns", auction_ns);
            reg.observe_ns("phase.delivery_ns", delivery_ns);
            batch.flight_dropped = flight.dropped();
            batch.flight = flight.drain();
        }
        Ok(batch)
    }

    /// Skips all of this shard's browsing events with `at < tick_end`
    /// without executing them, returning an exact inventory of the work
    /// abandoned. Used by the supervisor when a shard tick exhausts its
    /// retry budget: the cursor must still advance (or the events would
    /// replay next tick at the wrong time) but nothing else may move.
    ///
    /// `seq`, RNGs, frequency caps, and extension logs are deliberately
    /// untouched. Skipped events are never merged, and every later event
    /// has a strictly later `at`, so reusing the skipped events' sequence
    /// numbers cannot collide in the `(at, user, user_seq)` merge key.
    pub fn skip_tick(&mut self, sites: &SiteRegistry, tick_end: SimTime) -> LostWork {
        let mut lost = LostWork {
            shard: self.index,
            ..LostWork::default()
        };
        for user in &mut self.users {
            while user.cursor < user.events.len() {
                let BrowsingEvent::PageView { site, at, .. } = user.events[user.cursor];
                if at >= tick_end {
                    break;
                }
                user.cursor += 1;
                // Unknown sites are skipped without counting, exactly as
                // `run_tick` skips them without simulating.
                let site = match sites.get(site) {
                    Some(s) => s,
                    None => continue,
                };
                lost.page_views += 1;
                lost.pixel_fires += site.pixels.len() as u64;
                lost.opportunities += u64::from(site.ad_slots_per_view);
            }
        }
        lost
    }

    /// This shard's index within the engine.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Freezes the shard's replayable state into a [`ShardCheckpoint`].
    ///
    /// Browsing schedules are *not* captured — they are a pure function of
    /// `(seed, user, sites, session)` and are regenerated by the resuming
    /// host; only the cursor into them is state.
    pub fn export_cursors(&self) -> ShardCheckpoint {
        ShardCheckpoint {
            index: self.index as u64,
            users: self
                .users
                .iter()
                .map(|u| UserCursor {
                    user: u.id,
                    rng: u.rng.state(),
                    cursor: u.cursor as u64,
                    seq: u.seq,
                    fseq: u.fseq,
                })
                .collect(),
            freq: self.freq.entries(),
            extensions: self
                .extensions
                .iter()
                .map(|(&user, log)| ExtensionSnapshot {
                    user,
                    observations: log.observations().to_vec(),
                })
                .collect(),
        }
    }

    /// Restores the replayable state frozen by [`Self::export_cursors`]
    /// into a freshly built shard (same users, same order, same seed).
    ///
    /// Fails without mutating anything if the checkpoint does not describe
    /// this shard: wrong index, wrong user count, or a positional user
    /// mismatch (shard user assignment is deterministic, so any of these
    /// means the host was configured differently than the checkpointed
    /// run).
    pub fn restore_cursors(&mut self, cp: &ShardCheckpoint) -> adsim_types::Result<()> {
        if cp.index != self.index as u64 {
            return Err(adsim_types::Error::invalid(format!(
                "checkpoint is for shard {}, not shard {}",
                cp.index, self.index
            )));
        }
        if cp.users.len() != self.users.len() {
            return Err(adsim_types::Error::invalid(format!(
                "checkpoint has {} users for shard {}, host shard has {}",
                cp.users.len(),
                self.index,
                self.users.len()
            )));
        }
        for (user, frozen) in self.users.iter().zip(&cp.users) {
            if user.id != frozen.user {
                return Err(adsim_types::Error::invalid(format!(
                    "checkpoint user {} does not match host shard user {}",
                    frozen.user, user.id
                )));
            }
            if frozen.cursor as usize > user.events.len() {
                return Err(adsim_types::Error::invalid(format!(
                    "checkpoint cursor {} exceeds user {}'s schedule length {}",
                    frozen.cursor,
                    user.id,
                    user.events.len()
                )));
            }
        }
        if cp.extensions.len() != self.extensions.len()
            || cp
                .extensions
                .iter()
                .any(|e| !self.extensions.contains_key(&e.user))
        {
            return Err(adsim_types::Error::invalid(format!(
                "checkpoint extension-user set does not match host shard {}",
                self.index
            )));
        }
        for (user, frozen) in self.users.iter_mut().zip(&cp.users) {
            user.rng = StdRng::restore(frozen.rng);
            user.cursor = frozen.cursor as usize;
            user.seq = frozen.seq;
            user.fseq = frozen.fseq;
        }
        self.freq.restore_entries(&cp.freq);
        self.extensions = cp
            .extensions
            .iter()
            .map(|e| {
                (
                    e.user,
                    ExtensionLog::from_parts(Some(e.user), e.observations.clone()),
                )
            })
            .collect();
        Ok(())
    }

    /// Consumes the shard, yielding its users' extension logs.
    pub fn into_extensions(self) -> BTreeMap<UserId, ExtensionLog> {
        self.extensions
    }
}
