//! Timestamped events emitted by shard threads.
//!
//! Shards never mutate shared platform state. Everything with a global
//! effect — a pixel fire that grows a visitor audience, a won auction that
//! charges a campaign — is recorded as a [`ShardEvent`] and folded into the
//! platform later, in the canonical order defined by [`ShardEvent::key`].

use adplatform::delivery::PendingImpression;
use adsim_types::{PixelId, SimTime, UserId};
use serde::{Deserialize, Serialize};

/// One globally-visible effect produced inside a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardEvent {
    /// A user loaded a page carrying a tracking pixel.
    PixelFire {
        /// Simulated instant of the page view.
        at: SimTime,
        /// The browsing user.
        user: UserId,
        /// The user's event sequence number (see [`ShardEvent::key`]).
        user_seq: u64,
        /// The pixel that fired.
        pixel: PixelId,
    },
    /// An auction was won; the impression must be billed and logged.
    Impression {
        /// Simulated instant of the impression.
        at: SimTime,
        /// The viewing user.
        user: UserId,
        /// The user's event sequence number (see [`ShardEvent::key`]).
        user_seq: u64,
        /// Everything needed to charge and log the impression.
        pending: PendingImpression,
    },
}

impl ShardEvent {
    /// The canonical merge key: `(at, user, user_seq)`.
    ///
    /// `user_seq` is a per-user counter incremented for every event the
    /// user produces, so the key is unique per event and — because every
    /// component is a function of the *user's* own deterministic stream —
    /// identical no matter which shard (or how many shards) produced it.
    /// Sorting any partition of a tick's events by this key therefore
    /// yields one canonical order.
    pub fn key(&self) -> (SimTime, UserId, u64) {
        match *self {
            ShardEvent::PixelFire {
                at, user, user_seq, ..
            }
            | ShardEvent::Impression {
                at, user, user_seq, ..
            } => (at, user, user_seq),
        }
    }

    /// The user who produced the event.
    pub fn user(&self) -> UserId {
        self.key().1
    }

    /// The simulated instant of the event.
    pub fn at(&self) -> SimTime {
        self.key().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsim_types::{AccountId, AdId, CampaignId, Money};

    fn fire(at: u64, user: u64, seq: u64) -> ShardEvent {
        ShardEvent::PixelFire {
            at: SimTime(at),
            user: UserId(user),
            user_seq: seq,
            pixel: PixelId(1),
        }
    }

    #[test]
    fn key_orders_time_then_user_then_seq() {
        let early = fire(1, 9, 0);
        let late_small_user = fire(2, 1, 5);
        let late_big_user = fire(2, 2, 0);
        let mut events = vec![late_big_user, late_small_user, early];
        events.sort_by_key(ShardEvent::key);
        assert_eq!(events, vec![early, late_small_user, late_big_user]);
    }

    #[test]
    fn impression_and_pixel_share_one_key_space() {
        let imp = ShardEvent::Impression {
            at: SimTime(5),
            user: UserId(3),
            user_seq: 2,
            pending: PendingImpression {
                ad: AdId(1),
                campaign: CampaignId(1),
                account: AccountId(1),
                user: UserId(3),
                at: SimTime(5),
                clearing_cpm: Money::dollars(1),
                spec_digest: 0,
            },
        };
        assert_eq!(imp.key(), (SimTime(5), UserId(3), 2));
        assert!(fire(5, 3, 1).key() < imp.key());
    }
}
