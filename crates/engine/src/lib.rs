//! `treads-engine`: sharded, deterministic parallel simulation engine.
//!
//! The single-threaded driver ([`websim::SessionSchedule::drive`])
//! replays a global time-sorted event list against one mutable
//! [`adplatform::Platform`]; fine for thousands of users, hopeless for a
//! million. This crate runs the same simulation **sharded**: users are
//! partitioned across worker threads ([`treads_workload::ShardPlan`]),
//! each shard generates and browses its users' sessions in parallel, and
//! the shards' effects are folded back into the platform in a canonical
//! order — so any shard count produces **bit-identical** invoices, ad
//! reports, impression logs, and Tread reveals.
//!
//! Determinism rests on three rules (see DESIGN.md "Engine architecture"):
//!
//! 1. **Per-user randomness.** Every user draws sessions from substream
//!    `session-user-{id}` and auction randomness from
//!    `engine-user-{id}` of the one master seed — never from a shared
//!    stream whose interleaving would depend on scheduling.
//! 2. **Bulk-synchronous ticks.** Mutable global state (campaign budgets,
//!    pixel/visitor audiences) is frozen at tick start; effects produced
//!    during a tick apply at the tick boundary, so every shard — and every
//!    shard count — sees the same platform for the same tick.
//! 3. **Canonical merge order.** Batched events sort by
//!    `(at, user, user_seq)` — a key computed entirely from user-owned
//!    state — before they touch the platform, making the merge invariant
//!    to how users were partitioned.
//!
//! The same three rules are what make the engine **supervisable** (see
//! DESIGN.md "Failure model & recovery"): because a shard only mutates
//! state it owns and only reads frozen state, a crashed shard tick can be
//! re-executed from its tick-start snapshot with no cross-shard
//! coordination ([`Engine::run_resilient`]), and a tick boundary is a
//! consistent cut the whole run can be checkpointed at and resumed from
//! ([`Engine::resume_from`]) — byte-identically in both cases.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod merge;
pub mod shard;

pub use engine::{
    fold_tick_events, Engine, EngineConfig, EngineOutcome, EngineReport, ResilienceOptions,
    ResilientOutcome, TickFold, DAY_MS,
};
pub use event::ShardEvent;
pub use merge::{merge_batches, merge_batches_lossy, MergeError};
pub use shard::{CrashPoint, CrashSignal, ShardBatch, ShardState, TickProbe};
// The resilience substrate (fault plans, checkpoints), re-exported so
// engine callers can schedule faults and resume runs without depending on
// the crate directly.
pub use treads_resilience as resilience;
pub use treads_resilience::{EngineCheckpoint, FaultPlan, FaultReport};
// The observability substrate, re-exported so engine callers can name
// `Telemetry` and friends without depending on the crate directly.
pub use treads_telemetry as telemetry;
pub use treads_telemetry::Telemetry;

#[cfg(test)]
mod tests {
    use super::*;
    use adplatform::attributes::{AttributeCatalog, AttributeSource};
    use adplatform::auction::AuctionConfig;
    use adplatform::campaign::AdCreative;
    use adplatform::profile::Gender;
    use adplatform::targeting::{TargetingExpr, TargetingSpec};
    use adplatform::{Platform, PlatformConfig};
    use adsim_types::{Money, UserId};
    use std::collections::BTreeSet;
    use websim::{SessionConfig, SiteRegistry};

    /// A small platform: one advertiser, one everyone-targeted campaign
    /// with ample budget, `n` users, two sites (one carrying a pixel).
    fn scenario(n: u64) -> (Platform, SiteRegistry, Vec<UserId>, adsim_types::CampaignId) {
        let mut catalog = AttributeCatalog::new();
        catalog.register("Interest: coffee", AttributeSource::Platform, None, 0.3);
        let mut p = Platform::new(
            PlatformConfig {
                auction: AuctionConfig {
                    competitor_rate: 0.0,
                    ..AuctionConfig::default()
                },
                frequency_cap: 1_000,
                ..PlatformConfig::default()
            },
            catalog,
        );
        let adv = p.register_advertiser("adv");
        let acct = p.open_account(adv).expect("account");
        let camp = p
            .create_campaign(acct, "c", Money::dollars(5), None)
            .expect("campaign");
        p.submit_ad(
            camp,
            AdCreative::text("Hello", "World"),
            TargetingSpec::including(TargetingExpr::Everyone),
        )
        .expect("ad");
        let users: Vec<UserId> = (0..n)
            .map(|i| p.register_user(20 + (i % 50) as u8, Gender::Female, "Ohio", "43004"))
            .collect();
        let mut sites = SiteRegistry::new();
        sites.create("feed.example", 1);
        let with_pixel = sites.create("shop.example", 1);
        let pixel = p.create_pixel(acct, "shop pixel").expect("pixel");
        sites.embed_pixel(with_pixel, pixel);
        (p, sites, users, camp)
    }

    fn run(shards: usize, n: u64) -> (Platform, EngineOutcome) {
        let (mut p, sites, users, _camp) = scenario(n);
        let engine = Engine::new(EngineConfig {
            shards,
            session: SessionConfig {
                views_per_user_per_day: 4.0,
                days: 3,
            },
            seed: 7,
            ..EngineConfig::default()
        });
        let extension_users: BTreeSet<UserId> = users.iter().copied().collect();
        let outcome = engine.run(&mut p, &sites, &users, &extension_users);
        (p, outcome)
    }

    #[test]
    fn engine_delivers_and_counts() {
        let (p, outcome) = run(1, 20);
        assert_eq!(outcome.report.users, 20);
        assert_eq!(outcome.report.ticks, 3);
        assert_eq!(outcome.report.page_views, 20 * 4 * 3);
        assert_eq!(outcome.report.opportunities, outcome.report.page_views);
        assert!(outcome.report.impressions > 0);
        assert_eq!(outcome.report.impressions, p.stats.won);
        assert_eq!(p.log.all().len() as u64, outcome.report.impressions);
        // Extension logs captured every delivered impression.
        let observed: u64 = outcome.extensions.values().map(|l| l.len() as u64).sum();
        assert_eq!(observed, outcome.report.impressions);
    }

    #[test]
    fn shard_counts_agree_exactly() {
        let (p1, o1) = run(1, 30);
        for shards in [2, 3, 8] {
            let (pn, on) = run(shards, 30);
            assert_eq!(o1.report.page_views, on.report.page_views);
            assert_eq!(o1.report.impressions, on.report.impressions);
            assert_eq!(o1.report.pixel_fires, on.report.pixel_fires);
            assert_eq!(p1.stats, pn.stats);
            // The impression log is byte-identical, order included.
            assert_eq!(p1.log.all(), pn.log.all());
            // And so are the observed-ad streams.
            for (u, log) in &o1.extensions {
                assert_eq!(log.observations(), on.extensions[u].observations());
            }
        }
    }

    #[test]
    fn instrumentation_does_not_perturb_the_simulation() {
        // The same scenario through run() and run_instrumented() must
        // mutate the platform identically: telemetry observes, it does
        // not perturb (no RNG draws, no state feedback).
        let (mut p_plain, sites, users, _camp) = scenario(25);
        let (mut p_inst, _, _, _) = scenario(25);
        let config = EngineConfig {
            shards: 3,
            session: SessionConfig {
                views_per_user_per_day: 4.0,
                days: 3,
            },
            seed: 7,
            ..EngineConfig::default()
        };
        let extension_users: BTreeSet<UserId> = users.iter().copied().collect();
        let plain = Engine::new(config.clone()).run(&mut p_plain, &sites, &users, &extension_users);
        let (inst, telemetry) =
            Engine::new(config).run_instrumented(&mut p_inst, &sites, &users, &extension_users);
        assert_eq!(plain.report, inst.report);
        assert_eq!(p_plain.stats, p_inst.stats);
        assert_eq!(p_plain.log.all(), p_inst.log.all());
        for (u, log) in &plain.extensions {
            assert_eq!(log.observations(), inst.extensions[u].observations());
        }
        // The instrumented run actually recorded (when compiled in).
        if cfg!(feature = "telemetry") {
            assert_eq!(
                telemetry.metrics().counter("engine.impressions"),
                inst.report.impressions
            );
            assert_eq!(telemetry.metrics().counter("engine.ticks"), 3);
            assert_eq!(
                telemetry.metrics().counter("auction.won"),
                inst.report.impressions
            );
            assert!(telemetry.metrics().histogram("engine.tick_ns").is_some());
            assert!(telemetry.metrics().histogram("phase.auction_ns").is_some());
            assert!(!telemetry.flight().is_empty());
        } else {
            assert!(telemetry.metrics().is_empty());
        }
    }

    #[test]
    fn budget_is_respected_at_tick_granularity() {
        // A tiny budget: the engine may overshoot within one tick (budgets
        // freeze at tick start) but never keeps spending in later ticks.
        let (mut p, sites, users, camp) = scenario(10);
        // Shrink the campaign budget to two $1-CPM impressions ($0.002).
        p.campaigns.campaign_mut(camp).expect("campaign").budget = Some(Money::micros(2_000));
        let engine = Engine::new(EngineConfig {
            shards: 4,
            session: SessionConfig {
                views_per_user_per_day: 2.0,
                days: 10,
            },
            seed: 11,
            ..EngineConfig::default()
        });
        let outcome = engine.run(&mut p, &sites, &users, &BTreeSet::new());
        // The budget was actually reached…
        assert!(p.billing.campaign_spend(camp) >= Money::micros(2_000));
        // …and delivery then stopped: the budget crosses during day 2 (the
        // day-2 snapshot still showed headroom), so days 3..10 serve
        // nothing and most opportunities go undelivered.
        assert!(outcome.report.impressions > 0);
        assert!(outcome.report.impressions < outcome.report.opportunities / 2);
    }
}
