//! The tick loop: snapshot → parallel shards → deterministic merge.

use std::collections::{BTreeMap, BTreeSet};

use adplatform::Platform;
use adsim_types::{CampaignId, SimTime, UserId};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use treads_telemetry::{span, FlightEvent, FlightKind, Telemetry};
use treads_workload::ShardPlan;
use websim::{ExtensionLog, SessionConfig, SiteRegistry};

use crate::event::ShardEvent;
use crate::merge::merge_batches;
use crate::shard::{ShardBatch, ShardState, TickProbe};

/// Milliseconds per simulated day.
pub const DAY_MS: u64 = 86_400_000;

/// Engine parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Number of shards (and worker threads) to run.
    pub shards: usize,
    /// Browsing-session shape (views per user per day, horizon in days).
    pub session: SessionConfig,
    /// Tick length in simulated milliseconds. Budget snapshots and
    /// audience updates refresh at tick boundaries; defaults to one day.
    pub tick_ms: u64,
    /// Master seed; every user derives private substreams from it.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            session: SessionConfig::default(),
            tick_ms: DAY_MS,
            seed: 42,
        }
    }
}

/// Counters from one engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineReport {
    /// Users simulated.
    pub users: u64,
    /// Shards the run used.
    pub shards: u64,
    /// Ticks executed.
    pub ticks: u64,
    /// Page views processed.
    pub page_views: u64,
    /// Pixel fires applied to the platform.
    pub pixel_fires: u64,
    /// Impression opportunities auctioned.
    pub opportunities: u64,
    /// Impressions delivered (auctions won by advertiser ads).
    pub impressions: u64,
}

/// Everything an engine run produces beyond the platform mutations.
pub struct EngineOutcome {
    /// Run counters.
    pub report: EngineReport,
    /// Extension logs of the users who ran the Treads extension.
    pub extensions: BTreeMap<UserId, ExtensionLog>,
}

/// The sharded, deterministic parallel simulation engine.
///
/// Execution is bulk-synchronous: each tick freezes a
/// [`adplatform::billing::BudgetSnapshot`], runs every shard's browsing
/// events for the tick on its own thread against the read-only platform,
/// then merges the shards' event batches in the canonical
/// `(at, user, user_seq)` order and folds them into the platform. Because
/// every input a decision can observe is either frozen per tick or owned
/// per user, the folded state — billing, frequency caps, impression log,
/// audiences — is bit-identical for every shard count.
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// An engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        assert!(config.shards > 0, "engine needs at least one shard");
        assert!(config.tick_ms > 0, "engine needs a positive tick length");
        Self { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Simulates `users` browsing `sites` for `config.session.days` days,
    /// auctioning every ad slot they see.
    ///
    /// `extension_users` are the users running the Treads browser
    /// extension; their observed ads come back in the outcome for Tread
    /// decoding. The platform's clock is advanced tick by tick and ends at
    /// the horizon.
    pub fn run(
        &self,
        platform: &mut Platform,
        sites: &SiteRegistry,
        users: &[UserId],
        extension_users: &BTreeSet<UserId>,
    ) -> EngineOutcome {
        let mut telemetry = Telemetry::disabled();
        self.run_with_telemetry(platform, sites, users, extension_users, &mut telemetry)
    }

    /// [`Engine::run`] with full observability: returns the outcome plus a
    /// [`Telemetry`] snapshot holding per-phase wall-time histograms
    /// (`phase.session_gen_ns`, `phase.auction_ns`, `phase.delivery_ns`,
    /// `phase.merge_ns`, `phase.apply_ns`), per-tick latency
    /// (`engine.tick_ns`), deterministic counters, and the flight journal.
    ///
    /// Instrumentation never draws randomness or feeds back into the
    /// simulation, so instrumented and uninstrumented runs produce
    /// bit-identical platform state; and because shard metric registries
    /// merge by addition in shard-index order, the merged counters and
    /// value histograms are also identical across shard counts (only the
    /// `*_ns` wall-time histograms vary run to run).
    pub fn run_instrumented(
        &self,
        platform: &mut Platform,
        sites: &SiteRegistry,
        users: &[UserId],
        extension_users: &BTreeSet<UserId>,
    ) -> (EngineOutcome, Telemetry) {
        let mut telemetry = Telemetry::new();
        let outcome =
            self.run_with_telemetry(platform, sites, users, extension_users, &mut telemetry);
        (outcome, telemetry)
    }

    /// The engine core: runs the simulation, recording into the caller's
    /// `telemetry` handle (which may be disabled — [`Engine::run`] passes a
    /// disabled one, making instrumentation overhead measurable in a
    /// single binary).
    pub fn run_with_telemetry(
        &self,
        platform: &mut Platform,
        sites: &SiteRegistry,
        users: &[UserId],
        extension_users: &BTreeSet<UserId>,
        telemetry: &mut Telemetry,
    ) -> EngineOutcome {
        let plan = ShardPlan::partition(users, self.config.shards);
        let site_ids = sites.ids();
        let frequency_cap = platform.config.frequency_cap;
        let seed = self.config.seed;
        let session = &self.config.session;

        // Shard construction (session generation) is itself per-user
        // deterministic, so it parallelizes the same way ticks do.
        let mut shards: Vec<ShardState> = span!(telemetry, "phase.session_gen_ns", {
            crossbeam::scope(|s| {
                let handles: Vec<_> = plan
                    .shards()
                    .iter()
                    .enumerate()
                    .map(|(index, shard_users)| {
                        let site_ids = &site_ids;
                        s.spawn(move |_| {
                            ShardState::new(
                                index,
                                shard_users,
                                extension_users,
                                site_ids,
                                session,
                                seed,
                                frequency_cap,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard construction does not panic"))
                    .collect()
            })
            .expect("engine scope")
        });

        let horizon = self.config.session.days * DAY_MS;
        let mut report = EngineReport {
            users: users.len() as u64,
            shards: self.config.shards as u64,
            ..EngineReport::default()
        };

        let probe = TickProbe {
            record: telemetry.is_enabled(),
            flight_capacity: telemetry.flight_capacity(),
        };
        // Campaigns already seen crossing their budget, so exhaustion is
        // journaled once per campaign, at the tick whose fold crossed it.
        let mut exhausted: BTreeSet<CampaignId> = BTreeSet::new();

        let mut tick_start = 0u64;
        while tick_start < horizon {
            let tick_timer = telemetry.span();
            let tick_end = (tick_start + self.config.tick_ms).min(horizon);
            let budget = platform.billing.budget_snapshot();
            let collected: Mutex<Vec<ShardBatch>> = Mutex::new(Vec::new());
            {
                let platform: &Platform = platform;
                let budget = &budget;
                let collected = &collected;
                crossbeam::scope(|s| {
                    for shard in shards.iter_mut() {
                        s.spawn(move |_| {
                            let batch =
                                shard.run_tick(platform, budget, sites, SimTime(tick_end), probe);
                            collected.lock().push(batch);
                        });
                    }
                })
                .expect("engine tick scope");
            }
            let mut batches = collected.into_inner();
            // Threads push batches in completion order; shard-index order
            // is the canonical one for every per-tick fold below.
            batches.sort_by_key(|b| b.shard);

            let mut tick_flight: Vec<FlightEvent> = Vec::new();
            let mut shard_flight_dropped = 0u64;
            for batch in &batches {
                report.page_views += batch.page_views;
                report.opportunities += batch.stats.opportunities;
                platform.stats.opportunities += batch.stats.opportunities;
                platform.stats.won += batch.stats.won;
                platform.stats.lost_to_background += batch.stats.lost_to_background;
                platform.stats.unfilled += batch.stats.unfilled;
                telemetry.merge_registry(&batch.telemetry);
                tick_flight.extend(batch.flight.iter().copied());
                shard_flight_dropped += batch.flight_dropped;
            }
            // Flight events sort by the same canonical key as the event
            // merge, so journal content is shard-count-invariant (as long
            // as no shard's per-tick ring overflowed).
            tick_flight.sort_by_key(FlightEvent::key);
            telemetry.append_events(tick_flight);
            if shard_flight_dropped > 0 {
                telemetry.count("flight.dropped_in_shards", shard_flight_dropped);
            }

            let merged = span!(telemetry, "phase.merge_ns", {
                merge_batches(batches.into_iter().map(|b| b.events).collect())
            });
            let apply_timer = telemetry.span();
            let recording = telemetry.is_enabled();
            let mut charged_campaigns: BTreeSet<CampaignId> = BTreeSet::new();
            let mut pixel_fires = 0u64;
            let mut impressions = 0u64;
            for event in merged {
                match event {
                    ShardEvent::PixelFire {
                        at, user, pixel, ..
                    } => {
                        if platform.apply_pixel_fire(user, pixel, at).is_ok() {
                            report.pixel_fires += 1;
                            pixel_fires += 1;
                        }
                    }
                    ShardEvent::Impression {
                        user_seq, pending, ..
                    } => {
                        let price = platform.apply_impression(&pending);
                        report.impressions += 1;
                        impressions += 1;
                        if recording {
                            charged_campaigns.insert(pending.campaign);
                            telemetry.record_event(FlightEvent {
                                at: pending.at,
                                user: pending.user,
                                seq: user_seq,
                                kind: FlightKind::ImpressionBilled {
                                    ad: pending.ad.raw(),
                                    campaign: pending.campaign.raw(),
                                    account: pending.account.raw(),
                                    price_micros: price.as_micros(),
                                },
                            });
                        }
                    }
                }
            }
            telemetry.count("engine.pixel_fires", pixel_fires);
            telemetry.count("engine.impressions", impressions);
            telemetry.end_span("phase.apply_ns", apply_timer);

            // A campaign can only cross its budget in a tick that charged
            // it, so checking the charged set covers every transition.
            if telemetry.is_enabled() {
                for campaign in charged_campaigns {
                    if exhausted.contains(&campaign) {
                        continue;
                    }
                    let budget_limit = match platform.campaigns.campaign(campaign) {
                        Ok(c) => c.budget,
                        Err(_) => continue,
                    };
                    if !platform.billing.within_budget(campaign, budget_limit) {
                        exhausted.insert(campaign);
                        telemetry.count("delivery.budget_exhaustions", 1);
                        telemetry.record_event(FlightEvent {
                            at: SimTime(tick_end),
                            user: UserId(0),
                            seq: campaign.raw(),
                            kind: FlightKind::BudgetExhausted {
                                campaign: campaign.raw(),
                            },
                        });
                    }
                }
            }

            platform.clock.advance_to(SimTime(tick_end));
            report.ticks += 1;
            telemetry.count("engine.ticks", 1);
            tick_start = tick_end;
            telemetry.end_span("engine.tick_ns", tick_timer);
        }

        let mut extensions = BTreeMap::new();
        for shard in shards {
            extensions.extend(shard.into_extensions());
        }
        EngineOutcome { report, extensions }
    }
}
