//! The tick loop: snapshot → parallel shards → deterministic merge —
//! supervised for fault injection, crash recovery, and checkpoint/resume.

use std::collections::{BTreeMap, BTreeSet};

use adplatform::Platform;
use adsim_types::{CampaignId, Error, SimTime, UserId};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use treads_resilience::checkpoint::{
    ConfigEcho, EngineCheckpoint, ReportCounters, ShardCheckpoint,
};
use treads_resilience::delta::{CheckpointFrame, DeltaHead, DeltaTracker, ShardDeltaSource};
use treads_resilience::ledger::{receipts_from_impressions, ReceiptLedger};
use treads_resilience::{FaultPlan, FaultReport};
use treads_telemetry::{
    span, FlightEvent, FlightKind, RequestTrace, Telemetry, TraceEventKind, TraceId, SHED_SEQ,
};
use treads_workload::ShardPlan;
use websim::{ExtensionLog, SessionConfig, SiteRegistry};

use crate::event::ShardEvent;
use crate::merge::merge_batches;
use crate::shard::{CrashPoint, CrashSignal, ShardBatch, ShardState, TickProbe};

/// Milliseconds per simulated day.
pub const DAY_MS: u64 = 86_400_000;

/// Engine parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Number of shards (and worker threads) to run.
    pub shards: usize,
    /// Browsing-session shape (views per user per day, horizon in days).
    pub session: SessionConfig,
    /// Tick length in simulated milliseconds. Budget snapshots and
    /// audience updates refresh at tick boundaries; defaults to one day.
    pub tick_ms: u64,
    /// Master seed; every user derives private substreams from it.
    pub seed: u64,
    /// Overlap tick `t+1`'s session generation with tick `t`'s
    /// merge/apply on the shard worker threads. Session generation is
    /// pure in `(user, seed, day)` and the merge never reads browsing
    /// buffers, so the overlap is a wall-clock optimization only: output
    /// is byte-identical either way.
    pub pipeline_sessions: bool,
    /// Emit a signed [`ReceiptLedger`] delivery receipt for every folded
    /// impression. Receipts are appended at the single-writer fold, so
    /// chains are byte-identical across shard counts; chain heads are
    /// committed into every checkpoint frame taken.
    pub ledger: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            session: SessionConfig::default(),
            tick_ms: DAY_MS,
            seed: 42,
            pipeline_sessions: true,
            ledger: true,
        }
    }
}

/// Counters from one engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineReport {
    /// Users simulated.
    pub users: u64,
    /// Shards the run used.
    pub shards: u64,
    /// Ticks executed.
    pub ticks: u64,
    /// Page views processed.
    pub page_views: u64,
    /// Pixel fires applied to the platform.
    pub pixel_fires: u64,
    /// Impression opportunities auctioned.
    pub opportunities: u64,
    /// Impressions delivered (auctions won by advertiser ads).
    pub impressions: u64,
}

/// Everything an engine run produces beyond the platform mutations.
#[derive(Debug)]
pub struct EngineOutcome {
    /// Run counters.
    pub report: EngineReport,
    /// Extension logs of the users who ran the Treads extension.
    pub extensions: BTreeMap<UserId, ExtensionLog>,
    /// The hash-chained delivery-receipt ledger the fold emitted
    /// (`None` when [`EngineConfig::ledger`] is off).
    pub ledger: Option<ReceiptLedger>,
}

/// Supervisor knobs for a resilient run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilienceOptions {
    /// The fault schedule to inject (empty by default).
    pub faults: FaultPlan,
    /// Re-execution attempts the supervisor grants a crashed shard tick
    /// before abandoning its work as [`treads_resilience::LostWork`].
    pub max_retries_per_shard_tick: u32,
    /// Take an [`EngineCheckpoint`] after every N completed ticks
    /// (0 = never).
    pub checkpoint_every_ticks: u64,
    /// When > 0, cadence checkpoints are emitted as incremental
    /// [`CheckpointFrame`]s instead of full [`EngineCheckpoint`]s: every
    /// `delta_base_every`-th frame is a full base, the rest are
    /// [`treads_resilience::DeltaFrame`]s carrying only the slots mutated
    /// since the previous frame (see [`ResilientOutcome::frames`]).
    /// 0 keeps the legacy full-checkpoint behavior.
    pub delta_base_every: u64,
}

impl Default for ResilienceOptions {
    fn default() -> Self {
        Self {
            faults: FaultPlan::new(),
            max_retries_per_shard_tick: 3,
            checkpoint_every_ticks: 0,
            delta_base_every: 0,
        }
    }
}

/// An [`EngineOutcome`] plus the supervisor's fault accounting and any
/// checkpoints taken along the way.
#[derive(Debug)]
pub struct ResilientOutcome {
    /// The simulation outcome.
    pub outcome: EngineOutcome,
    /// What was injected, recovered, and lost.
    pub faults: FaultReport,
    /// Checkpoints taken at tick boundaries, in tick order (legacy
    /// full-checkpoint mode: [`ResilienceOptions::delta_base_every`]` ==
    /// 0`; empty otherwise).
    pub checkpoints: Vec<EngineCheckpoint>,
    /// Incremental checkpoint frames, in tick order (delta mode:
    /// [`ResilienceOptions::delta_base_every`]` > 0`; empty otherwise).
    /// Fold any prefix ending at frame `i` with
    /// [`treads_resilience::fold_frames`] to recover the full checkpoint
    /// at that tick, byte-identical to what legacy mode would have taken.
    pub frames: Vec<CheckpointFrame>,
}

/// Tally from folding one tick's merged events into the platform.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickFold {
    /// Pixel fires successfully applied.
    pub pixel_fires: u64,
    /// Impressions billed and logged.
    pub impressions: u64,
}

/// Folds one tick's canonically-merged events into the platform: the
/// single writer step of the bulk-synchronous tick.
///
/// Applies every event in order (pixel fires register audience membership,
/// impressions charge billing / bump global frequency counters / append to
/// the impression log), journals `ImpressionBilled` flight events and
/// first-crossing `BudgetExhausted` transitions into `telemetry`
/// (`exhausted` carries the already-journaled campaign set across ticks),
/// advances the platform clock to `tick_end`, and counts
/// `engine.pixel_fires` / `engine.impressions` / `engine.ticks`.
///
/// This is the **only** code path that mutates shared platform state at a
/// tick boundary; the batch engine's supervisor and `treads-serving`'s
/// applier both fold through it, which is what makes a serving run with a
/// fixed arrival schedule byte-identical to the batch engine fed the same
/// opportunity stream.
///
/// When `ledger` is supplied, every applied impression also appends a
/// signed [`treads_resilience::DeliveryReceipt`] — in this same canonical
/// merge order, so receipt chains are byte-identical across shard counts
/// and between the batch engine and the serving applier.
pub fn fold_tick_events(
    platform: &mut Platform,
    merged: Vec<ShardEvent>,
    tick_end: SimTime,
    telemetry: &mut Telemetry,
    exhausted: &mut BTreeSet<CampaignId>,
    mut ledger: Option<&mut ReceiptLedger>,
) -> TickFold {
    let recording = telemetry.is_enabled();
    let mut charged_campaigns: BTreeSet<CampaignId> = BTreeSet::new();
    let mut fold = TickFold::default();
    if let Some(ledger) = ledger.as_deref_mut() {
        // Event count bounds the tick's impressions, so no append below
        // reallocates a chain mid-fold.
        ledger.reserve(merged.len() as u64);
    }
    for event in merged {
        match event {
            ShardEvent::PixelFire {
                at, user, pixel, ..
            } => {
                if platform.apply_pixel_fire(user, pixel, at).is_ok() {
                    fold.pixel_fires += 1;
                }
            }
            ShardEvent::Impression {
                user_seq, pending, ..
            } => {
                let price = platform.apply_impression(&pending);
                fold.impressions += 1;
                if let Some(ledger) = ledger.as_deref_mut() {
                    ledger.append(
                        pending.user,
                        pending.ad,
                        pending.spec_digest,
                        pending.at,
                        price,
                    );
                }
                if recording {
                    charged_campaigns.insert(pending.campaign);
                    telemetry.record_event(FlightEvent {
                        at: pending.at,
                        user: pending.user,
                        seq: user_seq,
                        // The fold runs after the merge erased the page
                        // view's starting seq, so it cannot re-derive the
                        // request's trace id; see `FlightEvent::trace`.
                        trace: 0,
                        kind: FlightKind::ImpressionBilled {
                            ad: pending.ad.raw(),
                            campaign: pending.campaign.raw(),
                            account: pending.account.raw(),
                            price_micros: price.as_micros(),
                        },
                    });
                }
            }
        }
    }
    telemetry.count("engine.pixel_fires", fold.pixel_fires);
    telemetry.count("engine.impressions", fold.impressions);
    if ledger.is_some() {
        telemetry.count("ledger.receipts", fold.impressions);
    }

    // A campaign can only cross its budget in a tick that charged it, so
    // checking the charged set covers every transition.
    if recording {
        for campaign in charged_campaigns {
            if exhausted.contains(&campaign) {
                continue;
            }
            let budget_limit = match platform.campaigns.campaign(campaign) {
                Ok(c) => c.budget,
                Err(_) => continue,
            };
            if !platform.billing.within_budget(campaign, budget_limit) {
                exhausted.insert(campaign);
                telemetry.count("delivery.budget_exhaustions", 1);
                telemetry.record_event(FlightEvent {
                    at: tick_end,
                    user: UserId(0),
                    seq: campaign.raw(),
                    // Campaign-level: no single request caused it.
                    trace: 0,
                    kind: FlightKind::BudgetExhausted {
                        campaign: campaign.raw(),
                    },
                });
            }
        }
    }

    platform.clock.advance_to(tick_end);
    telemetry.count("engine.ticks", 1);
    fold
}

/// The sharded, deterministic parallel simulation engine.
///
/// Execution is bulk-synchronous: each tick freezes a
/// [`adplatform::billing::BudgetSnapshot`], runs every shard's browsing
/// events for the tick on its own thread against the read-only platform,
/// then merges the shards' event batches in the canonical
/// `(at, user, user_seq)` order and folds them into the platform. Because
/// every input a decision can observe is either frozen per tick or owned
/// per user, the folded state — billing, frequency caps, impression log,
/// audiences — is bit-identical for every shard count.
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// An engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        assert!(config.shards > 0, "engine needs at least one shard");
        assert!(config.tick_ms > 0, "engine needs a positive tick length");
        Self { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Simulates `users` browsing `sites` for `config.session.days` days,
    /// auctioning every ad slot they see.
    ///
    /// `extension_users` are the users running the Treads browser
    /// extension; their observed ads come back in the outcome for Tread
    /// decoding. The platform's clock is advanced tick by tick and ends at
    /// the horizon.
    pub fn run(
        &self,
        platform: &mut Platform,
        sites: &SiteRegistry,
        users: &[UserId],
        extension_users: &BTreeSet<UserId>,
    ) -> EngineOutcome {
        let mut telemetry = Telemetry::disabled();
        self.run_with_telemetry(platform, sites, users, extension_users, &mut telemetry)
    }

    /// [`Engine::run`] with full observability: returns the outcome plus a
    /// [`Telemetry`] snapshot holding per-phase wall-time histograms
    /// (`phase.session_gen_ns`, `phase.auction_ns`, `phase.delivery_ns`,
    /// `phase.merge_ns`, `phase.apply_ns`), per-tick latency
    /// (`engine.tick_ns`), deterministic counters, and the flight journal.
    ///
    /// Instrumentation never draws randomness or feeds back into the
    /// simulation, so instrumented and uninstrumented runs produce
    /// bit-identical platform state; and because shard metric registries
    /// merge by addition in shard-index order, the merged counters and
    /// value histograms are also identical across shard counts (only the
    /// `*_ns` wall-time histograms vary run to run).
    pub fn run_instrumented(
        &self,
        platform: &mut Platform,
        sites: &SiteRegistry,
        users: &[UserId],
        extension_users: &BTreeSet<UserId>,
    ) -> (EngineOutcome, Telemetry) {
        let mut telemetry = Telemetry::new();
        let outcome =
            self.run_with_telemetry(platform, sites, users, extension_users, &mut telemetry);
        (outcome, telemetry)
    }

    /// The fault-free engine core: runs the simulation, recording into the
    /// caller's `telemetry` handle (which may be disabled — [`Engine::run`]
    /// passes a disabled one, making instrumentation overhead measurable
    /// in a single binary).
    pub fn run_with_telemetry(
        &self,
        platform: &mut Platform,
        sites: &SiteRegistry,
        users: &[UserId],
        extension_users: &BTreeSet<UserId>,
        telemetry: &mut Telemetry,
    ) -> EngineOutcome {
        self.run_core(
            platform,
            sites,
            users,
            extension_users,
            telemetry,
            &ResilienceOptions::default(),
            None,
        )
        .expect("a fault-free, non-resumed run cannot fail")
        .outcome
    }

    /// Runs the simulation under the supervisor with `options`' fault
    /// schedule, retry budget, and checkpoint cadence.
    ///
    /// Recoverable faults (crashes within the retry budget, duplicated or
    /// delayed batches) leave the run **byte-identical** to a fault-free
    /// one; unrecoverable crashes degrade gracefully, with the abandoned
    /// work itemized exactly in the returned [`FaultReport`].
    pub fn run_resilient(
        &self,
        platform: &mut Platform,
        sites: &SiteRegistry,
        users: &[UserId],
        extension_users: &BTreeSet<UserId>,
        options: &ResilienceOptions,
    ) -> adsim_types::Result<ResilientOutcome> {
        let mut telemetry = Telemetry::disabled();
        self.run_core(
            platform,
            sites,
            users,
            extension_users,
            &mut telemetry,
            options,
            None,
        )
    }

    /// [`Engine::run_resilient`] recording into `telemetry` (adds the
    /// `faults.injected` / `faults.recovered` / `faults.unrecoverable` /
    /// `checkpoint.bytes` counters, all present — at zero — even in a
    /// fault-free run).
    pub fn run_resilient_with_telemetry(
        &self,
        platform: &mut Platform,
        sites: &SiteRegistry,
        users: &[UserId],
        extension_users: &BTreeSet<UserId>,
        options: &ResilienceOptions,
        telemetry: &mut Telemetry,
    ) -> adsim_types::Result<ResilientOutcome> {
        self.run_core(
            platform,
            sites,
            users,
            extension_users,
            telemetry,
            options,
            None,
        )
    }

    /// Resumes a checkpointed run on a **freshly constructed** host: the
    /// same engine config, the same deterministic setup (`platform` as the
    /// driver built it before the original run, `sites`, `users`,
    /// `extension_users`), plus the checkpoint. Produces output
    /// byte-identical to the uninterrupted run from which the checkpoint
    /// was taken.
    ///
    /// Fails with [`Error::InvalidInput`] — before mutating anything —
    /// if the checkpoint's [`ConfigEcho`] does not match this engine and
    /// user set.
    pub fn resume_from(
        &self,
        platform: &mut Platform,
        sites: &SiteRegistry,
        users: &[UserId],
        extension_users: &BTreeSet<UserId>,
        options: &ResilienceOptions,
        checkpoint: &EngineCheckpoint,
    ) -> adsim_types::Result<ResilientOutcome> {
        let mut telemetry = Telemetry::disabled();
        self.run_core(
            platform,
            sites,
            users,
            extension_users,
            &mut telemetry,
            options,
            Some(checkpoint),
        )
    }

    /// [`Engine::resume_from`] for delta mode: folds a frame chain (one
    /// full base plus any number of deltas, as produced in
    /// [`ResilientOutcome::frames`]) back into a full checkpoint and
    /// resumes from it. The fold verifies the chain discipline and each
    /// frame's state digest before anything is mutated; a chain whose
    /// dirty bookkeeping missed a mutated slot fails here with
    /// [`Error::InvalidInput`] instead of resuming silently wrong.
    pub fn resume_from_frames(
        &self,
        platform: &mut Platform,
        sites: &SiteRegistry,
        users: &[UserId],
        extension_users: &BTreeSet<UserId>,
        options: &ResilienceOptions,
        frames: &[CheckpointFrame],
    ) -> adsim_types::Result<ResilientOutcome> {
        let folded = treads_resilience::fold_frames(frames)
            .map_err(|e| Error::invalid(format!("invalid checkpoint frame chain: {e}")))?;
        let mut telemetry = Telemetry::disabled();
        self.run_core(
            platform,
            sites,
            users,
            extension_users,
            &mut telemetry,
            options,
            Some(&folded),
        )
    }

    /// The [`ConfigEcho`] this engine stamps into checkpoints.
    fn config_echo(&self, users: usize) -> ConfigEcho {
        ConfigEcho {
            shards: self.config.shards as u64,
            seed: self.config.seed,
            tick_ms: self.config.tick_ms,
            users: users as u64,
            days: self.config.session.days,
            views_bits: self.config.session.views_per_user_per_day.to_bits(),
        }
    }

    /// The supervised engine core. See the supervisor walk-through in
    /// ARCHITECTURE.md; in short, each tick:
    ///
    /// 1. snapshots any shard the fault plan schedules a crash for;
    /// 2. runs all shards in parallel, handing crash-scheduled ones their
    ///    attempt-0 [`CrashPoint`];
    /// 3. sequentially re-executes each crashed shard from its snapshot
    ///    (restore first — a crashed attempt leaves half-mutated state)
    ///    until it succeeds or the retry budget runs out, in which case the
    ///    snapshot is restored one last time and the tick's events are
    ///    skipped with exact [`treads_resilience::LostWork`] accounting;
    /// 4. injects scheduled duplicate/late batch deliveries, then cancels
    ///    them the way a real pipeline must: duplicates are dropped by
    ///    batch identity, late arrivals vanish under the canonical sort;
    /// 5. merges, folds, advances the clock, and (on cadence) checkpoints.
    #[allow(clippy::too_many_arguments)]
    fn run_core(
        &self,
        platform: &mut Platform,
        sites: &SiteRegistry,
        users: &[UserId],
        extension_users: &BTreeSet<UserId>,
        telemetry: &mut Telemetry,
        options: &ResilienceOptions,
        resume: Option<&EngineCheckpoint>,
    ) -> adsim_types::Result<ResilientOutcome> {
        let echo = self.config_echo(users.len());
        if let Some(cp) = resume {
            if cp.config != echo {
                return Err(Error::invalid(format!(
                    "checkpoint config {:?} does not match engine config {:?}",
                    cp.config, echo
                )));
            }
            if cp.shards.len() != self.config.shards {
                return Err(Error::invalid(format!(
                    "checkpoint has {} shard states, engine has {} shards",
                    cp.shards.len(),
                    self.config.shards
                )));
            }
        }
        let plan = ShardPlan::partition(users, self.config.shards);
        let site_ids = sites.ids();
        let frequency_cap = platform.config.frequency_cap;
        let seed = self.config.seed;
        let session = &self.config.session;

        // Shard construction (session generation) is itself per-user
        // deterministic, so it parallelizes the same way ticks do.
        let mut shards: Vec<ShardState> = span!(telemetry, "phase.session_gen_ns", {
            crossbeam::scope(|s| {
                let handles: Vec<_> = plan
                    .shards()
                    .iter()
                    .enumerate()
                    .map(|(index, shard_users)| {
                        let site_ids = &site_ids;
                        s.spawn(move |_| {
                            ShardState::new(
                                index,
                                shard_users,
                                extension_users,
                                site_ids,
                                session,
                                seed,
                                frequency_cap,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard construction does not panic"))
                    .collect()
            })
            .expect("engine scope")
        });

        let horizon = self.config.session.days * DAY_MS;
        let mut report = EngineReport {
            users: users.len() as u64,
            shards: self.config.shards as u64,
            ..EngineReport::default()
        };

        let probe = TickProbe {
            record: telemetry.is_enabled(),
            flight_capacity: telemetry.flight_capacity(),
            trace: telemetry.trace_config(),
            seed: self.config.seed,
        };
        // Campaigns already seen crossing their budget, so exhaustion is
        // journaled once per campaign, at the tick whose fold crossed it.
        let mut exhausted: BTreeSet<CampaignId> = BTreeSet::new();

        let mut fault_report = FaultReport::default();
        let mut checkpoints: Vec<EngineCheckpoint> = Vec::new();
        let mut frames: Vec<CheckpointFrame> = Vec::new();
        // Delta-checkpoint bookkeeping: the tracker maintains last-value
        // maps, journal high-water marks, and the rolling state digest.
        // A resumed chain always restarts at a full base frame (frame 0).
        let delta_mode = options.checkpoint_every_ticks > 0 && options.delta_base_every > 0;
        let mut tracker = delta_mode.then(|| DeltaTracker::new(self.config.shards));
        let mut frame_count = 0u64;
        // The receipt ledger is owned by the fold loop (the single
        // writer), so chains grow in canonical merge order regardless of
        // shard count. Emission is commitment-only: the platform's
        // impression log already holds every receipt's content, so the
        // run maintains just the heads and rematerializes chains on
        // demand (`receipts_from_impressions`).
        let mut ledger = self
            .config
            .ledger
            .then(|| ReceiptLedger::commitment_only(seed, self.config.tick_ms));
        // Fault counters exist (at zero) in every snapshot, so dashboards
        // and the CI snapshot check can *require* them without a fault.
        telemetry.count("faults.injected", 0);
        telemetry.count("faults.recovered", 0);
        telemetry.count("faults.unrecoverable", 0);
        telemetry.count("checkpoint.bytes", 0);
        telemetry.count("checkpoint.delta_bytes", 0);
        telemetry.count("checkpoint.dirty_slots", 0);
        // Targeting counters likewise exist at zero in every snapshot:
        // `compiled_evals` stays zero under `EvalMode::Tree`, and
        // `facet_updates` settles to its true value at run end.
        telemetry.count("targeting.compiled_evals", 0);
        telemetry.count("targeting.facet_updates", 0);
        // Trace counters exist at zero even when no trace is retained.
        telemetry.count("trace.spans", 0);
        telemetry.count("trace.sampled", 0);
        telemetry.count("trace.dropped", 0);
        // Ledger counters exist at zero so snapshot checks can require
        // them even in runs that deliver nothing (or disable the ledger).
        telemetry.count("ledger.receipts", 0);
        telemetry.count("ledger.heads_committed", 0);

        let mut tick_start = 0u64;
        if let Some(cp) = resume {
            // Receipt history cannot be rewritten across a resume: the
            // chains are recomputed from the checkpoint's own impression
            // log and must reproduce the heads the checkpoint committed.
            // Checked before any state is restored.
            if let Some(l) = ledger.as_mut() {
                let rebuilt =
                    receipts_from_impressions(seed, self.config.tick_ms, &cp.platform.impressions);
                if !cp.ledger.is_empty() && rebuilt.heads() != cp.ledger {
                    return Err(Error::invalid(
                        "checkpoint ledger heads do not match receipts recomputed \
                         from its impression log",
                    ));
                }
                *l = rebuilt.into_commitment_only();
            }
            platform.restore_state(&cp.platform);
            for (shard, frozen) in shards.iter_mut().zip(&cp.shards) {
                shard.restore_cursors(frozen)?;
            }
            report.ticks = cp.report.ticks;
            report.page_views = cp.report.page_views;
            report.pixel_fires = cp.report.pixel_fires;
            report.opportunities = cp.report.opportunities;
            report.impressions = cp.report.impressions;
            exhausted = cp.exhausted.iter().copied().collect();
            fault_report = cp.faults.clone();
            tick_start = cp.next_tick_start;
        }

        // Prime every shard's browsing buffers for the first tick. Later
        // ticks prefetch for tick t+1 while tick t merges and folds (when
        // `pipeline_sessions` is on), so this is the only generation wait
        // that sits fully on the critical path.
        if tick_start < horizon {
            let first_end = (tick_start + self.config.tick_ms).min(horizon);
            span!(telemetry, "phase.session_gen_ns", {
                crossbeam::scope(|s| {
                    for shard in shards.iter_mut() {
                        s.spawn(move |_| shard.prefetch_sessions(SimTime(first_end)));
                    }
                })
                .expect("engine prefetch scope")
            });
        }
        while tick_start < horizon {
            let tick_timer = telemetry.span();
            let tick_end = (tick_start + self.config.tick_ms).min(horizon);
            let tick_index = report.ticks;
            let budget = platform.billing.budget_snapshot();

            // Supervisor step 1: snapshot every shard the plan crashes
            // this tick, *before* any attempt can half-mutate it.
            let crashes = options.faults.crashes_at(tick_index);
            let snapshots: BTreeMap<usize, ShardState> = crashes
                .iter()
                .filter(|(s, _)| *s < shards.len())
                .map(|&(s, _)| (s, shards[s].clone()))
                .collect();
            let attempt0: Vec<Option<CrashPoint>> = (0..shards.len())
                .map(|i| {
                    snapshots.contains_key(&i).then_some(CrashPoint {
                        after_page_views: 0,
                    })
                })
                .collect();

            let collected: Mutex<Vec<(usize, Result<ShardBatch, CrashSignal>)>> =
                Mutex::new(Vec::new());
            {
                let platform: &Platform = platform;
                let budget = &budget;
                let collected = &collected;
                crossbeam::scope(|s| {
                    for (shard, &crash) in shards.iter_mut().zip(&attempt0) {
                        s.spawn(move |_| {
                            let index = shard.index();
                            let result = shard.try_run_tick(
                                platform,
                                budget,
                                sites,
                                SimTime(tick_end),
                                probe,
                                crash,
                            );
                            collected.lock().push((index, result));
                        });
                    }
                })
                .expect("engine tick scope");
            }
            let mut batches: Vec<ShardBatch> = Vec::with_capacity(shards.len());
            let mut crashed: Vec<usize> = Vec::new();
            for (index, result) in collected.into_inner() {
                match result {
                    Ok(batch) => batches.push(batch),
                    Err(CrashSignal) => crashed.push(index),
                }
            }
            crashed.sort_unstable();

            // Supervisor step 2: sequential recovery, one crashed shard at
            // a time. Restore the snapshot before *every* attempt — the
            // crashed attempt advanced cursors and RNGs partway — so the
            // re-execution replays the identical tick and the recovery is
            // idempotent.
            for index in crashed {
                fault_report.injected += 1;
                telemetry.count("faults.injected", 1);
                let scheduled = crashes
                    .iter()
                    .find(|(s, _)| *s == index)
                    .map(|&(_, attempts)| attempts)
                    .unwrap_or(1);
                let snapshot = snapshots
                    .get(&index)
                    .expect("only crash-scheduled shards can crash");
                let mut recovered = None;
                let mut attempt = 1u32;
                while attempt <= options.max_retries_per_shard_tick {
                    shards[index] = snapshot.clone();
                    // Later scheduled failures strike deeper into the tick
                    // than attempt 0's, so every retry dies at a *new*
                    // partial state.
                    let crash = (attempt < scheduled).then_some(CrashPoint {
                        after_page_views: u64::from(attempt),
                    });
                    match shards[index].try_run_tick(
                        &*platform,
                        &budget,
                        sites,
                        SimTime(tick_end),
                        probe,
                        crash,
                    ) {
                        Ok(batch) => {
                            recovered = Some(batch);
                            break;
                        }
                        Err(CrashSignal) => {
                            fault_report.injected += 1;
                            telemetry.count("faults.injected", 1);
                            attempt += 1;
                        }
                    }
                }
                match recovered {
                    Some(batch) => {
                        fault_report.recovered += 1;
                        telemetry.count("faults.recovered", 1);
                        batches.push(batch);
                    }
                    None => {
                        // Retry budget exhausted: degrade gracefully.
                        // Restore the snapshot, advance cursors past the
                        // tick without simulating, and account for every
                        // event abandoned.
                        shards[index] = snapshot.clone();
                        let mut lost = shards[index].skip_tick(sites, SimTime(tick_end));
                        lost.tick = tick_index;
                        fault_report.unrecoverable += 1;
                        telemetry.count("faults.unrecoverable", 1);
                        // Fault-degraded work is always retained by the
                        // tail sampler: one synthetic trace inventories
                        // the skipped (shard, tick).
                        if telemetry.trace_config().enabled {
                            let id = TraceId::from_key(
                                self.config.seed,
                                SimTime(tick_end),
                                index as u64,
                                SHED_SEQ,
                            );
                            let mut t =
                                RequestTrace::tail(id, SimTime(tick_end), index as u64, SHED_SEQ);
                            let span = t.span("skipped_tick", None, SimTime(tick_start));
                            t.event(
                                span,
                                TraceEventKind::FaultDegraded {
                                    what: "shard_tick_skipped",
                                    detail: lost.page_views,
                                },
                            );
                            telemetry.offer_trace(t);
                        }
                        fault_report.lost.push(lost);
                    }
                }
            }

            // Supervisor step 3: scheduled at-least-once deliveries. A
            // duplicated batch is pushed verbatim; a delayed batch is moved
            // behind every on-time one, emulating late arrival.
            let dup_count = batches
                .iter()
                .filter(|b| options.faults.duplicated(tick_index, b.shard))
                .count();
            if dup_count > 0 {
                let extra: Vec<ShardBatch> = batches
                    .iter()
                    .filter(|b| options.faults.duplicated(tick_index, b.shard))
                    .cloned()
                    .collect();
                fault_report.injected += extra.len() as u64;
                telemetry.count("faults.injected", extra.len() as u64);
                batches.extend(extra);
            }
            let late_count = batches
                .iter()
                .filter(|b| options.faults.delayed(tick_index, b.shard))
                .count();
            if late_count > 0 {
                let (on_time, late): (Vec<_>, Vec<_>) = batches
                    .into_iter()
                    .partition(|b| !options.faults.delayed(tick_index, b.shard));
                fault_report.injected += late.len() as u64;
                telemetry.count("faults.injected", late.len() as u64);
                // Reordering is fully absorbed by the canonical sort below,
                // so a late arrival is recovered the moment it lands.
                fault_report.recovered += late.len() as u64;
                telemetry.count("faults.recovered", late.len() as u64);
                batches = on_time;
                batches.extend(late);
            }

            // Threads push batches in completion order; shard-index order
            // is the canonical one for every per-tick fold below. The sort
            // is stable, so a duplicated batch sits right after its
            // original and is dropped by batch identity (tick, shard) —
            // the idempotent-apply guarantee.
            batches.sort_by_key(|b| b.shard);
            batches.dedup_by(|b, kept| {
                if b.shard == kept.shard {
                    fault_report.recovered += 1;
                    telemetry.count("faults.recovered", 1);
                    true
                } else {
                    false
                }
            });

            // Delta mode derives each shard's frequency-cap dirty keys
            // from its merged impression events: the shard bumped exactly
            // the `(ad, user)` slots its surviving (post-dedup) batch
            // delivered, so the delivery hot path carries no bookkeeping.
            if let Some(tracker) = tracker.as_mut() {
                for batch in &batches {
                    for event in &batch.events {
                        if let ShardEvent::Impression { pending, .. } = event {
                            tracker.note_shard_freq(batch.shard, (pending.ad, pending.user));
                        }
                    }
                }
            }

            // Frame-tick shard data is collected *before* the overlap
            // scope below hands the shard states to the prefetch workers:
            // cursors, dirty frequency values, and extension-log suffixes
            // all live on the shards.
            let take_frame = options.checkpoint_every_ticks > 0
                && (report.ticks + 1).is_multiple_of(options.checkpoint_every_ticks);
            let mut full_cursors: Option<Vec<ShardCheckpoint>> = None;
            let mut delta_sources: Option<Vec<ShardDeltaSource>> = None;
            if take_frame {
                if delta_mode && !frame_count.is_multiple_of(options.delta_base_every) {
                    let tracker = tracker.as_mut().expect("delta mode has a tracker");
                    let mut sources = Vec::with_capacity(shards.len());
                    for (s, shard) in shards.iter_mut().enumerate() {
                        let cursors = shard.take_dirty_cursors();
                        let freq = tracker
                            .drain_shard_freq_dirty(s)
                            .into_iter()
                            .map(|key| (key, shard.freq_count(key.0, key.1)))
                            .collect();
                        let mut ext = Vec::new();
                        for (user, log) in shard.extensions() {
                            let observations = log.observations();
                            let mark = tracker.shard_ext_mark(s, *user);
                            if observations.len() > mark {
                                ext.push((*user, observations[mark..].to_vec()));
                            }
                        }
                        sources.push(ShardDeltaSource {
                            index: s as u64,
                            cursors,
                            freq,
                            ext,
                        });
                    }
                    delta_sources = Some(sources);
                } else {
                    if delta_mode {
                        // A base frame captures everything; reset the
                        // accumulated dirty flags so the next delta starts
                        // from this cut.
                        for shard in shards.iter_mut() {
                            let _ = shard.take_dirty_cursors();
                        }
                    }
                    full_cursors = Some(shards.iter().map(ShardState::export_cursors).collect());
                }
            }

            // The pipelined overlap: shard workers prefetch tick t+1's
            // browsing sessions while this thread merges, folds, and
            // checkpoints tick t. Generation is pure in (user, seed, day)
            // and the merge/fold never touches browsing buffers, so the
            // overlap cannot change any folded byte.
            let prefetch_until = (tick_end + self.config.tick_ms).min(horizon);
            let prefetch_needed = tick_end < horizon;
            let overlap = self.config.pipeline_sessions && prefetch_needed;
            let overlap_gen_ns = Mutex::new(0u64);
            crossbeam::scope(|s| -> adsim_types::Result<()> {
                if overlap {
                    for shard in shards.iter_mut() {
                        let overlap_gen_ns = &overlap_gen_ns;
                        s.spawn(move |_| {
                            let t0 = std::time::Instant::now();
                            shard.prefetch_sessions(SimTime(prefetch_until));
                            let ns = t0.elapsed().as_nanos() as u64;
                            let mut slowest = overlap_gen_ns.lock();
                            *slowest = (*slowest).max(ns);
                        });
                    }
                }

                let mut tick_flight: Vec<FlightEvent> = Vec::new();
                let mut tick_traces: Vec<RequestTrace> = Vec::new();
                let mut shard_flight_dropped = 0u64;
                for batch in &mut batches {
                    report.page_views += batch.page_views;
                    report.opportunities += batch.stats.opportunities;
                    platform.stats.opportunities += batch.stats.opportunities;
                    platform.stats.won += batch.stats.won;
                    platform.stats.lost_to_background += batch.stats.lost_to_background;
                    platform.stats.unfilled += batch.stats.unfilled;
                    telemetry.merge_registry(&batch.telemetry);
                    tick_flight.extend(batch.flight.iter().copied());
                    tick_traces.append(&mut batch.traces);
                    shard_flight_dropped += batch.flight_dropped;
                }
                // Flight events sort by the same canonical key as the
                // event merge, so journal content is shard-count-invariant
                // (as long as no shard's per-tick ring overflowed).
                tick_flight.sort_by_key(FlightEvent::key);
                telemetry.append_events(tick_flight);
                // Traces sort by their request key for the same invariance.
                tick_traces.sort_by_key(RequestTrace::key);
                for t in tick_traces {
                    telemetry.offer_trace(t);
                }
                if shard_flight_dropped > 0 {
                    telemetry.count("flight.dropped_in_shards", shard_flight_dropped);
                }

                let merged = span!(telemetry, "phase.merge_ns", {
                    merge_batches(
                        std::mem::take(&mut batches)
                            .into_iter()
                            .map(|b| b.events)
                            .collect(),
                    )
                })
                .map_err(|e| Error::Internal {
                    what: format!("tick {tick_index}: {e}"),
                })?;
                let apply_timer = telemetry.span();
                let fold = fold_tick_events(
                    platform,
                    merged,
                    SimTime(tick_end),
                    telemetry,
                    &mut exhausted,
                    ledger.as_mut(),
                );
                report.pixel_fires += fold.pixel_fires;
                report.impressions += fold.impressions;
                telemetry.end_span("phase.apply_ns", apply_timer);
                report.ticks += 1;

                // Tick-boundary checkpoint frame: everything is now folded
                // and frozen, so the capture is a consistent cut of the run.
                let counters = ReportCounters {
                    users: report.users,
                    shards: report.shards,
                    ticks: report.ticks,
                    page_views: report.page_views,
                    pixel_fires: report.pixel_fires,
                    opportunities: report.opportunities,
                    impressions: report.impressions,
                };
                let committed_heads = match (take_frame, ledger.as_ref()) {
                    (true, Some(l)) => l.heads(),
                    _ => Vec::new(),
                };
                if let Some(shard_cursors) = full_cursors.take() {
                    let cp = EngineCheckpoint {
                        config: echo.clone(),
                        next_tick_start: tick_end,
                        report: counters,
                        exhausted: exhausted.iter().copied().collect(),
                        faults: fault_report.clone(),
                        platform: platform.export_state(),
                        shards: shard_cursors,
                        ledger: committed_heads.clone(),
                    };
                    telemetry.count("checkpoint.bytes", cp.to_bytes().len() as u64);
                    telemetry.count("ledger.heads_committed", committed_heads.len() as u64);
                    if let Some(tracker) = tracker.as_mut() {
                        tracker.rebase(&cp, platform);
                        frames.push(CheckpointFrame::Full(cp));
                    } else {
                        checkpoints.push(cp);
                    }
                } else if let Some(sources) = delta_sources.take() {
                    telemetry.count("ledger.heads_committed", committed_heads.len() as u64);
                    let head = DeltaHead {
                        config: echo.clone(),
                        next_tick_start: tick_end,
                        report: counters,
                        exhausted: exhausted.iter().copied().collect(),
                        faults: fault_report.clone(),
                        ledger: committed_heads,
                    };
                    let frame = tracker
                        .as_mut()
                        .expect("delta sources only exist in delta mode")
                        .take_delta(head, platform, sources);
                    let dirty_slots = frame.billing_accounts.len()
                        + frame.billing_campaigns.len()
                        + frame.billing_ads.len()
                        + frame.billing_links.len()
                        + frame.freq.len()
                        + frame
                            .audience_adds
                            .iter()
                            .map(|(_, m)| m.len())
                            .sum::<usize>()
                        + frame.facets.len()
                        + frame
                            .shards
                            .iter()
                            .map(|s| s.users.len() + s.freq.len() + s.ext.len())
                            .sum::<usize>();
                    let frame = CheckpointFrame::Delta(frame);
                    telemetry.count("checkpoint.delta_bytes", frame.to_bytes().len() as u64);
                    telemetry.count("checkpoint.dirty_slots", dirty_slots as u64);
                    frames.push(frame);
                }
                if take_frame {
                    frame_count += 1;
                }
                Ok(())
            })
            .expect("engine overlap scope")?;

            if overlap {
                telemetry.observe_ns("phase.session_gen_ns", overlap_gen_ns.into_inner());
            } else if prefetch_needed {
                // Serialized mode (`pipeline_sessions = false`): generate
                // the next tick's sessions on the critical path, after the
                // fold — the configuration E15 measures the overlap against.
                span!(telemetry, "phase.session_gen_ns", {
                    crossbeam::scope(|s| {
                        for shard in shards.iter_mut() {
                            s.spawn(move |_| shard.prefetch_sessions(SimTime(prefetch_until)));
                        }
                    })
                    .expect("engine prefetch scope")
                });
            }

            tick_start = tick_end;
            telemetry.end_span("engine.tick_ns", tick_timer);
        }

        // The facet-update counter lives on the profile store (facets are
        // maintained inline by platform mutators, not by shard ticks), so
        // it is read once when the run settles.
        telemetry.count("targeting.facet_updates", platform.profiles.facet_updates());

        let mut extensions = BTreeMap::new();
        for shard in shards {
            extensions.extend(shard.into_extensions());
        }
        Ok(ResilientOutcome {
            outcome: EngineOutcome {
                report,
                extensions,
                ledger,
            },
            faults: fault_report,
            checkpoints,
            frames,
        })
    }
}
