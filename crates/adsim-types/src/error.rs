//! The workspace-wide error type.
//!
//! A single flat enum rather than per-crate error hierarchies: the
//! simulation is one closed system and callers almost always either bubble
//! errors to the experiment driver or assert on the exact variant in tests.

use serde::{Deserialize, Serialize};

/// Errors produced anywhere in the simulation stack.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Error {
    /// An entity id was not found in the store that owns it.
    NotFound {
        /// Entity class, e.g. `"user"`, `"campaign"`.
        entity: &'static str,
        /// Stringified id that failed to resolve.
        id: String,
    },
    /// An audience was below the platform's minimum-size threshold.
    AudienceTooSmall {
        /// Number of matched users.
        matched: usize,
        /// Platform minimum.
        minimum: usize,
    },
    /// An ad or campaign violated platform policy (ToS).
    PolicyViolation {
        /// Human-readable reason from the policy engine.
        reason: String,
    },
    /// An advertiser account has been suspended by platform enforcement.
    AccountSuspended {
        /// Stringified account id.
        account: String,
    },
    /// A campaign's budget is exhausted.
    BudgetExhausted {
        /// Stringified campaign id.
        campaign: String,
    },
    /// Invalid input to an API (bad parameter combination, empty upload…).
    InvalidInput {
        /// What was wrong.
        reason: String,
    },
    /// A Tread payload failed to decode.
    DecodeFailure {
        /// What was wrong with the payload.
        reason: String,
    },
    /// An internal invariant was violated.
    ///
    /// Returned instead of panicking on "impossible" states so a fault in
    /// one shard or one API call degrades into a reportable error rather
    /// than aborting a multi-day run.
    Internal {
        /// Which invariant broke.
        what: String,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::NotFound { entity, id } => write!(f, "{entity} {id} not found"),
            Error::AudienceTooSmall { matched, minimum } => write!(
                f,
                "audience too small: matched {matched} users, platform minimum is {minimum}"
            ),
            Error::PolicyViolation { reason } => write!(f, "policy violation: {reason}"),
            Error::AccountSuspended { account } => write!(f, "account {account} suspended"),
            Error::BudgetExhausted { campaign } => {
                write!(f, "campaign {campaign} budget exhausted")
            }
            Error::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
            Error::DecodeFailure { reason } => write!(f, "decode failure: {reason}"),
            Error::Internal { what } => write!(f, "internal invariant violated: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

impl Error {
    /// Convenience constructor for [`Error::NotFound`].
    pub fn not_found(entity: &'static str, id: impl std::fmt::Display) -> Self {
        Error::NotFound {
            entity,
            id: id.to_string(),
        }
    }

    /// Convenience constructor for [`Error::InvalidInput`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        Error::InvalidInput {
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Error::not_found("user", "u7");
        assert_eq!(e.to_string(), "user u7 not found");
        let e = Error::AudienceTooSmall {
            matched: 2,
            minimum: 20,
        };
        assert!(e.to_string().contains("matched 2"));
        let e = Error::invalid("empty PII upload");
        assert_eq!(e.to_string(), "invalid input: empty PII upload");
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::invalid("x"));
    }
}
