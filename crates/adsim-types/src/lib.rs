//! Shared substrate types for the Treads reproduction.
//!
//! This crate is the foundation layer every other crate in the workspace
//! builds on. It intentionally contains no ad-platform logic — only the
//! vocabulary the simulation speaks:
//!
//! * [`ids`] — strongly-typed identifiers for every entity in the system
//!   (users, advertisers, campaigns, ads, attributes, sites, pixels, …).
//! * [`time`] — the simulated clock. The whole workspace is driven by a
//!   deterministic discrete-event clock measured in simulated milliseconds.
//! * [`money`] — exact money arithmetic in micro-USD, with the CPM
//!   (cost-per-mille) helpers the paper's cost analysis uses.
//! * [`hash`] — a from-scratch SHA-256 implementation (validated against
//!   NIST test vectors) used for PII hashing, exactly as ad platforms
//!   require hashed email/phone uploads for custom audiences.
//! * [`rng`] — seeded determinism helpers so every experiment is
//!   reproducible bit-for-bit.
//! * [`stats`] — the small statistics toolbox (binomial tails, chi-square,
//!   descriptive stats) used by the platform's noisy reach estimates and by
//!   the correlation-inference baseline.
//! * [`symbols`] — the deterministic string interner backing the compiled
//!   targeting evaluator (states and ZIPs become dense `u32` symbols).
//! * [`error`] — the common error type.
//!
//! Design notes: following the style of event-driven network stacks such as
//! smoltcp, this layer avoids clever type-level tricks; identifiers are
//! plain newtypes over integers, time is a plain `u64`, and money is a
//! plain `i64`, each with a small, well-documented API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod hash;
pub mod ids;
pub mod money;
pub mod rng;
pub mod stats;
pub mod symbols;
pub mod time;

pub use error::{Error, Result};
pub use ids::{
    AccountId, AdId, AdvertiserId, AttributeId, AudienceId, CampaignId, PixelId, SiteId, UserId,
};
pub use money::Money;
pub use symbols::{Symbol, SymbolTable};
pub use time::{Duration, SimClock, SimTime};
