//! Simulated time.
//!
//! The entire workspace runs against a discrete simulated clock rather than
//! wall-clock time, so experiments are deterministic and can simulate weeks
//! of ad delivery in milliseconds of real time. The unit is the *simulated
//! millisecond*; [`Duration`] provides readable constructors
//! (`Duration::minutes(5)`) and [`SimTime`] is a monotone instant.
//!
//! [`SimClock`] is the shared clock handle the delivery loop advances. It
//! is a plain value type — stores that need shared access wrap it in their
//! own synchronization (see `adplatform::Platform`).

use serde::{Deserialize, Serialize};

/// An instant on the simulated timeline, in milliseconds since simulation
/// start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Milliseconds since simulation start.
    pub fn millis(self) -> u64 {
        self.0
    }

    /// The instant `d` after this one (saturating).
    pub fn after(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Elapsed duration since `earlier`; zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Duration of `n` simulated milliseconds.
    pub fn millis(n: u64) -> Duration {
        Duration(n)
    }

    /// Duration of `n` simulated seconds.
    pub fn seconds(n: u64) -> Duration {
        Duration(n * 1_000)
    }

    /// Duration of `n` simulated minutes.
    pub fn minutes(n: u64) -> Duration {
        Duration(n * 60_000)
    }

    /// Duration of `n` simulated hours.
    pub fn hours(n: u64) -> Duration {
        Duration(n * 3_600_000)
    }

    /// Duration of `n` simulated days.
    pub fn days(n: u64) -> Duration {
        Duration(n * 86_400_000)
    }

    /// The raw number of milliseconds in this duration.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Integer number of whole days in this duration.
    pub fn as_days(self) -> u64 {
        self.0 / 86_400_000
    }
}

impl std::ops::Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        self.after(rhs)
    }
}

impl std::ops::Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0.saturating_mul(rhs))
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t+{}ms", self.0)
    }
}

impl std::fmt::Display for Duration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ms = self.0;
        if ms.is_multiple_of(86_400_000) && ms > 0 {
            write!(f, "{}d", ms / 86_400_000)
        } else if ms.is_multiple_of(3_600_000) && ms > 0 {
            write!(f, "{}h", ms / 3_600_000)
        } else if ms.is_multiple_of(1_000) && ms > 0 {
            write!(f, "{}s", ms / 1_000)
        } else {
            write!(f, "{}ms", ms)
        }
    }
}

/// The simulation clock.
///
/// A monotone counter the simulation driver advances. Components read the
/// current instant with [`SimClock::now`]; only the driver should call
/// [`SimClock::advance`] / [`SimClock::advance_to`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// A clock at the simulation epoch.
    pub fn new() -> Self {
        Self { now: SimTime::ZERO }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `d` and returns the new instant.
    pub fn advance(&mut self, d: Duration) -> SimTime {
        self.now = self.now.after(d);
        self.now
    }

    /// Advances the clock to `t`. Panics if `t` is in the past — discrete
    /// event simulations must never move backwards, and silently ignoring
    /// the error would hide driver bugs.
    pub fn advance_to(&mut self, t: SimTime) -> SimTime {
        assert!(
            t >= self.now,
            "simulation clock moved backwards: now={} requested={}",
            self.now,
            t
        );
        self.now = t;
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors() {
        assert_eq!(Duration::seconds(2).as_millis(), 2_000);
        assert_eq!(Duration::minutes(3).as_millis(), 180_000);
        assert_eq!(Duration::hours(1).as_millis(), 3_600_000);
        assert_eq!(Duration::days(2).as_millis(), 172_800_000);
        assert_eq!(Duration::days(2).as_days(), 2);
    }

    #[test]
    fn simtime_arithmetic() {
        let t = SimTime::ZERO + Duration::seconds(5);
        assert_eq!(t.millis(), 5_000);
        assert_eq!(t.since(SimTime(2_000)).as_millis(), 3_000);
        // `since` saturates rather than underflowing.
        assert_eq!(SimTime(1).since(SimTime(2)).as_millis(), 0);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut clock = SimClock::new();
        assert_eq!(clock.now(), SimTime::ZERO);
        clock.advance(Duration::minutes(1));
        assert_eq!(clock.now().millis(), 60_000);
        clock.advance_to(SimTime(120_000));
        assert_eq!(clock.now().millis(), 120_000);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn clock_rejects_time_travel() {
        let mut clock = SimClock::new();
        clock.advance(Duration::seconds(10));
        clock.advance_to(SimTime(1));
    }

    #[test]
    fn duration_display_is_human_readable() {
        assert_eq!(Duration::days(1).to_string(), "1d");
        assert_eq!(Duration::hours(2).to_string(), "2h");
        assert_eq!(Duration::seconds(30).to_string(), "30s");
        assert_eq!(Duration::millis(5).to_string(), "5ms");
    }

    #[test]
    fn duration_mul() {
        assert_eq!((Duration::seconds(1) * 60).as_millis(), 60_000);
    }
}
