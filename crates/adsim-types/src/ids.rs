//! Strongly-typed identifiers for every entity in the simulation.
//!
//! Each identifier is a newtype over a `u64`. The newtype pattern prevents
//! the classic simulator bug of passing a user id where a campaign id was
//! expected; the ids are otherwise plain integers so they can be used as
//! map keys, stored densely, and printed cheaply.
//!
//! Identifiers are allocated by the owning store (e.g., the platform's
//! profile store allocates [`UserId`]s); this module only defines the types
//! and a small sequential [`IdAllocator`].

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Returns the raw numeric value of this identifier.
            pub fn raw(self) -> u64 {
                self.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                Self(v)
            }
        }
    };
}

define_id!(
    /// A platform user (the people who see ads).
    UserId,
    "u"
);
define_id!(
    /// An advertiser registered on the platform. A transparency provider
    /// holds one or more of these.
    AdvertiserId,
    "adv"
);
define_id!(
    /// An advertiser *account*. The paper's "evading shutdown" discussion
    /// (§4) distributes Treads across many accounts of logically one
    /// provider, so accounts are distinct from advertisers.
    AccountId,
    "acct"
);
define_id!(
    /// An advertising campaign (a budgeted group of ads).
    CampaignId,
    "camp"
);
define_id!(
    /// A single ad (creative + targeting spec) within a campaign.
    AdId,
    "ad"
);
define_id!(
    /// A targeting attribute in the platform's catalog — either
    /// platform-computed or sourced from a data broker ("partner category").
    AttributeId,
    "attr"
);
define_id!(
    /// A saved audience (attribute-, pixel-, or PII-based).
    AudienceId,
    "aud"
);
define_id!(
    /// A tracking pixel placed by an advertiser on an external website.
    PixelId,
    "px"
);
define_id!(
    /// A publisher website in the browsing simulation.
    SiteId,
    "site"
);

/// Sequential allocator for any of the identifier types.
///
/// Stores hand one of these per entity class; ids start at the configured
/// base (default 1, so that 0 can be reserved for sentinels in tests).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IdAllocator {
    next: u64,
}

impl IdAllocator {
    /// Creates an allocator whose first issued id is 1.
    pub fn new() -> Self {
        Self { next: 1 }
    }

    /// Creates an allocator whose first issued id is `base`.
    pub fn starting_at(base: u64) -> Self {
        Self { next: base }
    }

    /// Issues the next identifier, converted into the requested id type.
    #[allow(clippy::should_implement_trait)] // not an iterator: the type is chosen per call
    pub fn next<T: From<u64>>(&mut self) -> T {
        let v = self.next;
        self.next += 1;
        T::from(v)
    }

    /// Number of ids issued so far (when starting at the default base of 1).
    pub fn issued(&self) -> u64 {
        self.next.saturating_sub(1)
    }
}

impl Default for IdAllocator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(UserId(7).to_string(), "u7");
        assert_eq!(AdvertiserId(3).to_string(), "adv3");
        assert_eq!(CampaignId(1).to_string(), "camp1");
        assert_eq!(AdId(42).to_string(), "ad42");
        assert_eq!(AttributeId(507).to_string(), "attr507");
        assert_eq!(AudienceId(9).to_string(), "aud9");
        assert_eq!(PixelId(2).to_string(), "px2");
        assert_eq!(SiteId(11).to_string(), "site11");
        assert_eq!(AccountId(5).to_string(), "acct5");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(UserId(1));
        set.insert(UserId(2));
        set.insert(UserId(1));
        assert_eq!(set.len(), 2);
        assert!(UserId(1) < UserId(2));
    }

    #[test]
    fn allocator_is_sequential_and_typed() {
        let mut alloc = IdAllocator::new();
        let a: UserId = alloc.next();
        let b: UserId = alloc.next();
        assert_eq!(a, UserId(1));
        assert_eq!(b, UserId(2));
        assert_eq!(alloc.issued(), 2);
    }

    #[test]
    fn allocator_custom_base() {
        let mut alloc = IdAllocator::starting_at(100);
        let a: AdId = alloc.next();
        assert_eq!(a, AdId(100));
    }

    #[test]
    fn raw_roundtrip() {
        let id = AttributeId::from(99);
        assert_eq!(id.raw(), 99);
    }
}
