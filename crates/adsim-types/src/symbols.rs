//! Deterministic string interning for the targeting compiler.
//!
//! Targeting evaluation compares *identities* — "is the user's home state
//! this state?" — never string contents, so the platform interns every
//! state and ZIP it sees into a dense `u32` [`Symbol`] and compares those
//! instead. One shared [`SymbolTable`] per platform guarantees the
//! fundamental property the compiled evaluator rests on:
//!
//! > two strings interned in the same table receive equal symbols **iff**
//! > the strings are equal.
//!
//! # Determinism rules
//!
//! Symbol assignment is **first-intern order**: the first distinct string
//! interned gets symbol `0`, the next distinct string `1`, and so on.
//! Interning happens only on deterministic platform API calls (profile
//! registration and mutation, ad submission), which the simulation drives
//! in a fixed order from its seed — so two runs of the same scenario
//! assign identical symbols, and a checkpoint can capture the table as a
//! plain `Vec<String>` indexed by symbol. Nothing about a symbol's
//! *value* is meaningful beyond identity; in particular symbols are not
//! ordered like their strings.

use crate::error::{Error, Result};
use std::collections::BTreeMap;

/// A dense interned-string handle. Equal symbols ⇔ equal strings, within
/// the [`SymbolTable`] that issued them.
pub type Symbol = u32;

/// A deterministic string interner: first-intern order assigns dense
/// `u32` symbols (see the [module docs](self) for the determinism rules).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolTable {
    /// Symbol → string; index *is* the symbol.
    names: Vec<String>,
    /// String → symbol.
    by_name: BTreeMap<String, Symbol>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its symbol — the existing one if `name`
    /// was seen before, otherwise the next dense symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.by_name.get(name) {
            return sym;
        }
        let sym = self.names.len() as Symbol;
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), sym);
        sym
    }

    /// The symbol of `name`, if it has been interned.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.by_name.get(name).copied()
    }

    /// The string behind `sym`, if `sym` was issued by this table.
    pub fn resolve(&self, sym: Symbol) -> Option<&str> {
        self.names.get(sym as usize).map(String::as_str)
    }

    /// Number of interned strings (also the next symbol to be issued).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The interned strings in symbol order — the canonical serialized
    /// form (index = symbol).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Rebuilds a table from its canonical serialized form. Rejects
    /// duplicate entries: a valid table maps each string to exactly one
    /// symbol, so a duplicate means the input was not produced by
    /// [`SymbolTable::names`].
    pub fn from_names(names: Vec<String>) -> Result<Self> {
        let mut by_name = BTreeMap::new();
        for (i, name) in names.iter().enumerate() {
            if by_name.insert(name.clone(), i as Symbol).is_some() {
                return Err(Error::invalid(format!(
                    "duplicate string {name:?} in symbol table"
                )));
            }
        }
        Ok(Self { names, by_name })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_first_come_dense_and_stable() {
        let mut t = SymbolTable::new();
        assert!(t.is_empty());
        let ohio = t.intern("Ohio");
        let texas = t.intern("Texas");
        assert_eq!((ohio, texas), (0, 1));
        // Re-interning never reassigns.
        assert_eq!(t.intern("Ohio"), ohio);
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup("Texas"), Some(texas));
        assert_eq!(t.lookup("Utah"), None);
        assert_eq!(t.resolve(ohio), Some("Ohio"));
        assert_eq!(t.resolve(99), None);
    }

    #[test]
    fn equal_symbols_iff_equal_strings() {
        let mut t = SymbolTable::new();
        let syms: Vec<Symbol> = ["a", "b", "a", "c", "b"]
            .iter()
            .map(|s| t.intern(s))
            .collect();
        assert_eq!(syms, vec![0, 1, 0, 2, 1]);
    }

    #[test]
    fn canonical_form_round_trips() {
        let mut t = SymbolTable::new();
        for s in ["43004", "Ohio", "10001"] {
            t.intern(s);
        }
        let rebuilt = SymbolTable::from_names(t.names().to_vec()).expect("valid form");
        assert_eq!(rebuilt, t);
        // A duplicate cannot have come from `names()`.
        assert!(SymbolTable::from_names(vec!["x".into(), "x".into()]).is_err());
    }
}
