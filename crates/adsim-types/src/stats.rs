//! Small statistics toolbox.
//!
//! Implemented from scratch (no stats crate in the allowed dependency set):
//!
//! * descriptive statistics ([`Summary`]) for experiment reporting;
//! * the exact binomial tail ([`binomial_sf`]) and two-sided binomial test
//!   used by the correlation-inference baseline's hypothesis tests
//!   (Sunlight-style differential correlation);
//! * the chi-square survival function ([`chi_square_sf`]) via the
//!   regularized incomplete gamma function;
//! * multiple-testing corrections ([`bonferroni`], [`benjamini_hochberg`])
//!   — Sunlight's key methodological contribution was correcting for
//!   multiple hypotheses, so the baseline needs both.
//!
//! Numerical style: log-space accumulation for the binomial PMF, Lanczos
//! approximation for `ln Γ`, and series/continued-fraction evaluation of
//! the incomplete gamma function, following Numerical Recipes. Accuracy is
//! validated against reference values in the unit tests (±1e-9 absolute
//! for the gamma-family functions, exact for small binomials).

/// Descriptive summary of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Population standard deviation (0 for n < 2).
    pub stddev: f64,
    /// Minimum observation (0 for an empty sample).
    pub min: f64,
    /// Maximum observation (0 for an empty sample).
    pub max: f64,
    /// Median (0 for an empty sample).
    pub p50: f64,
    /// 95th percentile (0 for an empty sample).
    pub p95: f64,
    /// 99th percentile (0 for an empty sample).
    pub p99: f64,
}

impl Summary {
    /// Summarizes a sample.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN observations"));
        Summary {
            n: xs.len(),
            mean,
            stddev: var.sqrt(),
            min,
            max,
            p50: quantile_sorted(&sorted, 0.50),
            p95: quantile_sorted(&sorted, 0.95),
            p99: quantile_sorted(&sorted, 0.99),
        }
    }
}

/// The `q`-quantile of an ascending-sorted, non-empty sample, by linear
/// interpolation between closest ranks (the numpy/R type-7 default):
/// the quantile sits at fractional index `q · (n − 1)`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of an empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile domain: 0 <= q <= 1");
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// `ln Γ(x)` for `x > 0`, by the Lanczos approximation (g = 7, n = 9).
///
/// Absolute error below 1e-10 over the range used here.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain: x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln C(n, k)`, the log binomial coefficient.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_choose: k={k} > n={n}");
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Binomial PMF `P[X = k]` for `X ~ Bin(n, p)`.
pub fn binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    (ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

/// Binomial survival function `P[X >= k]` for `X ~ Bin(n, p)`.
///
/// Summed from the smaller tail for accuracy; exact up to floating point
/// for the `n` in our experiments (≤ 10⁶).
pub fn binomial_sf(n: u64, k: u64, p: f64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    // Sum whichever tail is shorter.
    if k as f64 > (n as f64) * p {
        // Upper tail directly.
        let mut total = 0.0;
        for i in k..=n {
            total += binomial_pmf(n, i, p);
        }
        total.min(1.0)
    } else {
        // 1 - lower tail.
        let mut lower = 0.0;
        for i in 0..k {
            lower += binomial_pmf(n, i, p);
        }
        (1.0 - lower).clamp(0.0, 1.0)
    }
}

/// Two-sided exact binomial test p-value: probability under `Bin(n, p)` of
/// an outcome at least as extreme (by PMF) as `k`.
pub fn binomial_test_two_sided(n: u64, k: u64, p: f64) -> f64 {
    let pk = binomial_pmf(n, k, p);
    // Standard definition: sum PMFs of all outcomes no more likely than k.
    // A small relative tolerance absorbs floating-point noise.
    let mut total = 0.0;
    for i in 0..=n {
        let pi = binomial_pmf(n, i, p);
        if pi <= pk * (1.0 + 1e-7) {
            total += pi;
        }
    }
    total.min(1.0)
}

/// Regularized lower incomplete gamma `P(a, x)`, by series (x < a+1) or
/// continued fraction (x ≥ a+1), per Numerical Recipes.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain: a>0, x>=0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..500 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a,x), then P = 1 - Q (modified Lentz).
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (-x + a * x.ln() - ln_gamma(a)).exp() * h;
        (1.0 - q).clamp(0.0, 1.0)
    }
}

/// Chi-square survival function `P[X² >= x]` with `df` degrees of freedom.
pub fn chi_square_sf(x: f64, df: u64) -> f64 {
    assert!(df > 0, "chi_square_sf: df must be positive");
    if x <= 0.0 {
        return 1.0;
    }
    1.0 - gamma_p(df as f64 / 2.0, x / 2.0)
}

/// Pearson chi-square test of independence on a 2×2 contingency table
/// `[[a, b], [c, d]]`. Returns `(statistic, p_value)`.
///
/// Degenerate margins (an all-zero row or column) return `(0, 1)` — no
/// evidence of association.
pub fn chi_square_2x2(a: f64, b: f64, c: f64, d: f64) -> (f64, f64) {
    let n = a + b + c + d;
    let r1 = a + b;
    let r2 = c + d;
    let c1 = a + c;
    let c2 = b + d;
    if n == 0.0 || r1 == 0.0 || r2 == 0.0 || c1 == 0.0 || c2 == 0.0 {
        return (0.0, 1.0);
    }
    let num = (a * d - b * c).powi(2) * n;
    let stat = num / (r1 * r2 * c1 * c2);
    (stat, chi_square_sf(stat, 1))
}

/// Bonferroni correction: multiplies each p-value by the number of tests,
/// clamped to 1.
pub fn bonferroni(p_values: &[f64]) -> Vec<f64> {
    let m = p_values.len() as f64;
    p_values.iter().map(|p| (p * m).min(1.0)).collect()
}

/// Benjamini–Hochberg step-up FDR control. Returns, for each input p-value,
/// whether it is rejected (declared significant) at false-discovery rate
/// `q`.
pub fn benjamini_hochberg(p_values: &[f64], q: f64) -> Vec<bool> {
    let m = p_values.len();
    if m == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&i, &j| {
        p_values[i]
            .partial_cmp(&p_values[j])
            .expect("no NaN p-values")
    });
    // Find the largest k with p_(k) <= (k/m) q.
    let mut cutoff = None;
    for (rank, &idx) in order.iter().enumerate() {
        let threshold = (rank as f64 + 1.0) / m as f64 * q;
        if p_values[idx] <= threshold {
            cutoff = Some(rank);
        }
    }
    let mut rejected = vec![false; m];
    if let Some(k) = cutoff {
        for &idx in &order[..=k] {
            rejected[idx] = true;
        }
    }
    rejected
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        close(s.mean, 2.5, 1e-12);
        close(s.stddev, (1.25f64).sqrt(), 1e-12);
        close(s.min, 1.0, 1e-12);
        close(s.max, 4.0, 1e-12);
        let empty = Summary::of(&[]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.mean, 0.0);
        assert_eq!(empty.p50, 0.0);
    }

    #[test]
    fn summary_quantiles_match_reference_values() {
        // 1..=4 under type-7 interpolation: p50 = 2.5, p95 = 3.85,
        // p99 = 3.97 (reference: numpy.percentile default).
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]); // unsorted on purpose
        close(s.p50, 2.5, 1e-12);
        close(s.p95, 3.85, 1e-12);
        close(s.p99, 3.97, 1e-12);
        // 0..=100: quantiles are exact at integer ranks.
        let xs: Vec<f64> = (0..=100).map(f64::from).collect();
        let s = Summary::of(&xs);
        close(s.p50, 50.0, 1e-12);
        close(s.p95, 95.0, 1e-12);
        close(s.p99, 99.0, 1e-12);
        // A constant sample collapses every quantile to the constant.
        let s = Summary::of(&[7.0; 13]);
        close(s.p50, 7.0, 1e-12);
        close(s.p99, 7.0, 1e-12);
        // Singleton.
        let s = Summary::of(&[42.0]);
        close(s.p50, 42.0, 1e-12);
        close(s.p95, 42.0, 1e-12);
    }

    #[test]
    fn quantile_sorted_interpolates_linearly() {
        let xs = [10.0, 20.0];
        close(quantile_sorted(&xs, 0.0), 10.0, 1e-12);
        close(quantile_sorted(&xs, 0.5), 15.0, 1e-12);
        close(quantile_sorted(&xs, 0.75), 17.5, 1e-12);
        close(quantile_sorted(&xs, 1.0), 20.0, 1e-12);
    }

    #[test]
    fn ln_gamma_reference_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π.
        close(ln_gamma(1.0), 0.0, 1e-10);
        close(ln_gamma(2.0), 0.0, 1e-10);
        close(ln_gamma(5.0), 24f64.ln(), 1e-10);
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
        // Γ(10) = 362880.
        close(ln_gamma(10.0), 362880f64.ln(), 1e-9);
    }

    #[test]
    fn ln_choose_small_cases() {
        close(ln_choose(5, 2), 10f64.ln(), 1e-10);
        close(ln_choose(10, 5), 252f64.ln(), 1e-10);
        close(ln_choose(7, 0), 0.0, 1e-10);
        close(ln_choose(7, 7), 0.0, 1e-10);
    }

    #[test]
    fn binomial_pmf_exact_small() {
        // Bin(4, 0.5): 1/16, 4/16, 6/16, 4/16, 1/16.
        close(binomial_pmf(4, 0, 0.5), 1.0 / 16.0, 1e-12);
        close(binomial_pmf(4, 2, 0.5), 6.0 / 16.0, 1e-12);
        close(binomial_pmf(4, 4, 0.5), 1.0 / 16.0, 1e-12);
        // Degenerate p.
        assert_eq!(binomial_pmf(5, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(5, 5, 1.0), 1.0);
        assert_eq!(binomial_pmf(5, 3, 0.0), 0.0);
        assert_eq!(binomial_pmf(3, 5, 0.5), 0.0);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        for &(n, p) in &[(10u64, 0.3), (50, 0.07), (100, 0.5)] {
            let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
            close(total, 1.0, 1e-9);
        }
    }

    #[test]
    fn binomial_sf_matches_direct_sum() {
        let n = 30;
        let p = 0.2;
        for k in 0..=n {
            let direct: f64 = (k..=n).map(|i| binomial_pmf(n, i, p)).sum();
            close(binomial_sf(n, k, p), direct, 1e-10);
        }
        assert_eq!(binomial_sf(10, 0, 0.5), 1.0);
        assert_eq!(binomial_sf(10, 11, 0.5), 0.0);
    }

    #[test]
    fn binomial_two_sided_symmetric_case() {
        // Bin(10, 0.5), k=8: two-sided p = P[X<=2] + P[X>=8] ≈ 0.109375.
        close(binomial_test_two_sided(10, 8, 0.5), 0.109375, 1e-9);
        // Observing exactly the mean is not significant.
        assert!(binomial_test_two_sided(10, 5, 0.5) > 0.99);
    }

    #[test]
    fn gamma_p_reference_values() {
        // P(1, x) = 1 - e^{-x}.
        close(gamma_p(1.0, 1.0), 1.0 - (-1.0f64).exp(), 1e-10);
        close(gamma_p(1.0, 5.0), 1.0 - (-5.0f64).exp(), 1e-10);
        // P(0.5, x) = erf(√x): P(0.5, 1) ≈ erf(1) ≈ 0.8427007929.
        close(gamma_p(0.5, 1.0), 0.842_700_792_9, 1e-9);
        assert_eq!(gamma_p(3.0, 0.0), 0.0);
    }

    #[test]
    fn chi_square_reference_values() {
        // df=1: SF(3.841459) ≈ 0.05 (the classic 95% critical value).
        close(chi_square_sf(3.841458820694124, 1), 0.05, 1e-9);
        // df=2: SF(x) = e^{-x/2}.
        close(chi_square_sf(4.0, 2), (-2.0f64).exp(), 1e-10);
        // df=5: SF(11.0705) ≈ 0.05.
        close(chi_square_sf(11.070497693516351, 5), 0.05, 1e-9);
        assert_eq!(chi_square_sf(0.0, 3), 1.0);
        assert_eq!(chi_square_sf(-1.0, 3), 1.0);
    }

    #[test]
    fn chi_square_2x2_association() {
        // Strong association.
        let (stat, p) = chi_square_2x2(50.0, 10.0, 10.0, 50.0);
        assert!(stat > 40.0);
        assert!(p < 1e-9);
        // No association.
        let (stat, p) = chi_square_2x2(25.0, 25.0, 25.0, 25.0);
        close(stat, 0.0, 1e-12);
        close(p, 1.0, 1e-12);
        // Degenerate margin.
        let (stat, p) = chi_square_2x2(0.0, 0.0, 10.0, 20.0);
        assert_eq!((stat, p), (0.0, 1.0));
    }

    #[test]
    fn bonferroni_clamps() {
        let corrected = bonferroni(&[0.01, 0.2, 0.5]);
        close(corrected[0], 0.03, 1e-12);
        close(corrected[1], 0.6, 1e-12);
        close(corrected[2], 1.0, 1e-12);
    }

    #[test]
    fn benjamini_hochberg_step_up() {
        // Classic example: p = [0.01, 0.04, 0.03, 0.005], q = 0.05, m = 4.
        // Sorted: 0.005 (<=0.0125), 0.01 (<=0.025), 0.03 (<=0.0375),
        // 0.04 (<=0.05) — all rejected because the largest k passing is 4.
        let rejected = benjamini_hochberg(&[0.01, 0.04, 0.03, 0.005], 0.05);
        assert_eq!(rejected, vec![true, true, true, true]);
        // None significant.
        let rejected = benjamini_hochberg(&[0.9, 0.8, 0.95], 0.05);
        assert_eq!(rejected, vec![false, false, false]);
        // Empty input.
        assert!(benjamini_hochberg(&[], 0.05).is_empty());
        // BH rejects a superset of Bonferroni's rejections.
        let ps = [0.001, 0.012, 0.02, 0.3, 0.6];
        let bh = benjamini_hochberg(&ps, 0.05);
        let bonf = bonferroni(&ps);
        for i in 0..ps.len() {
            if bonf[i] <= 0.05 {
                assert!(bh[i], "BH must reject whatever Bonferroni rejects");
            }
        }
    }
}
