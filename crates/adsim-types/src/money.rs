//! Exact money arithmetic in micro-USD.
//!
//! Ad platforms bill in fractions of a cent — the paper's headline number
//! is **$0.002 per attribute revealed** (one impression at a $2 CPM bid).
//! Floating point would accumulate error across millions of simulated
//! impressions, so [`Money`] is a signed integer count of micro-dollars
//! (1 USD = 1,000,000 µ$). The CPM helpers convert between a
//! cost-per-mille price and a per-impression charge exactly.

use serde::{Deserialize, Serialize};

/// An exact amount of money in micro-USD (1 USD = 1,000,000 µ$).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Money(pub i64);

impl Money {
    /// Zero dollars.
    pub const ZERO: Money = Money(0);

    /// `n` whole dollars.
    pub fn dollars(n: i64) -> Money {
        Money(n * 1_000_000)
    }

    /// `n` cents.
    pub fn cents(n: i64) -> Money {
        Money(n * 10_000)
    }

    /// `n` micro-dollars (the raw unit).
    pub fn micros(n: i64) -> Money {
        Money(n)
    }

    /// The raw micro-dollar count.
    pub fn as_micros(self) -> i64 {
        self.0
    }

    /// This amount as a floating-point dollar value (for display and
    /// statistics only — never for accounting).
    pub fn as_dollars_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The per-impression price implied by this CPM (cost-per-mille)
    /// amount: CPM / 1000, rounding toward zero in micro-dollars.
    ///
    /// A $2 CPM yields $0.002 = 2,000 µ$ per impression — the paper's
    /// per-attribute reveal cost.
    pub fn cpm_per_impression(self) -> Money {
        Money(self.0 / 1_000)
    }

    /// The total cost of `n` impressions billed at this CPM.
    ///
    /// Computed as `n * cpm / 1000` with the multiplication first, so
    /// billing a thousand impressions at $2 CPM is exactly $2 with no
    /// rounding loss.
    pub fn cpm_cost_of(self, impressions: u64) -> Money {
        let total = (self.0 as i128) * (impressions as i128) / 1_000;
        Money(total as i64)
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Money) -> Money {
        Money(self.0.saturating_add(rhs.0))
    }

    /// True if this amount is strictly positive.
    pub fn is_positive(self) -> bool {
        self.0 > 0
    }
}

impl std::ops::Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        Money(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Money) -> Money {
        Money(self.0 - rhs.0)
    }
}

impl std::ops::Mul<i64> for Money {
    type Output = Money;
    fn mul(self, rhs: i64) -> Money {
        Money(self.0 * rhs)
    }
}

impl std::iter::Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, |acc, m| acc + m)
    }
}

impl std::fmt::Display for Money {
    /// Formats as dollars with enough precision for micro-dollar amounts,
    /// e.g. `$2.00`, `$0.002`, `-$0.10`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        let dollars = abs / 1_000_000;
        let micros = abs % 1_000_000;
        if micros == 0 {
            write!(f, "{sign}${dollars}.00")
        } else {
            // Trim trailing zeros but keep at least 2 decimal places.
            let mut frac = format!("{micros:06}");
            while frac.len() > 2 && frac.ends_with('0') {
                frac.pop();
            }
            write!(f, "{sign}${dollars}.{frac}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_are_exact() {
        assert_eq!(Money::dollars(2).as_micros(), 2_000_000);
        assert_eq!(Money::cents(50).as_micros(), 500_000);
        assert_eq!(Money::micros(2_000).as_dollars_f64(), 0.002);
    }

    #[test]
    fn paper_cpm_figures() {
        // $2 CPM (Facebook's recommended US bid in the paper) → $0.002/imp.
        assert_eq!(Money::dollars(2).cpm_per_impression(), Money::micros(2_000));
        // The paper's elevated $10 CPM bid → $0.01/imp.
        assert_eq!(
            Money::dollars(10).cpm_per_impression(),
            Money::micros(10_000)
        );
        // 50 attributes at $2 CPM → $0.10 (the paper's 50-parameter user).
        assert_eq!(Money::dollars(2).cpm_cost_of(50), Money::cents(10));
    }

    #[test]
    fn cpm_cost_has_no_cumulative_rounding() {
        // 1000 impressions at $2 CPM is exactly $2.
        assert_eq!(Money::dollars(2).cpm_cost_of(1_000), Money::dollars(2));
        // 1,000,000 impressions at $1.999 CPM: exact via i128 intermediate.
        let cpm = Money::micros(1_999_000);
        assert_eq!(cpm.cpm_cost_of(1_000_000), Money::micros(1_999_000_000));
    }

    #[test]
    fn arithmetic() {
        let a = Money::dollars(1) + Money::cents(50);
        assert_eq!(a, Money::micros(1_500_000));
        assert_eq!(a - Money::cents(50), Money::dollars(1));
        assert_eq!(Money::cents(1) * 3, Money::micros(30_000));
        let total: Money = vec![Money::cents(10); 10].into_iter().sum();
        assert_eq!(total, Money::dollars(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Money::dollars(2).to_string(), "$2.00");
        assert_eq!(Money::micros(2_000).to_string(), "$0.002");
        assert_eq!(Money::cents(10).to_string(), "$0.10");
        assert_eq!(Money::micros(-100_000).to_string(), "-$0.10");
        assert_eq!(Money::micros(1_234_567).to_string(), "$1.234567");
    }

    #[test]
    fn saturating_add_does_not_overflow() {
        let big = Money(i64::MAX);
        assert_eq!(big.saturating_add(Money::dollars(1)), Money(i64::MAX));
    }

    #[test]
    fn is_positive() {
        assert!(Money::cents(1).is_positive());
        assert!(!Money::ZERO.is_positive());
        assert!(!Money::micros(-1).is_positive());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// CPM billing is near-additive: splitting a bill across two
        /// invocations loses at most one micro-dollar to floor division
        /// (⌊a⌋+⌊b⌋ ≤ ⌊a+b⌋ ≤ ⌊a⌋+⌊b⌋+1), and never overcharges.
        #[test]
        fn cpm_cost_is_superadditive_within_one_micro(
            cpm in 0i64..100_000_000,
            n in 0u64..1_000_000,
            m in 0u64..1_000_000,
        ) {
            let cpm = Money::micros(cpm);
            let split = cpm.cpm_cost_of(n) + cpm.cpm_cost_of(m);
            let joint = cpm.cpm_cost_of(n + m);
            let diff = joint.as_micros() - split.as_micros();
            prop_assert!((0..=1).contains(&diff), "diff {diff}");
        }

        /// One thousand impressions at any CPM cost exactly that CPM.
        #[test]
        fn thousand_impressions_cost_the_cpm(cpm in 0i64..1_000_000_000) {
            let cpm = Money::micros(cpm);
            prop_assert_eq!(cpm.cpm_cost_of(1_000), cpm);
        }

        /// Add/sub round-trips.
        #[test]
        fn add_sub_inverse(a in -1_000_000_000i64..1_000_000_000, b in -1_000_000_000i64..1_000_000_000) {
            let (a, b) = (Money::micros(a), Money::micros(b));
            prop_assert_eq!(a + b - b, a);
        }

        /// Display never panics and always starts with an optional sign
        /// and a dollar marker.
        #[test]
        fn display_shape(v in any::<i32>()) {
            let s = Money::micros(v as i64).to_string();
            prop_assert!(s.starts_with('$') || s.starts_with("-$"), "{}", s);
        }
    }
}
