//! Seeded-determinism helpers.
//!
//! Every stochastic component of the simulation (population generation,
//! background auction competition, browsing sessions, reporting noise)
//! derives its randomness from a single experiment seed, so that a given
//! `(seed, scenario)` pair reproduces bit-for-bit. Components must never
//! share one RNG stream — interleaving would make one component's draw
//! count perturb another's — so this module derives *independent named
//! substreams* from the experiment seed.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::hash::sha256;

/// Derives an independent RNG for a named component from the experiment
/// seed.
///
/// The substream seed is `SHA-256(seed_le || label)`, so distinct labels
/// give statistically independent streams and adding a new component never
/// disturbs existing ones.
pub fn substream(seed: u64, label: &str) -> StdRng {
    let mut buf = Vec::with_capacity(8 + label.len());
    buf.extend_from_slice(&seed.to_le_bytes());
    buf.extend_from_slice(label.as_bytes());
    let digest = sha256(&buf);
    StdRng::from_seed(*digest.as_bytes())
}

/// A convenience bundle carrying the experiment seed, from which components
/// draw their named substreams.
#[derive(Debug, Clone, Copy)]
pub struct SeedSource {
    seed: u64,
}

impl SeedSource {
    /// Creates a source from the experiment seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The raw experiment seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// An independent RNG for the component named `label`.
    pub fn rng(&self, label: &str) -> StdRng {
        substream(self.seed, label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let mut a = substream(42, "population");
        let mut b = substream(42, "population");
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_labels_differ() {
        let mut a = substream(42, "population");
        let mut b = substream(42, "auction");
        let xs: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = substream(1, "population");
        let mut b = substream(2, "population");
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn seed_source_is_copyable_and_consistent() {
        let src = SeedSource::new(7);
        let src2 = src;
        assert_eq!(src.seed(), 7);
        let mut r1 = src.rng("x");
        let mut r2 = src2.rng("x");
        assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
    }
}
