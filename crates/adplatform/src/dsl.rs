//! A small textual DSL for targeting expressions.
//!
//! Real platforms give advertisers a UI for composing boolean targeting;
//! our library equivalent is a compact expression language, convenient in
//! examples, tests, and experiment configs:
//!
//! ```
//! use adplatform::attributes::{AttributeCatalog, AttributeSource};
//! use adplatform::dsl;
//! use adplatform::targeting::TargetingExpr;
//!
//! let mut catalog = AttributeCatalog::new();
//! catalog.register("Interest: musicals (Music)", AttributeSource::Platform, None, 0.1);
//!
//! let expr = dsl::parse(
//!     "age 24-39 AND zip:60601 AND attr:'Interest: musicals (Music)' \
//!      AND NOT attr:'#2'",
//!     &catalog,
//! );
//! // Unknown attribute names fail at parse time, not silently at match time:
//! assert!(expr.is_err());
//!
//! let expr = dsl::parse(
//!     "age 24-39 AND zip:60601 AND attr:'Interest: musicals (Music)'",
//!     &catalog,
//! )?;
//! assert!(matches!(expr, TargetingExpr::And(_)));
//! // `render` emits canonical DSL that parses back to the same tree:
//! assert_eq!(dsl::parse(&dsl::render(&expr, &catalog), &catalog)?, expr);
//! # Ok::<(), adsim_types::Error>(())
//! ```
//!
//! Grammar (case-sensitive keywords, whitespace-insensitive):
//!
//! ```text
//! expr    := and ( "OR" and )*
//! and     := unary ( "AND" unary )*
//! unary   := "NOT" unary | primary
//! primary := "(" expr ")" | leaf
//! leaf    := "everyone"
//!          | "attr:" name          (name = 'quoted' or bare token)
//!          | "age" INT "-" INT
//!          | "gender:" ("female" | "male" | "unspecified")
//!          | "state:" name
//!          | "zip:" token
//!          | "visited-zip:" token
//!          | "radius:" FLOAT "," FLOAT "," FLOAT   (lat, lon, km)
//!          | "audience:" INT
//! ```
//!
//! `attr:` takes attribute *names*; [`parse`] resolves them against the
//! platform catalog, so misspelled attributes fail at parse time rather
//! than silently matching nobody. [`render`] produces canonical DSL; the
//! proptests check `parse(render(e)) == e`.

use crate::attributes::AttributeCatalog;
use crate::profile::Gender;
use crate::targeting::TargetingExpr;
use adsim_types::{AudienceId, Error, Result};

/// Parses a DSL string into a targeting expression, resolving attribute
/// names via `catalog`.
pub fn parse(input: &str, catalog: &AttributeCatalog) -> Result<TargetingExpr> {
    let tokens = tokenize(input)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        catalog,
    };
    let expr = parser.parse_or()?;
    if parser.pos != parser.tokens.len() {
        return Err(Error::invalid(format!(
            "unexpected trailing input at token {:?}",
            parser.tokens[parser.pos]
        )));
    }
    Ok(expr)
}

/// Renders an expression in canonical DSL (parseable by [`parse`] given
/// the same catalog).
pub fn render(expr: &TargetingExpr, catalog: &AttributeCatalog) -> String {
    match expr {
        TargetingExpr::Everyone => "everyone".into(),
        TargetingExpr::Attr(id) => {
            let name = catalog
                .get(*id)
                .map(|d| d.name.clone())
                .unwrap_or_else(|| format!("#{}", id.raw()));
            format!("attr:'{name}'")
        }
        TargetingExpr::AgeRange { min, max } => format!("age {min}-{max}"),
        TargetingExpr::GenderIs(g) => format!(
            "gender:{}",
            match g {
                Gender::Female => "female",
                Gender::Male => "male",
                Gender::Unspecified => "unspecified",
            }
        ),
        TargetingExpr::InState(s) => format!("state:'{s}'"),
        TargetingExpr::InZip(z) => format!("zip:{z}"),
        TargetingExpr::VisitedZip(z) => format!("visited-zip:{z}"),
        TargetingExpr::WithinRadius { lat, lon, km } => format!("radius:{lat},{lon},{km}"),
        TargetingExpr::InAudience(a) => format!("audience:{}", a.raw()),
        TargetingExpr::And(subs) => {
            if subs.is_empty() {
                // Empty AND is vacuously true.
                "everyone".into()
            } else {
                let parts: Vec<String> = subs.iter().map(|s| render_grouped(s, catalog)).collect();
                parts.join(" AND ")
            }
        }
        TargetingExpr::Or(subs) => {
            if subs.is_empty() {
                // Empty OR is vacuously false.
                "NOT everyone".into()
            } else {
                let parts: Vec<String> = subs.iter().map(|s| render_grouped(s, catalog)).collect();
                parts.join(" OR ")
            }
        }
        TargetingExpr::Not(sub) => format!("NOT {}", render_grouped(sub, catalog)),
    }
}

fn render_grouped(expr: &TargetingExpr, catalog: &AttributeCatalog) -> String {
    match expr {
        TargetingExpr::And(s) | TargetingExpr::Or(s) if !s.is_empty() => {
            format!("({})", render(expr, catalog))
        }
        _ => render(expr, catalog),
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    And,
    Or,
    Not,
    LParen,
    RParen,
    Everyone,
    Attr(String),
    Age(u8, u8),
    Gender(Gender),
    State(String),
    Zip(String),
    VisitedZip(String),
    Radius { lat: f64, lon: f64, km: f64 },
    Audience(u64),
}

fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
            continue;
        }
        if c == '(' {
            chars.next();
            tokens.push(Token::LParen);
            continue;
        }
        if c == ')' {
            chars.next();
            tokens.push(Token::RParen);
            continue;
        }
        // Read a word up to whitespace or paren.
        let mut word = String::new();
        while let Some(&c) = chars.peek() {
            if c.is_whitespace() || c == '(' || c == ')' {
                break;
            }
            word.push(c);
            chars.next();
            // Quoted payloads may contain anything up to the closing quote.
            if word.ends_with(":'") {
                let mut payload = String::new();
                let mut closed = false;
                for c in chars.by_ref() {
                    if c == '\'' {
                        closed = true;
                        break;
                    }
                    payload.push(c);
                }
                if !closed {
                    return Err(Error::invalid("unterminated quoted name"));
                }
                word.push_str(&payload);
                word.push('\'');
                break;
            }
        }
        tokens.push(parse_word(&word, &mut chars)?);
    }
    Ok(tokens)
}

fn parse_word(word: &str, chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<Token> {
    match word {
        "AND" => return Ok(Token::And),
        "OR" => return Ok(Token::Or),
        "NOT" => return Ok(Token::Not),
        "everyone" => return Ok(Token::Everyone),
        "age" => {
            // Expect "<min>-<max>" as the next word.
            while chars.peek().is_some_and(|c| c.is_whitespace()) {
                chars.next();
            }
            let mut range = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_whitespace() || c == '(' || c == ')' {
                    break;
                }
                range.push(c);
                chars.next();
            }
            let (min, max) = range
                .split_once('-')
                .ok_or_else(|| Error::invalid("age expects <min>-<max>"))?;
            let min: u8 = min
                .parse()
                .map_err(|_| Error::invalid("age min must be 0-255"))?;
            let max: u8 = max
                .parse()
                .map_err(|_| Error::invalid("age max must be 0-255"))?;
            return Ok(Token::Age(min, max));
        }
        _ => {}
    }
    let unquote = |payload: &str| -> String {
        payload
            .strip_prefix('\'')
            .and_then(|p| p.strip_suffix('\''))
            .map(str::to_string)
            .unwrap_or_else(|| payload.to_string())
    };
    if let Some(payload) = word.strip_prefix("attr:") {
        return Ok(Token::Attr(unquote(payload)));
    }
    if let Some(payload) = word.strip_prefix("gender:") {
        return match payload {
            "female" => Ok(Token::Gender(Gender::Female)),
            "male" => Ok(Token::Gender(Gender::Male)),
            "unspecified" => Ok(Token::Gender(Gender::Unspecified)),
            other => Err(Error::invalid(format!("unknown gender {other:?}"))),
        };
    }
    if let Some(payload) = word.strip_prefix("state:") {
        return Ok(Token::State(unquote(payload)));
    }
    if let Some(payload) = word.strip_prefix("visited-zip:") {
        return Ok(Token::VisitedZip(unquote(payload)));
    }
    if let Some(payload) = word.strip_prefix("zip:") {
        return Ok(Token::Zip(unquote(payload)));
    }
    if let Some(payload) = word.strip_prefix("radius:") {
        let parts: Vec<&str> = payload.split(',').collect();
        if parts.len() != 3 {
            return Err(Error::invalid("radius expects lat,lon,km"));
        }
        let lat: f64 = parts[0]
            .parse()
            .map_err(|_| Error::invalid("radius lat must be a number"))?;
        let lon: f64 = parts[1]
            .parse()
            .map_err(|_| Error::invalid("radius lon must be a number"))?;
        let km: f64 = parts[2]
            .parse()
            .map_err(|_| Error::invalid("radius km must be a number"))?;
        return Ok(Token::Radius { lat, lon, km });
    }
    if let Some(payload) = word.strip_prefix("audience:") {
        let id: u64 = payload
            .parse()
            .map_err(|_| Error::invalid("audience expects a numeric id"))?;
        return Ok(Token::Audience(id));
    }
    Err(Error::invalid(format!("unrecognized token {word:?}")))
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    catalog: &'a AttributeCatalog,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn parse_or(&mut self) -> Result<TargetingExpr> {
        let mut parts = vec![self.parse_and()?];
        while self.peek() == Some(&Token::Or) {
            self.next();
            parts.push(self.parse_and()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            TargetingExpr::Or(parts)
        })
    }

    fn parse_and(&mut self) -> Result<TargetingExpr> {
        let mut parts = vec![self.parse_unary()?];
        while self.peek() == Some(&Token::And) {
            self.next();
            parts.push(self.parse_unary()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            TargetingExpr::And(parts)
        })
    }

    fn parse_unary(&mut self) -> Result<TargetingExpr> {
        if self.peek() == Some(&Token::Not) {
            self.next();
            return Ok(TargetingExpr::Not(Box::new(self.parse_unary()?)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<TargetingExpr> {
        match self.next() {
            Some(Token::LParen) => {
                let inner = self.parse_or()?;
                match self.next() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(Error::invalid("expected ')'")),
                }
            }
            Some(Token::Everyone) => Ok(TargetingExpr::Everyone),
            Some(Token::Attr(name)) => {
                let id = self
                    .catalog
                    .id_of(&name)
                    .ok_or_else(|| Error::invalid(format!("unknown attribute {name:?}")))?;
                Ok(TargetingExpr::Attr(id))
            }
            Some(Token::Age(min, max)) => Ok(TargetingExpr::AgeRange { min, max }),
            Some(Token::Gender(g)) => Ok(TargetingExpr::GenderIs(g)),
            Some(Token::State(s)) => Ok(TargetingExpr::InState(s)),
            Some(Token::Zip(z)) => Ok(TargetingExpr::InZip(z)),
            Some(Token::VisitedZip(z)) => Ok(TargetingExpr::VisitedZip(z)),
            Some(Token::Radius { lat, lon, km }) => {
                Ok(TargetingExpr::WithinRadius { lat, lon, km })
            }
            Some(Token::Audience(id)) => Ok(TargetingExpr::InAudience(AudienceId(id))),
            other => Err(Error::invalid(format!(
                "expected a targeting term, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::AttributeSource;
    use adsim_types::AttributeId;

    fn catalog() -> AttributeCatalog {
        let mut c = AttributeCatalog::new();
        c.register(
            "Interest: musicals (Music)",
            AttributeSource::Platform,
            None,
            0.05,
        );
        c.register(
            "Relationship: in a relationship",
            AttributeSource::Platform,
            None,
            0.3,
        );
        c
    }

    #[test]
    fn paper_chicago_example_parses() {
        let c = catalog();
        let expr = parse(
            "age 24-39 AND zip:60601 AND attr:'Interest: musicals (Music)' \
             AND NOT attr:'Relationship: in a relationship'",
            &c,
        )
        .expect("parses");
        match &expr {
            TargetingExpr::And(parts) => {
                assert_eq!(parts.len(), 4);
                assert_eq!(parts[0], TargetingExpr::AgeRange { min: 24, max: 39 });
                assert_eq!(parts[1], TargetingExpr::InZip("60601".into()));
                assert_eq!(parts[2], TargetingExpr::Attr(AttributeId(1)));
                assert_eq!(
                    parts[3],
                    TargetingExpr::Not(Box::new(TargetingExpr::Attr(AttributeId(2))))
                );
            }
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let c = catalog();
        let expr = parse("everyone OR everyone AND zip:1", &c).expect("parses");
        assert_eq!(
            expr,
            TargetingExpr::Or(vec![
                TargetingExpr::Everyone,
                TargetingExpr::And(vec![
                    TargetingExpr::Everyone,
                    TargetingExpr::InZip("1".into())
                ]),
            ])
        );
    }

    #[test]
    fn parentheses_override_precedence() {
        let c = catalog();
        let expr = parse("(everyone OR zip:1) AND gender:female", &c).expect("parses");
        assert_eq!(
            expr,
            TargetingExpr::And(vec![
                TargetingExpr::Or(vec![
                    TargetingExpr::Everyone,
                    TargetingExpr::InZip("1".into())
                ]),
                TargetingExpr::GenderIs(Gender::Female),
            ])
        );
    }

    #[test]
    fn all_leaf_kinds_parse() {
        let c = catalog();
        for (src, expected) in [
            ("everyone", TargetingExpr::Everyone),
            ("age 18-65", TargetingExpr::AgeRange { min: 18, max: 65 }),
            ("gender:male", TargetingExpr::GenderIs(Gender::Male)),
            (
                "state:'New York'",
                TargetingExpr::InState("New York".into()),
            ),
            ("zip:02115", TargetingExpr::InZip("02115".into())),
            (
                "visited-zip:10001",
                TargetingExpr::VisitedZip("10001".into()),
            ),
            ("audience:7", TargetingExpr::InAudience(AudienceId(7))),
            (
                "radius:42.36,-71.06,25",
                TargetingExpr::WithinRadius {
                    lat: 42.36,
                    lon: -71.06,
                    km: 25.0,
                },
            ),
        ] {
            assert_eq!(parse(src, &c).expect(src), expected, "{src}");
        }
    }

    #[test]
    fn errors_are_reported() {
        let c = catalog();
        for bad in [
            "",
            "attr:'No such attribute'",
            "age 30",
            "age x-40",
            "gender:other",
            "audience:xyz",
            "radius:1,2",
            "radius:a,b,c",
            "(everyone",
            "everyone extra",
            "attr:'unterminated",
            "AND everyone",
        ] {
            assert!(parse(bad, &c).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn render_round_trips_the_paper_example() {
        let c = catalog();
        let src = "age 24-39 AND zip:60601 AND attr:'Interest: musicals (Music)' \
                   AND NOT attr:'Relationship: in a relationship'";
        let expr = parse(src, &c).expect("parses");
        let rendered = render(&expr, &c);
        assert_eq!(parse(&rendered, &c).expect("reparses"), expr);
    }

    #[test]
    fn render_groups_nested_connectives() {
        let c = catalog();
        let expr = TargetingExpr::And(vec![
            TargetingExpr::Or(vec![TargetingExpr::Everyone, TargetingExpr::Everyone]),
            TargetingExpr::Everyone,
        ]);
        let rendered = render(&expr, &c);
        assert_eq!(rendered, "(everyone OR everyone) AND everyone");
        assert_eq!(parse(&rendered, &c).expect("reparses"), expr);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::attributes::AttributeSource;
    use proptest::prelude::*;

    fn catalog() -> AttributeCatalog {
        let mut c = AttributeCatalog::new();
        for i in 0..10 {
            c.register(format!("Attr {i}"), AttributeSource::Platform, None, 0.1);
        }
        // Names that stress the quoted-payload path: DSL keywords,
        // grammar punctuation, and digits must all survive inside quotes.
        for gnarly in [
            "Interest: musicals (Music)",
            "NOT AND OR attr: age 1-2",
            "zip:60601, radius:1,2,3",
            "trailing space ",
            " leading/interior & #punct.",
            "Ünïcode café",
        ] {
            c.register(gnarly, AttributeSource::Platform, None, 0.1);
        }
        c
    }

    fn arb_expr() -> impl Strategy<Value = TargetingExpr> {
        let leaf = prop_oneof![
            Just(TargetingExpr::Everyone),
            (1u64..=16).prop_map(|i| TargetingExpr::Attr(adsim_types::AttributeId(i))),
            (0u8..100, 0u8..100).prop_map(|(a, b)| TargetingExpr::AgeRange {
                min: a.min(b),
                max: a.max(b),
            }),
            prop_oneof![
                Just(Gender::Female),
                Just(Gender::Male),
                Just(Gender::Unspecified)
            ]
            .prop_map(TargetingExpr::GenderIs),
            // States render quoted, so interior punctuation (but never
            // the quote char itself — the grammar has no escape) is fair.
            "[A-Za-z][A-Za-z0-9 :,.()&/-]{0,12}[A-Za-z]".prop_map(TargetingExpr::InState),
            "[0-9]{5}".prop_map(TargetingExpr::InZip),
            "[0-9]{5}".prop_map(TargetingExpr::VisitedZip),
            // Rust float Display is shortest-round-trip, so rendered
            // coordinates reparse to exactly the same f64.
            (-90.0f64..90.0, -180.0f64..180.0, 0.1f64..500.0)
                .prop_map(|(lat, lon, km)| TargetingExpr::WithinRadius { lat, lon, km }),
            (1u64..100).prop_map(|i| TargetingExpr::InAudience(adsim_types::AudienceId(i))),
        ];
        leaf.prop_recursive(3, 20, 3, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 1..4).prop_map(TargetingExpr::And),
                prop::collection::vec(inner.clone(), 1..4).prop_map(TargetingExpr::Or),
                inner.prop_map(|e| TargetingExpr::Not(Box::new(e))),
            ]
        })
    }

    /// Flattens 1-element And/Or, which parse back as their single child.
    fn normalize(e: &TargetingExpr) -> TargetingExpr {
        match e {
            TargetingExpr::And(s) if s.len() == 1 => normalize(&s[0]),
            TargetingExpr::Or(s) if s.len() == 1 => normalize(&s[0]),
            TargetingExpr::And(s) => TargetingExpr::And(s.iter().map(normalize).collect()),
            TargetingExpr::Or(s) => TargetingExpr::Or(s.iter().map(normalize).collect()),
            TargetingExpr::Not(s) => TargetingExpr::Not(Box::new(normalize(s))),
            other => other.clone(),
        }
    }

    proptest! {
        /// The parser never panics, whatever bytes arrive (errors only).
        #[test]
        fn parser_never_panics(input in ".{0,80}") {
            let c = catalog();
            let _ = parse(&input, &c);
        }

        /// parse(render(e)) is the identity up to connective flattening.
        #[test]
        fn render_parse_round_trip(expr in arb_expr()) {
            let c = catalog();
            let rendered = render(&expr, &c);
            let reparsed = parse(&rendered, &c).expect("rendered DSL must parse");
            prop_assert_eq!(normalize(&reparsed), normalize(&expr), "src: {}", rendered);
        }

        /// Arbitrary quoted attr payloads — any characters but the quote
        /// itself, which the grammar cannot escape — survive a
        /// render→parse round trip against a catalog that knows them.
        #[test]
        fn quoted_payloads_round_trip(name in prop_oneof![
            "[A-Za-z0-9 :,.()&/#-]{1,24}",
            "[\\p{L}\\p{N} .-]{1,12}",
        ]) {
            let mut c = AttributeCatalog::new();
            let id = c.register(name, AttributeSource::Platform, None, 0.1);
            let expr = TargetingExpr::Attr(id);
            let rendered = render(&expr, &c);
            let reparsed = parse(&rendered, &c).expect("rendered DSL must parse");
            prop_assert_eq!(reparsed, expr, "src: {}", rendered);
        }

        /// Age bounds and radius parameters round-trip at their extremes
        /// (u8 edges; coordinate extremes and tiny/huge radii).
        #[test]
        fn age_and_radius_edges_round_trip(
            min in prop_oneof![Just(0u8), Just(1), Just(254), Just(255), any::<u8>()],
            max in prop_oneof![Just(0u8), Just(255), any::<u8>()],
            lat in prop_oneof![Just(-90.0f64), Just(90.0), Just(0.0), -90.0f64..90.0],
            lon in prop_oneof![Just(-180.0f64), Just(180.0), -180.0f64..180.0],
            km in prop_oneof![Just(0.001f64), Just(20_000.0), 0.001f64..20_000.0],
        ) {
            let c = catalog();
            let expr = TargetingExpr::And(vec![
                TargetingExpr::AgeRange { min: min.min(max), max: min.max(max) },
                TargetingExpr::WithinRadius { lat, lon, km },
            ]);
            let rendered = render(&expr, &c);
            let reparsed = parse(&rendered, &c).expect("rendered DSL must parse");
            prop_assert_eq!(reparsed, expr, "src: {}", rendered);
        }
    }
}
