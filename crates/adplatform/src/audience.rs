//! Saved audiences: custom (PII-based), pixel-visitor, and page-engagement.
//!
//! These are the three opt-in channels the paper builds on:
//!
//! * **Custom / PII audiences** — the advertiser uploads hashed PII; the
//!   platform matches digests against user records and materializes the
//!   audience. Platforms impose a *minimum audience size* at creation
//!   (Facebook's is 20), which the simulator enforces and the opt-in flows
//!   in `treads-core` must respect.
//! * **Pixel audiences** — everyone who fired the advertiser's tracking
//!   pixel. This is the paper's anonymous opt-in channel: "the identity of
//!   users who browse a site with a tracking pixel is not revealed to
//!   advertisers; the advertisers are simply allowed to place ads to this
//!   group".
//! * **Page-engagement audiences** — everyone who liked a given page; the
//!   paper's validation signed its two users up this way.
//!
//! Advertisers never see membership — only a **rounded reach estimate**
//! ([`ReachEstimate`]); that rounding is part of the privacy contract the
//! Treads threat model (§3.1) relies on, and experiment E4 measures it.

use adsim_types::hash::Digest;
use adsim_types::{AudienceId, Error, Result, UserId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// What kind of audience this is and where its members come from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AudienceKind {
    /// Materialized from an advertiser's hashed-PII upload.
    Custom {
        /// Number of digests uploaded (matched or not) — advertisers see
        /// this, it is their own data.
        uploaded: usize,
    },
    /// Users who fired the given tracking pixel.
    PixelVisitors {
        /// The source pixel.
        pixel: adsim_types::PixelId,
    },
    /// Users who liked the given page.
    PageEngagement {
        /// The source page.
        page: u64,
    },
    /// A Google-style *custom intent* audience: the advertiser supplies
    /// descriptive phrases and the platform internally materializes the
    /// matching users (§2.1: "advertisers can specify a series of phrases
    /// or URLs that describe the users they want to target, which are then
    /// internally used … to create an audience of matching users").
    CustomIntent {
        /// The advertiser's descriptive phrases.
        phrases: Vec<String>,
    },
}

/// A saved audience.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Audience {
    /// Platform-assigned id.
    pub id: AudienceId,
    /// Owning advertiser account.
    pub owner: adsim_types::AccountId,
    /// Kind and provenance.
    pub kind: AudienceKind,
    /// Materialized membership. Private to the platform — advertisers only
    /// ever see [`ReachEstimate`]s.
    members: BTreeSet<UserId>,
}

impl Audience {
    /// True if `user` belongs to this audience.
    pub fn contains(&self, user: UserId) -> bool {
        self.members.contains(&user)
    }

    /// Exact membership count. Platform-internal; advertisers get
    /// [`AudienceStore::estimate_reach`].
    pub fn exact_size(&self) -> usize {
        self.members.len()
    }

    /// Platform-internal iteration over members (delivery needs it).
    pub fn members(&self) -> impl Iterator<Item = UserId> + '_ {
        self.members.iter().copied()
    }
}

/// Resolves audience membership during targeting evaluation.
pub trait AudienceResolver {
    /// True if `user` is a member of `audience`.
    fn contains(&self, audience: AudienceId, user: UserId) -> bool;
}

/// The advertiser-visible reach estimate for an audience.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReachEstimate {
    /// The audience is below the platform's reporting floor; the platform
    /// reveals only that ("fewer than `floor` people").
    BelowFloor {
        /// The floor value.
        floor: usize,
    },
    /// Approximate reach, rounded to the platform's granularity.
    Approximately {
        /// Rounded member count.
        rounded: usize,
    },
}

/// Store of all saved audiences.
#[derive(Debug, Clone, Default)]
pub struct AudienceStore {
    audiences: BTreeMap<AudienceId, Audience>,
    next_id: u64,
    /// Memberships gained since the last [`AudienceStore::take_dirty`]
    /// drain — the only audience state that moves during an engine run,
    /// recorded at the mutation site so an incremental checkpoint can
    /// encode just the additions.
    dirty: BTreeSet<(AudienceId, UserId)>,
    /// Minimum matched size for creating a custom audience.
    pub min_custom_size: usize,
    /// Reach estimates below this are reported as [`ReachEstimate::BelowFloor`].
    pub reach_floor: usize,
    /// Reach estimates are rounded to a multiple of this.
    pub reach_granularity: usize,
}

impl AudienceStore {
    /// A store with the given platform limits.
    pub fn new(min_custom_size: usize, reach_floor: usize, reach_granularity: usize) -> Self {
        Self {
            audiences: BTreeMap::new(),
            next_id: 0,
            dirty: BTreeSet::new(),
            min_custom_size,
            reach_floor,
            reach_granularity,
        }
    }

    fn allocate(&mut self) -> AudienceId {
        self.next_id += 1;
        AudienceId(self.next_id)
    }

    /// Creates a custom audience from uploaded hashed PII, using `matcher`
    /// to resolve each digest to platform users (the profile store's
    /// `match_pii`). Fails with [`Error::AudienceTooSmall`] if fewer than
    /// `min_custom_size` distinct users match — the platform's rule.
    pub fn create_custom<M>(
        &mut self,
        owner: adsim_types::AccountId,
        digests: &[Digest],
        matcher: M,
    ) -> Result<AudienceId>
    where
        M: Fn(&Digest) -> Vec<UserId>,
    {
        if digests.is_empty() {
            return Err(Error::invalid("empty PII upload"));
        }
        let mut members = BTreeSet::new();
        for d in digests {
            for u in matcher(d) {
                members.insert(u);
            }
        }
        if members.len() < self.min_custom_size {
            return Err(Error::AudienceTooSmall {
                matched: members.len(),
                minimum: self.min_custom_size,
            });
        }
        let id = self.allocate();
        self.audiences.insert(
            id,
            Audience {
                id,
                owner,
                kind: AudienceKind::Custom {
                    uploaded: digests.len(),
                },
                members,
            },
        );
        Ok(id)
    }

    /// Creates an (initially empty) pixel-visitor audience. Membership
    /// grows as the platform routes pixel events via
    /// [`AudienceStore::record_pixel_visit`].
    pub fn create_pixel_audience(
        &mut self,
        owner: adsim_types::AccountId,
        pixel: adsim_types::PixelId,
    ) -> AudienceId {
        let id = self.allocate();
        self.audiences.insert(
            id,
            Audience {
                id,
                owner,
                kind: AudienceKind::PixelVisitors { pixel },
                members: BTreeSet::new(),
            },
        );
        id
    }

    /// Creates an (initially empty) page-engagement audience. Membership
    /// grows as users like the page via [`AudienceStore::record_page_like`].
    pub fn create_page_audience(&mut self, owner: adsim_types::AccountId, page: u64) -> AudienceId {
        let id = self.allocate();
        self.audiences.insert(
            id,
            Audience {
                id,
                owner,
                kind: AudienceKind::PageEngagement { page },
                members: BTreeSet::new(),
            },
        );
        id
    }

    /// Creates a custom-intent audience: membership is materialized by the
    /// platform from the advertiser's phrases via `matcher` (the platform
    /// passes a closure that scans user attribute names). The advertiser
    /// never sees the membership — same contract as every other audience.
    pub fn create_intent_audience<M>(
        &mut self,
        owner: adsim_types::AccountId,
        phrases: Vec<String>,
        matcher: M,
    ) -> Result<AudienceId>
    where
        M: Fn(&[String]) -> Vec<UserId>,
    {
        if phrases.is_empty() {
            return Err(Error::invalid("custom intent audience needs phrases"));
        }
        let members: BTreeSet<UserId> = matcher(&phrases).into_iter().collect();
        let id = self.allocate();
        self.audiences.insert(
            id,
            Audience {
                id,
                owner,
                kind: AudienceKind::CustomIntent { phrases },
                members,
            },
        );
        Ok(id)
    }

    /// Routes a pixel fire into every audience sourced from that pixel.
    pub fn record_pixel_visit(&mut self, pixel: adsim_types::PixelId, user: UserId) {
        for aud in self.audiences.values_mut() {
            if matches!(aud.kind, AudienceKind::PixelVisitors { pixel: p } if p == pixel)
                && aud.members.insert(user)
            {
                self.dirty.insert((aud.id, user));
            }
        }
    }

    /// Routes a page like into every audience sourced from that page.
    pub fn record_page_like(&mut self, page: u64, user: UserId) {
        for aud in self.audiences.values_mut() {
            if matches!(aud.kind, AudienceKind::PageEngagement { page: p } if p == page)
                && aud.members.insert(user)
            {
                self.dirty.insert((aud.id, user));
            }
        }
    }

    /// Drains the memberships gained since the last drain (sorted by
    /// `(audience, user)`). Incremental checkpoints call this once per
    /// delta frame; a full export implies a drain so the next delta is
    /// relative to it.
    pub fn take_dirty(&mut self) -> Vec<(AudienceId, UserId)> {
        std::mem::take(&mut self.dirty).into_iter().collect()
    }

    /// Exports every audience's membership, sorted by audience id.
    ///
    /// Pixel- and page-sourced audiences grow *during* an engine run, so
    /// memberships are dynamic state a checkpoint must carry; the audience
    /// definitions themselves are host configuration.
    pub fn memberships(&self) -> Vec<(AudienceId, Vec<UserId>)> {
        self.audiences
            .iter()
            .map(|(id, aud)| (*id, aud.members.iter().copied().collect()))
            .collect()
    }

    /// Restores memberships exported by [`AudienceStore::memberships`].
    /// Audiences absent from the snapshot are left untouched (they did not
    /// exist when the checkpoint was taken, so they must be empty or
    /// host-recreated).
    pub fn restore_memberships(&mut self, memberships: &[(AudienceId, Vec<UserId>)]) {
        for (id, members) in memberships {
            if let Some(aud) = self.audiences.get_mut(id) {
                aud.members = members.iter().copied().collect();
            }
        }
    }

    /// Looks up an audience (platform-internal).
    pub fn get(&self, id: AudienceId) -> Result<&Audience> {
        self.audiences
            .get(&id)
            .ok_or_else(|| Error::not_found("audience", id))
    }

    /// Number of saved audiences.
    pub fn len(&self) -> usize {
        self.audiences.len()
    }

    /// True if no audiences exist.
    pub fn is_empty(&self) -> bool {
        self.audiences.is_empty()
    }

    /// The advertiser-visible reach estimate: exact counts are never
    /// revealed; sizes below the floor collapse to "below floor", larger
    /// ones are rounded to the configured granularity.
    pub fn estimate_reach(&self, id: AudienceId) -> Result<ReachEstimate> {
        let aud = self.get(id)?;
        let n = aud.exact_size();
        if n < self.reach_floor {
            Ok(ReachEstimate::BelowFloor {
                floor: self.reach_floor,
            })
        } else {
            let g = self.reach_granularity.max(1);
            Ok(ReachEstimate::Approximately {
                rounded: (n / g) * g,
            })
        }
    }
}

impl AudienceResolver for AudienceStore {
    fn contains(&self, audience: AudienceId, user: UserId) -> bool {
        self.audiences
            .get(&audience)
            .map(|a| a.contains(user))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsim_types::hash::hash_pii;
    use adsim_types::{AccountId, PixelId};

    fn store() -> AudienceStore {
        AudienceStore::new(20, 1000, 100)
    }

    /// A matcher over a fixed digest→users table.
    fn table_matcher(
        table: &BTreeMap<Digest, Vec<UserId>>,
    ) -> impl Fn(&Digest) -> Vec<UserId> + '_ {
        move |d| table.get(d).cloned().unwrap_or_default()
    }

    #[test]
    fn custom_audience_enforces_minimum() {
        let mut s = store();
        let mut table = BTreeMap::new();
        // Only two users match — below the minimum of 20.
        table.insert(hash_pii("a@example.com"), vec![UserId(1)]);
        table.insert(hash_pii("b@example.com"), vec![UserId(2)]);
        let digests: Vec<Digest> = table.keys().copied().collect();
        let err = s
            .create_custom(AccountId(1), &digests, table_matcher(&table))
            .expect_err("too small");
        assert_eq!(
            err,
            Error::AudienceTooSmall {
                matched: 2,
                minimum: 20
            }
        );
        assert!(s.is_empty());
    }

    #[test]
    fn custom_audience_materializes_matches() {
        let mut s = store();
        let mut table = BTreeMap::new();
        let mut digests = Vec::new();
        for i in 0..25u64 {
            let d = hash_pii(&format!("user{i}@example.com"));
            table.insert(d, vec![UserId(i + 1)]);
            digests.push(d);
        }
        // Some uploaded digests match nobody.
        digests.push(hash_pii("stranger@example.com"));
        let id = s
            .create_custom(AccountId(1), &digests, table_matcher(&table))
            .expect("created");
        let aud = s.get(id).expect("exists");
        assert_eq!(aud.exact_size(), 25);
        assert!(aud.contains(UserId(3)));
        assert!(!aud.contains(UserId(99)));
        assert_eq!(aud.kind, AudienceKind::Custom { uploaded: 26 });
    }

    #[test]
    fn empty_upload_is_rejected() {
        let mut s = store();
        let table = BTreeMap::new();
        let err = s
            .create_custom(AccountId(1), &[], table_matcher(&table))
            .expect_err("empty");
        assert!(matches!(err, Error::InvalidInput { .. }));
    }

    #[test]
    fn pixel_audience_grows_with_visits() {
        let mut s = store();
        let id = s.create_pixel_audience(AccountId(1), PixelId(7));
        assert_eq!(s.get(id).expect("aud").exact_size(), 0);
        s.record_pixel_visit(PixelId(7), UserId(1));
        s.record_pixel_visit(PixelId(7), UserId(2));
        s.record_pixel_visit(PixelId(7), UserId(1)); // repeat visit
        s.record_pixel_visit(PixelId(8), UserId(3)); // other pixel
        let aud = s.get(id).expect("aud");
        assert_eq!(aud.exact_size(), 2);
        assert!(aud.contains(UserId(1)) && aud.contains(UserId(2)));
        assert!(!aud.contains(UserId(3)));
    }

    #[test]
    fn page_audience_grows_with_likes() {
        let mut s = store();
        let id = s.create_page_audience(AccountId(1), 42);
        s.record_page_like(42, UserId(5));
        s.record_page_like(41, UserId(6));
        let aud = s.get(id).expect("aud");
        assert!(aud.contains(UserId(5)));
        assert!(!aud.contains(UserId(6)));
    }

    #[test]
    fn two_audiences_same_pixel_both_update() {
        let mut s = store();
        let a = s.create_pixel_audience(AccountId(1), PixelId(1));
        let b = s.create_pixel_audience(AccountId(2), PixelId(1));
        s.record_pixel_visit(PixelId(1), UserId(9));
        assert!(s.get(a).expect("a").contains(UserId(9)));
        assert!(s.get(b).expect("b").contains(UserId(9)));
    }

    #[test]
    fn reach_estimates_round_and_floor() {
        let mut s = store();
        let id = s.create_pixel_audience(AccountId(1), PixelId(1));
        // 2 members → below the 1000 floor.
        s.record_pixel_visit(PixelId(1), UserId(1));
        s.record_pixel_visit(PixelId(1), UserId(2));
        assert_eq!(
            s.estimate_reach(id).expect("est"),
            ReachEstimate::BelowFloor { floor: 1000 }
        );
        // 1234 members → rounded down to 1200.
        for i in 3..=1234u64 {
            s.record_pixel_visit(PixelId(1), UserId(i));
        }
        assert_eq!(
            s.estimate_reach(id).expect("est"),
            ReachEstimate::Approximately { rounded: 1200 }
        );
    }

    #[test]
    fn intent_audience_materializes_from_matcher() {
        let mut s = store();
        let id = s
            .create_intent_audience(AccountId(1), vec!["salsa".into()], |phrases| {
                assert_eq!(phrases, &["salsa".to_string()]);
                vec![UserId(3), UserId(9)]
            })
            .expect("created");
        let aud = s.get(id).expect("aud");
        assert_eq!(aud.exact_size(), 2);
        assert!(aud.contains(UserId(3)));
        assert!(matches!(aud.kind, AudienceKind::CustomIntent { .. }));
        // Empty phrase lists are rejected.
        assert!(s
            .create_intent_audience(AccountId(1), vec![], |_| vec![])
            .is_err());
    }

    #[test]
    fn resolver_handles_unknown_audience() {
        let s = store();
        assert!(!s.contains(AudienceId(99), UserId(1)));
        assert!(s.get(AudienceId(99)).is_err());
    }
}
