//! The platform façade.
//!
//! [`Platform`] wires every store together behind the two API surfaces the
//! rest of the workspace uses:
//!
//! * the **advertiser API** (what a transparency provider or any other
//!   advertiser can call): open accounts, create pixels/pages/audiences,
//!   create campaigns, submit ads (which pass through policy review),
//!   read aggregate reports and invoices;
//! * the **simulation API** (what `websim` drives): users like pages,
//!   visit pixel-instrumented sites, and generate impression opportunities.
//!
//! The façade owns the platform's privacy posture: nothing it exposes to
//! advertisers ever names an individual user.

use crate::attributes::AttributeCatalog;
use crate::auction::AuctionConfig;
use crate::audience::{AudienceStore, ReachEstimate};
use crate::billing::{BillingLedger, BudgetView, Invoice};
use crate::campaign::{AdCreative, AdStatus, CampaignStore};
use crate::compiled::EvalMode;
use crate::delivery::{
    apply_impression, candidate_verdicts, decide_opportunity, decide_opportunity_traced,
    decide_opportunity_traced_with_scratch, CandidateVerdict, Decision, DeliveryScratch,
    DeliveryStats, FrequencyCaps, PendingImpression, TracedDecision,
};
use crate::enforcement::{scan_account, EnforcementConfig, SuspicionReport};
use crate::index::SelectionMode;
use crate::pages::PageRegistry;
use crate::pixel::PixelRegistry;
use crate::policy::{PolicyEngine, Strictness};
use crate::profile::{Gender, PiiKind, PiiProvenance, ProfileStore, UserProfile};
use crate::reporting::{AdReport, ImpressionLog};
use crate::targeting::TargetingSpec;
use crate::transparency::{ad_preferences, explain_ad, Explanation};
use adsim_types::hash::Digest;
use adsim_types::rng::SeedSource;
use adsim_types::{
    AccountId, AdId, AdvertiserId, AudienceId, CampaignId, Error, Money, PixelId, Result, SimClock,
    SimTime, UserId,
};
use rand::rngs::StdRng;
use std::collections::{BTreeMap, BTreeSet};

/// Platform-wide configuration.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Experiment seed; all platform randomness derives from it.
    pub seed: u64,
    /// Minimum matched size for custom (PII) audiences.
    pub min_custom_audience_size: usize,
    /// Reach estimates below this report as "below floor".
    pub reach_floor: usize,
    /// Reach estimates round down to a multiple of this.
    pub reach_granularity: usize,
    /// Campaigns with accrued spend under this are not invoiced.
    pub small_spend_waiver: Money,
    /// Max impressions of one ad per user.
    pub frequency_cap: u32,
    /// Auction environment.
    pub auction: AuctionConfig,
    /// Policy review strictness.
    pub strictness: Strictness,
    /// Enforcement detector parameters.
    pub enforcement: EnforcementConfig,
    /// How delivery gathers candidate ads (indexed by default; the
    /// linear scan is the verification oracle).
    pub candidate_selection: SelectionMode,
    /// How delivery evaluates a candidate's targeting spec (compiled
    /// programs by default; the tree walk is the verification oracle).
    pub targeting_eval: EvalMode,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        Self::facebook_like(0)
    }
}

impl PlatformConfig {
    /// A Facebook-shaped platform: 20-user custom-audience minimum, $2 CPM
    /// recommended-bid environment — the paper's validation substrate.
    pub fn facebook_like(seed: u64) -> Self {
        Self {
            seed,
            min_custom_audience_size: 20,
            reach_floor: 1000,
            reach_granularity: 100,
            small_spend_waiver: Money::cents(5),
            frequency_cap: 2,
            auction: AuctionConfig::default(),
            strictness: Strictness::Standard,
            enforcement: EnforcementConfig::default(),
            candidate_selection: SelectionMode::default(),
            targeting_eval: EvalMode::default(),
        }
    }

    /// A Google-shaped platform: Customer Match requires far larger
    /// uploads (modeled as a 1000-user minimum) and the display
    /// ecosystem's competition skews cheaper.
    pub fn google_like(seed: u64) -> Self {
        Self {
            min_custom_audience_size: 1000,
            reach_floor: 1000,
            reach_granularity: 1000,
            auction: AuctionConfig {
                competitor_cpm_median: Money::dollars(1),
                ..AuctionConfig::default()
            },
            ..Self::facebook_like(seed)
        }
    }

    /// A Twitter-shaped platform: tailored audiences with a mid-size
    /// minimum (modeled as 100) and a pricier auction.
    pub fn twitter_like(seed: u64) -> Self {
        Self {
            min_custom_audience_size: 100,
            reach_floor: 500,
            reach_granularity: 100,
            auction: AuctionConfig {
                competitor_cpm_median: Money::dollars(3),
                ..AuctionConfig::default()
            },
            ..Self::facebook_like(seed)
        }
    }
}

/// The assembled ad platform.
#[derive(Debug)]
pub struct Platform {
    /// Configuration the platform was booted with.
    pub config: PlatformConfig,
    /// The simulated clock (advanced by the simulation driver).
    pub clock: SimClock,
    /// Targeting-attribute catalog.
    pub attributes: AttributeCatalog,
    /// User store.
    pub profiles: ProfileStore,
    /// Saved audiences.
    pub audiences: AudienceStore,
    /// Tracking pixels.
    pub pixels: PixelRegistry,
    /// Advertiser pages.
    pub pages: PageRegistry,
    /// Campaigns and ads.
    pub campaigns: CampaignStore,
    /// Billing ledger.
    pub billing: BillingLedger,
    /// Frequency caps.
    pub freq: FrequencyCaps,
    /// Exact impression log (platform-internal).
    pub log: ImpressionLog,
    /// Delivery statistics.
    pub stats: DeliveryStats,
    /// Policy reviewer.
    pub policy: PolicyEngine,
    /// Suspended accounts.
    pub suspended: BTreeSet<AccountId>,
    advertisers: BTreeMap<AdvertiserId, String>,
    accounts: BTreeMap<AccountId, AdvertiserId>,
    next_advertiser: u64,
    next_account: u64,
    rng_auction: StdRng,
    rng_enforcement: StdRng,
}

impl Platform {
    /// Boots a platform with the given config and attribute catalog.
    pub fn new(config: PlatformConfig, attributes: AttributeCatalog) -> Self {
        let seeds = SeedSource::new(config.seed);
        let policy = PolicyEngine::new(config.strictness, &attributes);
        Self {
            clock: SimClock::new(),
            profiles: {
                let mut p = ProfileStore::new();
                // Catalog ids are dense (1..=len), so sizing the facet
                // bitsets to the catalog means profile registration never
                // regrows them for in-catalog attributes.
                p.size_attribute_bitsets(attributes.len() as u64);
                p
            },
            attributes,
            audiences: AudienceStore::new(
                config.min_custom_audience_size,
                config.reach_floor,
                config.reach_granularity,
            ),
            pixels: PixelRegistry::new(),
            pages: PageRegistry::new(),
            campaigns: {
                let mut c = CampaignStore::new();
                c.set_selection_mode(config.candidate_selection);
                c.set_eval_mode(config.targeting_eval);
                c
            },
            billing: BillingLedger::new(config.small_spend_waiver),
            freq: FrequencyCaps::new(config.frequency_cap),
            log: ImpressionLog::new(),
            stats: DeliveryStats::default(),
            policy,
            suspended: BTreeSet::new(),
            advertisers: BTreeMap::new(),
            accounts: BTreeMap::new(),
            next_advertiser: 0,
            next_account: 0,
            rng_auction: seeds.rng("platform-auction"),
            rng_enforcement: seeds.rng("platform-enforcement"),
            config,
        }
    }

    /// Boots the paper's U.S.-2018 platform: 614 platform attributes + the
    /// 507-partner-category catalog.
    pub fn us_2018(config: PlatformConfig) -> Self {
        let partner = treads_broker::PartnerCatalog::us();
        Self::new(config, AttributeCatalog::us_2018(&partner))
    }

    // ------------------------------------------------------------------
    // Advertiser API
    // ------------------------------------------------------------------

    /// Registers an advertiser ("anyone can be an advertiser on most major
    /// advertising platforms").
    pub fn register_advertiser(&mut self, name: impl Into<String>) -> AdvertiserId {
        self.next_advertiser += 1;
        let id = AdvertiserId(self.next_advertiser);
        self.advertisers.insert(id, name.into());
        id
    }

    /// Opens an advertiser account. One advertiser may hold many accounts —
    /// the crowdsourcing experiment relies on this.
    pub fn open_account(&mut self, advertiser: AdvertiserId) -> Result<AccountId> {
        if !self.advertisers.contains_key(&advertiser) {
            return Err(Error::not_found("advertiser", advertiser));
        }
        self.next_account += 1;
        let id = AccountId(self.next_account);
        self.accounts.insert(id, advertiser);
        Ok(id)
    }

    /// Creates a custom audience from uploaded hashed PII. Enforces the
    /// platform's minimum matched size.
    pub fn create_custom_audience(
        &mut self,
        account: AccountId,
        digests: &[Digest],
    ) -> Result<AudienceId> {
        self.require_active(account)?;
        let profiles = &self.profiles;
        self.audiences
            .create_custom(account, digests, |d| profiles.match_pii(d).to_vec())
    }

    /// Creates a Google-style custom-intent audience from descriptive
    /// phrases: the platform matches users whose attribute names contain
    /// any phrase (case-insensitive).
    pub fn create_intent_audience(
        &mut self,
        account: AccountId,
        phrases: Vec<String>,
    ) -> Result<AudienceId> {
        self.require_active(account)?;
        let profiles = &self.profiles;
        let attributes = &self.attributes;
        self.audiences
            .create_intent_audience(account, phrases, |phrases| {
                let needles: Vec<String> = phrases.iter().map(|p| p.to_lowercase()).collect();
                profiles
                    .iter()
                    .filter(|user| {
                        user.attributes.iter().any(|&id| {
                            attributes
                                .get(id)
                                .map(|d| {
                                    let name = d.name.to_lowercase();
                                    needles.iter().any(|n| name.contains(n.as_str()))
                                })
                                .unwrap_or(false)
                        })
                    })
                    .map(|user| user.id)
                    .collect()
            })
    }

    /// Creates a tracking pixel the account can embed on external sites.
    pub fn create_pixel(
        &mut self,
        account: AccountId,
        label: impl Into<String>,
    ) -> Result<PixelId> {
        self.require_active(account)?;
        Ok(self.pixels.create(account, label))
    }

    /// Creates a visitor audience fed by a pixel.
    pub fn create_pixel_audience(
        &mut self,
        account: AccountId,
        pixel: PixelId,
    ) -> Result<AudienceId> {
        self.require_active(account)?;
        self.pixels.get(pixel)?;
        Ok(self.audiences.create_pixel_audience(account, pixel))
    }

    /// Creates a page owned by the account.
    pub fn create_page(&mut self, account: AccountId, name: impl Into<String>) -> Result<u64> {
        self.require_active(account)?;
        Ok(self.pages.create(account, name))
    }

    /// Creates an engagement audience fed by a page's likes.
    pub fn create_page_audience(&mut self, account: AccountId, page: u64) -> Result<AudienceId> {
        self.require_active(account)?;
        self.pages.get(page)?;
        Ok(self.audiences.create_page_audience(account, page))
    }

    /// Creates a campaign.
    pub fn create_campaign(
        &mut self,
        account: AccountId,
        name: impl Into<String>,
        bid_cpm: Money,
        budget: Option<Money>,
    ) -> Result<CampaignId> {
        self.require_active(account)?;
        Ok(self
            .campaigns
            .create_campaign(account, name, bid_cpm, budget))
    }

    /// Submits an ad: the creative passes through policy review and the ad
    /// is created as Approved or Rejected accordingly. Returns the ad id
    /// either way (rejected ads are visible to the advertiser with the
    /// reviewer's reason, as on real platforms).
    pub fn submit_ad(
        &mut self,
        campaign: CampaignId,
        creative: AdCreative,
        targeting: TargetingSpec,
    ) -> Result<AdId> {
        let account = self.campaigns.campaign(campaign)?.account;
        self.require_active(account)?;
        // Saved audiences are account-scoped on real platforms: an ad may
        // only target audiences its own account created.
        for aud in targeting.referenced_audiences() {
            let owner = self.audiences.get(aud)?.owner;
            if owner != account {
                return Err(Error::invalid(format!(
                    "targeting references audience {aud} owned by {owner}, not {account}"
                )));
            }
        }
        let review = self.policy.review(&creative);
        // Compiling against the profile store's table is what keeps spec
        // symbols and profile-facet symbols comparable.
        let ad =
            self.campaigns
                .create_ad(campaign, creative, targeting, self.profiles.symbols_mut())?;
        self.campaigns.ad_mut(ad)?.status = match review {
            Ok(()) => AdStatus::Approved,
            Err(Error::PolicyViolation { reason }) => AdStatus::Rejected { reason },
            Err(other) => return Err(other),
        };
        Ok(ad)
    }

    /// The review status of an ad.
    pub fn ad_status(&self, ad: AdId) -> Result<&AdStatus> {
        Ok(&self.campaigns.ad(ad)?.status)
    }

    /// Advertiser-visible report for an ad. Ownership-checked: accounts can
    /// only read their own ads' reports.
    pub fn ad_report(&self, account: AccountId, ad: AdId) -> Result<AdReport> {
        let owner = self
            .campaigns
            .ad(ad)
            .and_then(|a| self.campaigns.campaign(a.campaign))?
            .account;
        if owner != account {
            return Err(Error::invalid("report requested by non-owner account"));
        }
        Ok(self
            .log
            .report_ad(ad, self.config.reach_floor, self.config.reach_granularity))
    }

    /// Advertiser-visible reach estimate for an audience (owner only).
    pub fn estimate_reach(
        &self,
        account: AccountId,
        audience: AudienceId,
    ) -> Result<ReachEstimate> {
        if self.audiences.get(audience)?.owner != account {
            return Err(Error::invalid("reach requested by non-owner account"));
        }
        self.audiences.estimate_reach(audience)
    }

    /// The account's invoice (small-spend waiver applied).
    pub fn invoice(&self, account: AccountId) -> Invoice {
        self.billing.invoice(account)
    }

    // ------------------------------------------------------------------
    // Simulation API (driven by websim / workload)
    // ------------------------------------------------------------------

    /// Registers a platform user.
    pub fn register_user(&mut self, age: u8, gender: Gender, state: &str, zip: &str) -> UserId {
        self.profiles.register(age, gender, state, zip)
    }

    /// Attaches raw PII to a user (normalized + hashed internally).
    pub fn attach_user_pii(
        &mut self,
        user: UserId,
        kind: PiiKind,
        raw: &str,
        provenance: PiiProvenance,
    ) -> Result<Digest> {
        self.profiles.attach_pii(user, kind, raw, provenance)
    }

    /// The platform locates a user in a ZIP code (check-in, location
    /// services) — the observation behind recent-location targeting.
    pub fn record_user_location(&mut self, user: UserId, zip: &str) -> Result<()> {
        self.profiles.record_zip_visit(user, zip)
    }

    /// A user likes a page; engagement audiences update.
    pub fn user_likes_page(&mut self, user: UserId, page: u64) -> Result<()> {
        self.pages.get(page)?;
        self.profiles.like_page(user, page)?;
        self.audiences.record_page_like(page, user);
        Ok(())
    }

    /// A user loads a page carrying a tracking pixel; visitor audiences
    /// update.
    pub fn user_fires_pixel(&mut self, user: UserId, pixel: PixelId) -> Result<()> {
        let at = self.clock.now();
        self.apply_pixel_fire(user, pixel, at)
    }

    /// Records a pixel fire at an explicit instant (the engine replays
    /// batched shard events through this, each carrying its own timestamp).
    pub fn apply_pixel_fire(&mut self, user: UserId, pixel: PixelId, at: SimTime) -> Result<()> {
        self.profiles.get(user)?;
        self.pixels.record(pixel, user, at)?;
        self.audiences.record_pixel_visit(pixel, user);
        Ok(())
    }

    /// A user generates one impression opportunity (they are browsing and
    /// an ad slot renders). Runs the full auction/delivery path: decide
    /// against live state, apply immediately.
    pub fn browse(&mut self, user: UserId) -> Result<crate::auction::AuctionOutcome> {
        // Config is the source of truth for the cap; keep the live counter
        // in sync so experiments can adjust it mid-run.
        self.freq.cap = self.config.frequency_cap;
        let at = self.clock.now();
        let profile = self.profiles.get(user)?.clone();
        self.stats.opportunities += 1;
        let decision = decide_opportunity(
            &profile,
            at,
            &self.campaigns,
            &self.audiences,
            &self.suspended,
            &self.billing,
            &self.freq,
            &self.config.auction,
            &mut self.rng_auction,
        );
        match decision.outcome {
            crate::auction::AuctionOutcome::Won { .. } => {
                self.stats.won += 1;
                // A win must carry its impression; a decide-path bug here
                // is reported, not a panic, so one bad opportunity cannot
                // abort a multi-day run.
                let pending = decision.pending.ok_or_else(|| Error::Internal {
                    what: "auction win carried no pending impression".into(),
                })?;
                apply_impression(&pending, &mut self.billing, &mut self.freq, &mut self.log);
            }
            crate::auction::AuctionOutcome::LostToBackground => {
                self.stats.lost_to_background += 1;
            }
            crate::auction::AuctionOutcome::Unfilled => self.stats.unfilled += 1,
        }
        Ok(decision.outcome)
    }

    /// The **read-only** half of [`Platform::browse`], for callers that own
    /// their mutable delivery state: eligibility and the auction run
    /// against `&self` (catalog, campaigns, audiences, suspensions) plus
    /// the caller's budget view, frequency caps, and RNG. Nothing on the
    /// platform is mutated — the engine's shard threads share one
    /// `&Platform` and fold the returned impressions in later via
    /// [`Platform::apply_impression`].
    pub fn decide_browse<B: BudgetView, R: rand::Rng>(
        &self,
        user: UserId,
        at: SimTime,
        budget: &B,
        freq: &FrequencyCaps,
        rng: &mut R,
    ) -> Result<Decision> {
        Ok(self
            .decide_browse_traced(user, at, budget, freq, rng)?
            .decision)
    }

    /// [`Platform::decide_browse`] with the eligibility breakdown and
    /// auction trace attached. The engine's instrumented shard loop calls
    /// this form and forwards the extras to its telemetry; RNG consumption
    /// is identical to the untraced form, so mixing the two across runs
    /// never changes simulation results.
    pub fn decide_browse_traced<B: BudgetView, R: rand::Rng>(
        &self,
        user: UserId,
        at: SimTime,
        budget: &B,
        freq: &FrequencyCaps,
        rng: &mut R,
    ) -> Result<TracedDecision> {
        let profile = self.profiles.get(user)?;
        Ok(decide_opportunity_traced(
            profile,
            at,
            &self.campaigns,
            &self.audiences,
            &self.suspended,
            budget,
            freq,
            &self.config.auction,
            rng,
        ))
    }

    /// [`Platform::decide_browse_traced`] with caller-owned
    /// [`DeliveryScratch`]: identical results, but all per-opportunity
    /// working memory comes from `scratch`, so a caller that keeps one
    /// scratch per thread (as the engine's shards do) decides
    /// opportunities without allocating.
    pub fn decide_browse_traced_with_scratch<B: BudgetView, R: rand::Rng>(
        &self,
        user: UserId,
        at: SimTime,
        budget: &B,
        freq: &FrequencyCaps,
        rng: &mut R,
        scratch: &mut DeliveryScratch,
    ) -> Result<TracedDecision> {
        let profile = self.profiles.get(user)?;
        Ok(decide_opportunity_traced_with_scratch(
            profile,
            at,
            &self.campaigns,
            &self.audiences,
            &self.suspended,
            budget,
            freq,
            &self.config.auction,
            rng,
            scratch,
        ))
    }

    /// Re-derives per-candidate filter verdicts for one opportunity —
    /// the same examined set and filter order as
    /// [`Platform::decide_browse_traced_with_scratch`], reported per ad.
    /// RNG-free and read-only: trace builders call it for sampled
    /// requests only, so it must never affect the decision path.
    pub fn candidate_verdicts<B: BudgetView>(
        &self,
        user: UserId,
        budget: &B,
        freq: &FrequencyCaps,
    ) -> Result<Vec<CandidateVerdict>> {
        let profile = self.profiles.get(user)?;
        Ok(candidate_verdicts(
            profile,
            &self.campaigns,
            &self.audiences,
            &self.suspended,
            budget,
            freq,
        ))
    }

    /// The **write** half of [`Platform::browse`]: charges billing, bumps
    /// the (global) frequency counter, and records the impression in the
    /// platform log. Counterpart of [`Platform::decide_browse`]; delivery
    /// statistics are *not* touched — batch callers account for those
    /// themselves, per shard.
    pub fn apply_impression(&mut self, pending: &PendingImpression) -> Money {
        apply_impression(pending, &mut self.billing, &mut self.freq, &mut self.log)
    }

    /// Onboards a data-broker feed: every user's hashed PII is matched
    /// against the feed and matching dossier attributes become partner
    /// attributes on the user. Attributes missing from the catalog are
    /// skipped (the broker may assert things the platform does not sell).
    pub fn onboard_broker_feed(&mut self, feed: &treads_broker::BrokerFeed) -> usize {
        let mut grants = 0usize;
        let users: Vec<UserId> = self.profiles.ids();
        for user in users {
            let (emails, phones) = {
                // `ids()` just listed this user; if the profile store
                // disagrees with itself, skip the user rather than abort
                // the whole onboarding pass.
                let Ok(profile) = self.profiles.get(user) else {
                    continue;
                };
                (
                    profile
                        .hashed_emails()
                        .into_iter()
                        .copied()
                        .collect::<Vec<_>>(),
                    profile
                        .hashed_phones()
                        .into_iter()
                        .copied()
                        .collect::<Vec<_>>(),
                )
            };
            let outcome = feed.match_user(emails.first(), phones.first());
            if let treads_broker::MatchOutcome::Matched { attributes, .. } = outcome {
                for name in attributes {
                    if let Some(id) = self.attributes.id_of(&name) {
                        if self.profiles.grant_attribute(user, id).is_ok() {
                            grants += 1;
                        }
                    }
                }
            }
        }
        grants
    }

    // ------------------------------------------------------------------
    // User-facing transparency (the platform's own, incomplete, view)
    // ------------------------------------------------------------------

    /// The user's ad-preferences page (hides partner attributes).
    pub fn user_ad_preferences(&self, user: UserId) -> Result<Vec<String>> {
        let profile = self.profiles.get(user)?;
        Ok(ad_preferences(profile, &self.attributes)
            .into_iter()
            .map(|d| d.name.clone())
            .collect())
    }

    /// The platform's "why am I seeing this?" explanation.
    pub fn explain(&self, ad: AdId, user: UserId) -> Result<Explanation> {
        let ad = self.campaigns.ad(ad)?;
        let profile = self.profiles.get(user)?;
        Ok(explain_ad(ad, profile, &self.attributes, &self.audiences))
    }

    // ------------------------------------------------------------------
    // Enforcement
    // ------------------------------------------------------------------

    /// Scans every account and suspends the flagged ones. Returns the
    /// per-account reports.
    pub fn run_enforcement_sweep(&mut self) -> Vec<SuspicionReport> {
        let accounts: Vec<AccountId> = self.accounts.keys().copied().collect();
        let mut reports = Vec::with_capacity(accounts.len());
        for account in accounts {
            let report = scan_account(
                account,
                &self.campaigns,
                &self.policy,
                &self.config.enforcement,
                &mut self.rng_enforcement,
            );
            if report.flagged() {
                self.suspended.insert(account);
            }
            reports.push(report);
        }
        reports
    }

    /// True if an account exists and is not suspended.
    pub fn require_active(&self, account: AccountId) -> Result<()> {
        if !self.accounts.contains_key(&account) {
            return Err(Error::not_found("account", account));
        }
        if self.suspended.contains(&account) {
            return Err(Error::AccountSuspended {
                account: account.to_string(),
            });
        }
        Ok(())
    }

    /// Direct profile access for test assertions and the user-side
    /// simulation (not part of the advertiser API).
    pub fn profile(&self, user: UserId) -> Result<&UserProfile> {
        self.profiles.get(user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targeting::TargetingExpr;

    fn small_platform() -> Platform {
        // A small catalog keeps these tests fast; the full us_2018 boot is
        // covered in the integration tests.
        let mut catalog = AttributeCatalog::new();
        catalog.register(
            "Interest: coffee",
            crate::attributes::AttributeSource::Platform,
            None,
            0.3,
        );
        catalog.register(
            "Net worth: $2M+",
            crate::attributes::AttributeSource::Partner {
                broker: "NorthStar Data".into(),
            },
            None,
            0.02,
        );
        let config = PlatformConfig {
            auction: AuctionConfig {
                competitor_rate: 0.0,
                ..AuctionConfig::default()
            },
            ..PlatformConfig::default()
        };
        Platform::new(config, catalog)
    }

    #[test]
    fn advertiser_account_lifecycle() {
        let mut p = small_platform();
        let adv = p.register_advertiser("Know Your Data");
        let acct = p.open_account(adv).expect("account");
        assert!(p.require_active(acct).is_ok());
        assert!(p.open_account(AdvertiserId(99)).is_err());
        p.suspended.insert(acct);
        assert!(matches!(
            p.require_active(acct),
            Err(Error::AccountSuspended { .. })
        ));
    }

    #[test]
    fn end_to_end_targeted_delivery() {
        let mut p = small_platform();
        let adv = p.register_advertiser("adv");
        let acct = p.open_account(adv).expect("account");
        let user = p.register_user(33, Gender::Female, "Vermont", "05401");
        let coffee = p.attributes.id_of("Interest: coffee").expect("attr");
        p.profiles.grant_attribute(user, coffee).expect("grant");

        let camp = p
            .create_campaign(acct, "c", Money::dollars(10), None)
            .expect("campaign");
        let ad = p
            .submit_ad(
                camp,
                AdCreative::text("Coffee deals", "Great beans."),
                TargetingSpec::including(TargetingExpr::Attr(coffee)),
            )
            .expect("ad");
        assert_eq!(p.ad_status(ad).expect("status"), &AdStatus::Approved);

        assert!(matches!(
            p.browse(user).expect("browse"),
            crate::auction::AuctionOutcome::Won { .. }
        ));
        let report = p.ad_report(acct, ad).expect("report");
        assert_eq!(report.impressions, 1);
        assert!(report.below_reach_floor);
    }

    #[test]
    fn policy_rejection_at_submission() {
        let mut p = small_platform();
        let adv = p.register_advertiser("adv");
        let acct = p.open_account(adv).expect("account");
        let camp = p
            .create_campaign(acct, "c", Money::dollars(2), None)
            .expect("campaign");
        let ad = p
            .submit_ad(
                camp,
                AdCreative::text("About you", "You are interested in coffee"),
                TargetingSpec::including(TargetingExpr::Everyone),
            )
            .expect("submission succeeds; ad is rejected");
        assert!(matches!(
            p.ad_status(ad).expect("status"),
            AdStatus::Rejected { .. }
        ));
        // Rejected ads never deliver.
        let user = p.register_user(30, Gender::Male, "Texas", "73301");
        assert!(matches!(
            p.browse(user).expect("browse"),
            crate::auction::AuctionOutcome::Unfilled
        ));
    }

    #[test]
    fn page_like_feeds_engagement_audience() {
        let mut p = small_platform();
        let adv = p.register_advertiser("provider");
        let acct = p.open_account(adv).expect("account");
        let page = p.create_page(acct, "Know Your Data").expect("page");
        let audience = p.create_page_audience(acct, page).expect("audience");
        let user = p.register_user(28, Gender::Female, "Ohio", "43004");
        p.user_likes_page(user, page).expect("like");
        assert!(p.audiences.get(audience).expect("aud").contains(user));
        // Liking a nonexistent page errors.
        assert!(p.user_likes_page(user, 999).is_err());
    }

    #[test]
    fn pixel_fire_feeds_visitor_audience() {
        let mut p = small_platform();
        let adv = p.register_advertiser("provider");
        let acct = p.open_account(adv).expect("account");
        let pixel = p.create_pixel(acct, "optin").expect("pixel");
        let audience = p.create_pixel_audience(acct, pixel).expect("audience");
        let user = p.register_user(28, Gender::Female, "Ohio", "43004");
        p.user_fires_pixel(user, pixel).expect("fire");
        assert!(p.audiences.get(audience).expect("aud").contains(user));
    }

    #[test]
    fn custom_audience_via_platform_requires_min_match() {
        let mut p = small_platform();
        let adv = p.register_advertiser("provider");
        let acct = p.open_account(adv).expect("account");
        let user = p.register_user(28, Gender::Female, "Ohio", "43004");
        let digest = p
            .attach_user_pii(
                user,
                PiiKind::Email,
                "a@example.com",
                PiiProvenance::UserProvided,
            )
            .expect("attach");
        // Only 1 match < 20 minimum.
        assert!(matches!(
            p.create_custom_audience(acct, &[digest]),
            Err(Error::AudienceTooSmall { .. })
        ));
    }

    #[test]
    fn broker_feed_onboarding_grants_partner_attributes() {
        let mut p = small_platform();
        let user = p.register_user(45, Gender::Male, "Vermont", "05401");
        p.attach_user_pii(
            user,
            PiiKind::Email,
            "rich@example.com",
            PiiProvenance::UserProvided,
        )
        .expect("attach");
        let mut feed = treads_broker::BrokerFeed::new();
        let mut record = treads_broker::BrokerRecord::from_pii("rich@example.com", None);
        record.assert_attribute("Net worth: $2M+");
        record.assert_attribute("Unknown attribute the platform has no id for");
        feed.ingest(record);
        let grants = p.onboard_broker_feed(&feed);
        assert_eq!(grants, 1);
        let nw = p.attributes.id_of("Net worth: $2M+").expect("attr");
        assert!(p.profile(user).expect("user").has_attribute(nw));
    }

    #[test]
    fn ad_preferences_hide_partner_data() {
        let mut p = small_platform();
        let user = p.register_user(45, Gender::Male, "Vermont", "05401");
        let coffee = p.attributes.id_of("Interest: coffee").expect("attr");
        let nw = p.attributes.id_of("Net worth: $2M+").expect("attr");
        p.profiles.grant_attribute(user, coffee).expect("grant");
        p.profiles.grant_attribute(user, nw).expect("grant");
        let prefs = p.user_ad_preferences(user).expect("prefs");
        assert_eq!(prefs, vec!["Interest: coffee".to_string()]);
    }

    #[test]
    fn intent_audiences_match_by_phrase() {
        let mut p = small_platform();
        let adv = p.register_advertiser("a");
        let acct = p.open_account(adv).expect("acct");
        let coffee = p.attributes.id_of("Interest: coffee").expect("attr");
        let drinker = p.register_user(30, Gender::Female, "Ohio", "43004");
        p.profiles.grant_attribute(drinker, coffee).expect("grant");
        let other = p.register_user(30, Gender::Male, "Ohio", "43004");
        let aud = p
            .create_intent_audience(acct, vec!["COFFEE".into()])
            .expect("audience");
        let audience = p.audiences.get(aud).expect("aud");
        assert!(audience.contains(drinker));
        assert!(!audience.contains(other));
    }

    #[test]
    fn platform_presets_differ_where_documented() {
        let fb = PlatformConfig::facebook_like(1);
        let g = PlatformConfig::google_like(1);
        let tw = PlatformConfig::twitter_like(1);
        assert_eq!(fb.min_custom_audience_size, 20);
        assert_eq!(g.min_custom_audience_size, 1000);
        assert_eq!(tw.min_custom_audience_size, 100);
        assert!(g.auction.competitor_cpm_median < fb.auction.competitor_cpm_median);
        assert!(tw.auction.competitor_cpm_median > fb.auction.competitor_cpm_median);
    }

    #[test]
    fn cross_account_audience_targeting_is_rejected() {
        let mut p = small_platform();
        let adv = p.register_advertiser("a");
        let acct1 = p.open_account(adv).expect("acct1");
        let acct2 = p.open_account(adv).expect("acct2");
        let page = p.create_page(acct1, "page").expect("page");
        let audience = p.create_page_audience(acct1, page).expect("audience");
        let camp = p
            .create_campaign(acct2, "c", Money::dollars(2), None)
            .expect("campaign");
        let err = p
            .submit_ad(
                camp,
                AdCreative::text("h", "b"),
                TargetingSpec::including(TargetingExpr::InAudience(audience)),
            )
            .expect_err("cross-account audience must be rejected");
        assert!(matches!(err, Error::InvalidInput { .. }));
    }

    #[test]
    fn report_ownership_is_enforced() {
        let mut p = small_platform();
        let adv = p.register_advertiser("a");
        let acct1 = p.open_account(adv).expect("acct1");
        let acct2 = p.open_account(adv).expect("acct2");
        let camp = p
            .create_campaign(acct1, "c", Money::dollars(2), None)
            .expect("campaign");
        let ad = p
            .submit_ad(
                camp,
                AdCreative::text("h", "b"),
                TargetingSpec::including(TargetingExpr::Everyone),
            )
            .expect("ad");
        assert!(p.ad_report(acct1, ad).is_ok());
        assert!(p.ad_report(acct2, ad).is_err());
    }

    #[test]
    fn suspended_account_cannot_operate() {
        let mut p = small_platform();
        let adv = p.register_advertiser("a");
        let acct = p.open_account(adv).expect("acct");
        p.suspended.insert(acct);
        assert!(p
            .create_campaign(acct, "c", Money::dollars(2), None)
            .is_err());
        assert!(p.create_pixel(acct, "px").is_err());
        assert!(p.create_page(acct, "pg").is_err());
    }
}
