//! Targeting expressions and their evaluator.
//!
//! Advertisers describe audiences with boolean expressions over attributes,
//! demographics, and saved audiences — the paper's example is *"Millennials
//! who live in Chicago, are interested in musicals, are currently
//! unemployed, and are not in a relationship"*. [`TargetingExpr`] is that
//! expression tree; [`TargetingSpec`] wraps it in the include/exclude
//! structure real platforms expose (Treads use *exclusion* to reveal that
//! an attribute is false-or-missing, §3.1).
//!
//! Evaluation is pure: given a user profile and a resolver for saved
//! audiences, an expression either matches or does not. The platform's
//! delivery contract — "a user sees a targeted ad iff they satisfy the
//! targeting parameters" — reduces to this function, which is why it gets
//! property-based tests in addition to unit tests.

use crate::audience::AudienceResolver;
use crate::profile::{Gender, UserProfile};
use adsim_types::{AttributeId, AudienceId};
use serde::{Deserialize, Serialize};

/// A boolean targeting expression.
///
/// (`PartialEq` only — radius predicates carry `f64` coordinates.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TargetingExpr {
    /// Matches every user (the control ad in the paper's validation targets
    /// all signed-up users with no further parameters).
    Everyone,
    /// User holds the targeting attribute.
    Attr(AttributeId),
    /// User's age lies in `[min, max]` (inclusive).
    AgeRange {
        /// Minimum age, inclusive.
        min: u8,
        /// Maximum age, inclusive.
        max: u8,
    },
    /// User's gender equals the given one.
    GenderIs(Gender),
    /// User lives in the given U.S. state.
    InState(String),
    /// User's ZIP code equals the given one (the paper notes advertisers
    /// can target users in a ZIP code).
    InZip(String),
    /// The platform recently located the user in the given ZIP code —
    /// the paper's location-reveal example ("whether a user is determined
    /// to have recently visited a particular ZIP code").
    VisitedZip(String),
    /// User's home coordinates lie within `km` kilometers of the given
    /// point (the paper's "within a radius around any latitude and
    /// longitude"). Users the platform has not located precisely never
    /// match.
    WithinRadius {
        /// Center latitude, degrees.
        lat: f64,
        /// Center longitude, degrees.
        lon: f64,
        /// Radius in kilometers.
        km: f64,
    },
    /// User belongs to a saved audience (custom/PII, pixel, or page
    /// engagement).
    InAudience(AudienceId),
    /// All sub-expressions match.
    And(Vec<TargetingExpr>),
    /// At least one sub-expression matches.
    Or(Vec<TargetingExpr>),
    /// The sub-expression does not match.
    Not(Box<TargetingExpr>),
}

impl TargetingExpr {
    /// Evaluates the expression against a user profile.
    ///
    /// `audiences` resolves [`TargetingExpr::InAudience`] membership; the
    /// platform passes its audience store, tests can pass a closure.
    pub fn matches<A: AudienceResolver>(&self, user: &UserProfile, audiences: &A) -> bool {
        match self {
            TargetingExpr::Everyone => true,
            TargetingExpr::Attr(attr) => user.has_attribute(*attr),
            TargetingExpr::AgeRange { min, max } => user.age >= *min && user.age <= *max,
            TargetingExpr::GenderIs(g) => user.gender == *g,
            TargetingExpr::InState(state) => &user.state == state,
            TargetingExpr::InZip(zip) => &user.zip == zip,
            TargetingExpr::VisitedZip(zip) => user.recent_zips.contains(zip),
            TargetingExpr::WithinRadius { lat, lon, km } => match user.coordinates {
                Some((ulat, ulon)) => haversine_km(*lat, *lon, ulat, ulon) <= *km,
                None => false,
            },
            TargetingExpr::InAudience(aud) => audiences.contains(*aud, user.id),
            TargetingExpr::And(subs) => subs.iter().all(|s| s.matches(user, audiences)),
            TargetingExpr::Or(subs) => subs.iter().any(|s| s.matches(user, audiences)),
            TargetingExpr::Not(sub) => !sub.matches(user, audiences),
        }
    }

    /// All attribute ids referenced anywhere in the expression, in
    /// depth-first order (used by the platform's explanation generator and
    /// the policy engine).
    pub fn referenced_attributes(&self) -> Vec<AttributeId> {
        let mut out = Vec::new();
        self.collect_attributes(&mut out);
        out
    }

    fn collect_attributes(&self, out: &mut Vec<AttributeId>) {
        match self {
            TargetingExpr::Attr(a) => out.push(*a),
            TargetingExpr::And(subs) | TargetingExpr::Or(subs) => {
                for s in subs {
                    s.collect_attributes(out);
                }
            }
            TargetingExpr::Not(sub) => sub.collect_attributes(out),
            _ => {}
        }
    }

    /// All saved-audience ids referenced anywhere in the expression.
    pub fn referenced_audiences(&self) -> Vec<AudienceId> {
        let mut out = Vec::new();
        self.collect_audiences(&mut out);
        out
    }

    fn collect_audiences(&self, out: &mut Vec<AudienceId>) {
        match self {
            TargetingExpr::InAudience(a) => out.push(*a),
            TargetingExpr::And(subs) | TargetingExpr::Or(subs) => {
                for s in subs {
                    s.collect_audiences(out);
                }
            }
            TargetingExpr::Not(sub) => sub.collect_audiences(out),
            _ => {}
        }
    }

    /// Appends the expression's canonical byte encoding: one tag byte per
    /// variant, payloads little-endian, strings and child lists
    /// length-prefixed (u32), floats as raw IEEE-754 bits. Unambiguous by
    /// construction (every variant is self-delimiting), so equal encodings
    /// imply equal trees — the property [`TargetingSpec::digest`] relies on.
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        fn put_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        match self {
            TargetingExpr::Everyone => out.push(0),
            TargetingExpr::Attr(a) => {
                out.push(1);
                out.extend_from_slice(&a.raw().to_le_bytes());
            }
            TargetingExpr::AgeRange { min, max } => {
                out.push(2);
                out.push(*min);
                out.push(*max);
            }
            TargetingExpr::GenderIs(g) => {
                out.push(3);
                out.push(match g {
                    Gender::Female => 0,
                    Gender::Male => 1,
                    Gender::Unspecified => 2,
                });
            }
            TargetingExpr::InState(s) => {
                out.push(4);
                put_str(out, s);
            }
            TargetingExpr::InZip(z) => {
                out.push(5);
                put_str(out, z);
            }
            TargetingExpr::VisitedZip(z) => {
                out.push(6);
                put_str(out, z);
            }
            TargetingExpr::WithinRadius { lat, lon, km } => {
                out.push(7);
                out.extend_from_slice(&lat.to_bits().to_le_bytes());
                out.extend_from_slice(&lon.to_bits().to_le_bytes());
                out.extend_from_slice(&km.to_bits().to_le_bytes());
            }
            TargetingExpr::InAudience(a) => {
                out.push(8);
                out.extend_from_slice(&a.raw().to_le_bytes());
            }
            TargetingExpr::And(subs) => {
                out.push(9);
                out.extend_from_slice(&(subs.len() as u32).to_le_bytes());
                for s in subs {
                    s.encode_canonical(out);
                }
            }
            TargetingExpr::Or(subs) => {
                out.push(10);
                out.extend_from_slice(&(subs.len() as u32).to_le_bytes());
                for s in subs {
                    s.encode_canonical(out);
                }
            }
            TargetingExpr::Not(sub) => {
                out.push(11);
                sub.encode_canonical(out);
            }
        }
    }
}

/// Great-circle distance between two (degree) coordinates, in kilometers
/// (haversine formula, mean Earth radius 6371 km).
pub fn haversine_km(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    let (lat1, lon1, lat2, lon2) = (
        lat1.to_radians(),
        lon1.to_radians(),
        lat2.to_radians(),
        lon2.to_radians(),
    );
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * 6371.0 * a.sqrt().asin()
}

/// The include/exclude targeting structure advertisers submit with an ad.
///
/// A user is in the target iff they match `include` and do **not** match
/// `exclude`. Treads use `exclude` for negative disclosure: an ad excluding
/// attribute A tells its recipients that A is false or missing for them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetingSpec {
    /// Who to reach.
    pub include: TargetingExpr,
    /// Who to carve out, even if they match `include`.
    pub exclude: Option<TargetingExpr>,
}

impl TargetingSpec {
    /// Targets exactly the users matching `include`.
    pub fn including(include: TargetingExpr) -> Self {
        Self {
            include,
            exclude: None,
        }
    }

    /// Targets users matching `include` but not `exclude`.
    pub fn including_excluding(include: TargetingExpr, exclude: TargetingExpr) -> Self {
        Self {
            include,
            exclude: Some(exclude),
        }
    }

    /// True if `user` is in the targeted set.
    pub fn matches<A: AudienceResolver>(&self, user: &UserProfile, audiences: &A) -> bool {
        if !self.include.matches(user, audiences) {
            return false;
        }
        match &self.exclude {
            Some(ex) => !ex.matches(user, audiences),
            None => true,
        }
    }

    /// Attribute ids referenced by either side of the spec.
    pub fn referenced_attributes(&self) -> Vec<AttributeId> {
        let mut attrs = self.include.referenced_attributes();
        if let Some(ex) = &self.exclude {
            attrs.extend(ex.referenced_attributes());
        }
        attrs
    }

    /// Saved-audience ids referenced by either side of the spec.
    pub fn referenced_audiences(&self) -> Vec<AudienceId> {
        let mut auds = self.include.referenced_audiences();
        if let Some(ex) = &self.exclude {
            auds.extend(ex.referenced_audiences());
        }
        auds
    }

    /// Canonical 64-bit digest of the spec, stable across processes and
    /// platform restarts.
    ///
    /// Delivery receipts bind each impression to the *exact* targeting
    /// parameters it was decided under; the digest is what a receipt can
    /// carry without shipping the whole expression tree. Two specs share
    /// a digest iff their canonical encodings are byte-identical:
    /// variant-tagged, length-prefixed, integers little-endian, floats as
    /// IEEE-754 bit patterns (so `-0.0` and `0.0` digest differently —
    /// they are different submissions even if they match the same users).
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(64);
        self.include.encode_canonical(&mut bytes);
        match &self.exclude {
            None => bytes.push(0),
            Some(ex) => {
                bytes.push(1);
                ex.encode_canonical(&mut bytes);
            }
        }
        adsim_types::hash::sha256(&bytes).fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfileStore;
    use std::collections::HashSet;

    /// Test resolver: a set of (audience, user) pairs.
    struct SetResolver(HashSet<(u64, u64)>);

    impl AudienceResolver for SetResolver {
        fn contains(&self, audience: AudienceId, user: adsim_types::UserId) -> bool {
            self.0.contains(&(audience.raw(), user.raw()))
        }
    }

    fn empty_resolver() -> SetResolver {
        SetResolver(HashSet::new())
    }

    fn sample_user(store: &mut ProfileStore) -> adsim_types::UserId {
        let id = store.register(29, Gender::Female, "Illinois", "60601");
        store.grant_attribute(id, AttributeId(10)).expect("grant"); // musicals
        store.grant_attribute(id, AttributeId(11)).expect("grant"); // unemployed
        id
    }

    #[test]
    fn paper_chicago_millennial_example() {
        // "Millennials who live in Chicago, are interested in musicals, are
        // currently unemployed, and are not in a relationship."
        let mut store = ProfileStore::new();
        let id = sample_user(&mut store);
        let user = store.get(id).expect("exists");
        let expr = TargetingExpr::And(vec![
            TargetingExpr::AgeRange { min: 24, max: 39 },
            TargetingExpr::InZip("60601".into()),
            TargetingExpr::Attr(AttributeId(10)),
            TargetingExpr::Attr(AttributeId(11)),
            TargetingExpr::Not(Box::new(TargetingExpr::Attr(AttributeId(12)))), // in a relationship
        ]);
        assert!(expr.matches(user, &empty_resolver()));
    }

    #[test]
    fn age_range_is_inclusive() {
        let mut store = ProfileStore::new();
        let id = store.register(30, Gender::Male, "Texas", "73301");
        let user = store.get(id).expect("exists");
        assert!(TargetingExpr::AgeRange { min: 30, max: 35 }.matches(user, &empty_resolver()));
        assert!(TargetingExpr::AgeRange { min: 25, max: 30 }.matches(user, &empty_resolver()));
        assert!(!TargetingExpr::AgeRange { min: 31, max: 40 }.matches(user, &empty_resolver()));
    }

    #[test]
    fn everyone_matches_anyone() {
        let mut store = ProfileStore::new();
        let id = store.register(77, Gender::Unspecified, "Maine", "04101");
        assert!(TargetingExpr::Everyone.matches(store.get(id).expect("exists"), &empty_resolver()));
    }

    #[test]
    fn audience_membership_via_resolver() {
        let mut store = ProfileStore::new();
        let id = store.register(40, Gender::Male, "Ohio", "43004");
        let user = store.get(id).expect("exists");
        let resolver = SetResolver([(7, id.raw())].into_iter().collect());
        assert!(TargetingExpr::InAudience(AudienceId(7)).matches(user, &resolver));
        assert!(!TargetingExpr::InAudience(AudienceId(8)).matches(user, &resolver));
    }

    #[test]
    fn spec_exclusion_carves_out() {
        // The Tread negative-disclosure pattern: include opted-in audience,
        // exclude attribute holders.
        let mut store = ProfileStore::new();
        let with_attr = store.register(30, Gender::Female, "Utah", "84101");
        store
            .grant_attribute(with_attr, AttributeId(3))
            .expect("grant");
        let without_attr = store.register(30, Gender::Female, "Utah", "84101");

        let resolver = SetResolver(
            [(1, with_attr.raw()), (1, without_attr.raw())]
                .into_iter()
                .collect(),
        );
        let spec = TargetingSpec::including_excluding(
            TargetingExpr::InAudience(AudienceId(1)),
            TargetingExpr::Attr(AttributeId(3)),
        );
        assert!(!spec.matches(store.get(with_attr).expect("u"), &resolver));
        assert!(spec.matches(store.get(without_attr).expect("u"), &resolver));
    }

    #[test]
    fn referenced_attributes_and_audiences_walk_the_tree() {
        let expr = TargetingExpr::And(vec![
            TargetingExpr::Attr(AttributeId(1)),
            TargetingExpr::Or(vec![
                TargetingExpr::Attr(AttributeId(2)),
                TargetingExpr::Not(Box::new(TargetingExpr::Attr(AttributeId(3)))),
            ]),
            TargetingExpr::InAudience(AudienceId(9)),
        ]);
        let spec = TargetingSpec::including_excluding(expr, TargetingExpr::Attr(AttributeId(4)));
        assert_eq!(
            spec.referenced_attributes(),
            vec![
                AttributeId(1),
                AttributeId(2),
                AttributeId(3),
                AttributeId(4)
            ]
        );
        assert_eq!(spec.referenced_audiences(), vec![AudienceId(9)]);
    }

    #[test]
    fn empty_and_or_edge_cases() {
        let mut store = ProfileStore::new();
        let id = store.register(50, Gender::Male, "Iowa", "50301");
        let user = store.get(id).expect("exists");
        // Vacuous truth: empty AND matches; empty OR does not.
        assert!(TargetingExpr::And(vec![]).matches(user, &empty_resolver()));
        assert!(!TargetingExpr::Or(vec![]).matches(user, &empty_resolver()));
    }

    #[test]
    fn visited_zip_matches_recent_locations() {
        let mut store = ProfileStore::new();
        let id = store.register(30, Gender::Male, "New York", "10002");
        store.record_zip_visit(id, "10001").expect("record");
        let user = store.get(id).expect("exists");
        assert!(TargetingExpr::VisitedZip("10001".into()).matches(user, &empty_resolver()));
        // Home ZIP is not a *visit*; the two predicates are distinct.
        assert!(!TargetingExpr::VisitedZip("10002".into()).matches(user, &empty_resolver()));
        assert!(TargetingExpr::InZip("10002".into()).matches(user, &empty_resolver()));
    }

    #[test]
    fn radius_targeting_uses_haversine() {
        let mut store = ProfileStore::new();
        // Boston City Hall.
        let boston = store.register(30, Gender::Male, "Massachusetts", "02201");
        store
            .set_coordinates(boston, 42.3601, -71.0589)
            .expect("set");
        // Unlocated user.
        let unlocated = store.register(30, Gender::Male, "Massachusetts", "02201");
        // 10 km around Cambridge matches Boston; 10 km around NYC does not.
        let near = TargetingExpr::WithinRadius {
            lat: 42.3736,
            lon: -71.1097,
            km: 10.0,
        };
        let far = TargetingExpr::WithinRadius {
            lat: 40.7128,
            lon: -74.0060,
            km: 10.0,
        };
        assert!(near.matches(store.get(boston).expect("u"), &empty_resolver()));
        assert!(!far.matches(store.get(boston).expect("u"), &empty_resolver()));
        // Users without coordinates never match.
        assert!(!near.matches(store.get(unlocated).expect("u"), &empty_resolver()));
    }

    #[test]
    fn haversine_reference_distances() {
        // Boston -> NYC is ~306 km.
        let d = haversine_km(42.3601, -71.0589, 40.7128, -74.0060);
        assert!((d - 306.0).abs() < 5.0, "Boston-NYC {d} km");
        // Zero distance.
        assert!(haversine_km(1.0, 2.0, 1.0, 2.0) < 1e-9);
    }

    #[test]
    fn spec_digest_is_stable_and_discriminating() {
        let a = TargetingSpec::including(TargetingExpr::Attr(AttributeId(1)));
        // Same tree, independent construction: digests agree.
        assert_eq!(
            a.digest(),
            TargetingSpec::including(TargetingExpr::Attr(AttributeId(1))).digest()
        );
        // Different attribute, different connective, or an added exclude
        // each change the digest.
        assert_ne!(
            a.digest(),
            TargetingSpec::including(TargetingExpr::Attr(AttributeId(2))).digest()
        );
        assert_ne!(
            TargetingSpec::including(TargetingExpr::And(vec![])).digest(),
            TargetingSpec::including(TargetingExpr::Or(vec![])).digest()
        );
        assert_ne!(
            a.digest(),
            TargetingSpec::including_excluding(
                TargetingExpr::Attr(AttributeId(1)),
                TargetingExpr::Everyone
            )
            .digest()
        );
        // Floats digest by bit pattern.
        let near = |km| {
            TargetingSpec::including(TargetingExpr::WithinRadius {
                lat: 42.0,
                lon: -71.0,
                km,
            })
        };
        assert_ne!(near(10.0).digest(), near(10.5).digest());
    }

    #[test]
    fn double_negation() {
        let mut store = ProfileStore::new();
        let id = store.register(50, Gender::Male, "Iowa", "50301");
        store.grant_attribute(id, AttributeId(1)).expect("grant");
        let user = store.get(id).expect("exists");
        let double_not = TargetingExpr::Not(Box::new(TargetingExpr::Not(Box::new(
            TargetingExpr::Attr(AttributeId(1)),
        ))));
        assert!(double_not.matches(user, &empty_resolver()));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::profile::ProfileStore;
    use proptest::prelude::*;

    /// Resolver that answers membership from a bitmask on the audience id.
    struct MaskResolver(u64);
    impl AudienceResolver for MaskResolver {
        fn contains(&self, audience: AudienceId, _user: adsim_types::UserId) -> bool {
            audience.raw() < 64 && (self.0 >> audience.raw()) & 1 == 1
        }
    }

    fn arb_expr() -> impl Strategy<Value = TargetingExpr> {
        let leaf = prop_oneof![
            Just(TargetingExpr::Everyone),
            (1u64..20).prop_map(|a| TargetingExpr::Attr(AttributeId(a))),
            (18u8..60, 0u8..30).prop_map(|(min, extra)| TargetingExpr::AgeRange {
                min,
                max: min.saturating_add(extra),
            }),
            (0u64..8).prop_map(|a| TargetingExpr::InAudience(AudienceId(a))),
        ];
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..4).prop_map(TargetingExpr::And),
                prop::collection::vec(inner.clone(), 0..4).prop_map(TargetingExpr::Or),
                inner.prop_map(|e| TargetingExpr::Not(Box::new(e))),
            ]
        })
    }

    proptest! {
        /// NOT is an involution on match outcome.
        #[test]
        fn not_inverts(expr in arb_expr(), attrs in prop::collection::vec(1u64..20, 0..10), mask in any::<u64>()) {
            let mut store = ProfileStore::new();
            let id = store.register(33, crate::profile::Gender::Female, "Oregon", "97201");
            for a in attrs {
                store.grant_attribute(id, AttributeId(a)).expect("grant");
            }
            let user = store.get(id).expect("exists");
            let resolver = MaskResolver(mask);
            let plain = expr.matches(user, &resolver);
            let negated = TargetingExpr::Not(Box::new(expr)).matches(user, &resolver);
            prop_assert_eq!(plain, !negated);
        }

        /// AND of a set matches iff every member matches; OR iff any does.
        #[test]
        fn and_or_semantics(exprs in prop::collection::vec(arb_expr(), 0..4), mask in any::<u64>()) {
            let mut store = ProfileStore::new();
            let id = store.register(41, crate::profile::Gender::Male, "Nevada", "89501");
            store.grant_attribute(id, AttributeId(1)).expect("grant");
            let user = store.get(id).expect("exists");
            let resolver = MaskResolver(mask);
            let each: Vec<bool> = exprs.iter().map(|e| e.matches(user, &resolver)).collect();
            prop_assert_eq!(
                TargetingExpr::And(exprs.clone()).matches(user, &resolver),
                each.iter().all(|&b| b)
            );
            prop_assert_eq!(
                TargetingExpr::Or(exprs).matches(user, &resolver),
                each.iter().any(|&b| b)
            );
        }

        /// The include/exclude spec equals include ∧ ¬exclude.
        #[test]
        fn spec_equals_conjunction(inc in arb_expr(), exc in arb_expr(), mask in any::<u64>()) {
            let mut store = ProfileStore::new();
            let id = store.register(27, crate::profile::Gender::Unspecified, "Georgia", "30301");
            store.grant_attribute(id, AttributeId(2)).expect("grant");
            let user = store.get(id).expect("exists");
            let resolver = MaskResolver(mask);
            let spec = TargetingSpec::including_excluding(inc.clone(), exc.clone());
            let expected = inc.matches(user, &resolver) && !exc.matches(user, &resolver);
            prop_assert_eq!(spec.matches(user, &resolver), expected);
        }
    }
}
