//! Compiled targeting programs: the delivery-path evaluator.
//!
//! [`crate::targeting::TargetingExpr::matches`] walks an expression tree,
//! probing a `BTreeSet<AttributeId>` and comparing `String`s per node —
//! fine at submission time, but delivery evaluates targeting for every
//! candidate ad of every impression opportunity, where pointer-chasing
//! and string compares dominate the auction phase. [`CompiledSpec`] is
//! the same predicate lowered once, at ad submission, into a flat
//! **straight-line op array**: no recursion, no strings, no allocation —
//! and no evaluation stack, because the connectives compile to
//! short-circuit skips over a single boolean accumulator.
//!
//! * attribute tests become fixed-width bitmap probes against the
//!   profile's [`crate::profile::ProfileFacets`] bitset (one word load
//!   and mask, pre-computed at compile time);
//! * state/ZIP tests become `u32` symbol compares, visited-ZIP tests a
//!   binary search over sorted `u32`s — both sides interned through the
//!   platform's one [`SymbolTable`], so symbol equality is string
//!   equality;
//! * audience tests resolve against the store's pre-sorted membership
//!   sets via [`AudienceResolver`], exactly as the tree does (membership
//!   is frozen within a tick, so both evaluators see the same sets);
//! * `And`/`Or` lower to **short-circuit skips** (the private op set's
//!   `SkipIfFalse`/`SkipIfTrue`): each operand writes the accumulator,
//!   and a skip op jumps past the connective's remaining operands the
//!   moment the outcome is decided — the exact evaluation order of the
//!   tree's `iter().all()` / `iter().any()`. Skipping is sound because
//!   evaluation is pure: no leaf touches an RNG or mutates anything, so
//!   an operand that is never evaluated is unobservable.
//!
//! The result is an accumulator machine: every program, however nested,
//! evaluates with one `bool` register and a program counter. Hot-path
//! cost per candidate is a handful of table-free integer compares.
//!
//! The tree evaluator is retained as the [`EvalMode::Tree`] oracle,
//! mirroring `SelectionMode::LinearScan` from PR 3: both modes must
//! produce byte-identical platform outputs, and the proptests below plus
//! `tests/eval_equivalence.rs` hold them to it.

use crate::audience::AudienceResolver;
use crate::profile::{Gender, UserProfile};
use crate::targeting::{haversine_km, TargetingExpr, TargetingSpec};
use adsim_types::{AudienceId, Symbol, SymbolTable};

/// How `crate::delivery::eligible_bids` evaluates a candidate ad's
/// targeting spec.
///
/// Both modes produce byte-identical platform outputs; they differ only
/// in work performed. [`EvalMode::Tree`] is retained as the verification
/// oracle (and for A/B benchmarking) — the equivalence proptests run
/// every workload under both.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EvalMode {
    /// Run the ad's [`CompiledSpec`]: bitmap probes and symbol compares
    /// over the profile's facet sidecar.
    #[default]
    Compiled,
    /// Walk the original [`TargetingExpr`] tree (the submission-time
    /// representation).
    Tree,
}

/// One op of a compiled targeting program.
///
/// Leaf ops *write* the boolean accumulator; `Not` inverts it; the two
/// skip ops implement short-circuit `And`/`Or` by jumping the program
/// counter forward when the accumulator already decides the connective.
/// Everything is fixed-width — the only indirection left at evaluation
/// time is the audience-membership lookup.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CompiledOp {
    /// Set the accumulator to `true` (`Everyone`, and the empty `And`).
    ConstTrue,
    /// Set the accumulator to `false` (the empty `Or`).
    ConstFalse,
    /// Bitmap probe: word `word` of the facet bitset, pre-shifted `mask`.
    Attr {
        /// Index into the facet bitset's word array.
        word: u32,
        /// Single-bit mask within that word.
        mask: u64,
    },
    /// Inclusive age-range test.
    AgeRange {
        /// Minimum age, inclusive.
        min: u8,
        /// Maximum age, inclusive.
        max: u8,
    },
    /// Gender equality.
    GenderIs(Gender),
    /// Home-state symbol equality.
    StateEq(Symbol),
    /// Home-ZIP symbol equality.
    ZipEq(Symbol),
    /// Binary search of the sorted visited-ZIP symbols.
    VisitedZip(Symbol),
    /// Haversine radius test against the profile's coordinates.
    WithinRadius {
        /// Center latitude, degrees.
        lat: f64,
        /// Center longitude, degrees.
        lon: f64,
        /// Radius in kilometers.
        km: f64,
    },
    /// Audience-membership probe via the resolver.
    InAudience(AudienceId),
    /// Short-circuit `And`: if the accumulator is `false`, skip the next
    /// `n` ops (it already holds the connective's result).
    SkipIfFalse(u32),
    /// Short-circuit `Or`: if the accumulator is `true`, skip the next
    /// `n` ops.
    SkipIfTrue(u32),
    /// Invert the accumulator.
    Not,
}

/// A targeting spec lowered to a flat short-circuit program (see the
/// [module docs](self)). Built once per ad at submission by
/// `crate::campaign::CampaignStore::create_ad`; immutable afterwards,
/// like the spec it compiles.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledSpec {
    ops: Vec<CompiledOp>,
}

impl CompiledSpec {
    /// Lowers `spec` (include ∧ ¬exclude) into a short-circuit program,
    /// interning its state/ZIP strings into `symbols` — the **same**
    /// table the profile store interns through, which is what makes the
    /// symbol compares sound.
    pub fn compile(spec: &TargetingSpec, symbols: &mut SymbolTable) -> Self {
        let mut ops = Vec::new();
        emit_spec(spec, symbols, &mut ops);
        Self { ops }
    }

    /// Number of ops in the program.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True for a zero-op program (never produced by [`Self::compile`]).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Evaluates the program against `user`'s facet sidecar. Equivalent
    /// to `TargetingSpec::matches` on the spec this was compiled from,
    /// for any profile maintained by the same store and any resolver.
    /// Allocation-free: the whole evaluation is one accumulator and a
    /// program counter.
    pub fn matches<A: AudienceResolver>(&self, user: &UserProfile, audiences: &A) -> bool {
        run_ops(&self.ops, user, audiences)
    }
}

/// All of a store's compiled programs in one contiguous op array, with a
/// dense `(offset, len)` span per program.
///
/// A `Vec<CompiledSpec>` puts every program's ops in its own heap
/// allocation: at ten thousand ads that is ten thousand scattered
/// allocations, and the hot path pays a dependent pointer chase (spec →
/// ops) per candidate on top of whatever the allocator's layout does to
/// locality. The arena stores one `Vec<CompiledOp>` for everything and an
/// 8-byte span per program, so looking up a program is one load in a
/// dense array and its ops are adjacent to its neighbours'. Programs are
/// append-only, matching the store's never-reused ad ids.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProgramArena {
    ops: Vec<CompiledOp>,
    spans: Vec<(u32, u32)>,
}

impl ProgramArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compiles `spec` into the arena (interning through `symbols`, the
    /// store-shared table) and returns the new program's dense id.
    pub fn push(&mut self, spec: &TargetingSpec, symbols: &mut SymbolTable) -> usize {
        let start = self.ops.len();
        emit_spec(spec, symbols, &mut self.ops);
        let len = self.ops.len() - start;
        self.spans.push((
            u32::try_from(start).expect("arena op count fits u32"),
            len as u32,
        ));
        self.spans.len() - 1
    }

    /// Number of programs in the arena.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no program has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Evaluates program `program` against `user`'s facet sidecar, or
    /// `None` for an id the arena has never issued. Same accumulator
    /// machine as [`CompiledSpec::matches`].
    pub fn matches<A: AudienceResolver>(
        &self,
        program: usize,
        user: &UserProfile,
        audiences: &A,
    ) -> Option<bool> {
        let &(start, len) = self.spans.get(program)?;
        let ops = &self.ops[start as usize..(start + len) as usize];
        Some(run_ops(ops, user, audiences))
    }
}

/// The accumulator machine: evaluates one program's op slice. See the
/// [module docs](self) for why a single `bool` register suffices.
fn run_ops<A: AudienceResolver>(ops: &[CompiledOp], user: &UserProfile, audiences: &A) -> bool {
    let facets = &user.facets;
    let mut acc = false;
    let mut pc = 0usize;
    while let Some(op) = ops.get(pc) {
        pc += 1;
        match *op {
            CompiledOp::ConstTrue => acc = true,
            CompiledOp::ConstFalse => acc = false,
            CompiledOp::Attr { word, mask } => {
                acc = facets
                    .attr_words()
                    .get(word as usize)
                    .is_some_and(|w| w & mask != 0);
            }
            CompiledOp::AgeRange { min, max } => acc = user.age >= min && user.age <= max,
            CompiledOp::GenderIs(g) => acc = user.gender == g,
            CompiledOp::StateEq(s) => acc = facets.state() == s,
            CompiledOp::ZipEq(z) => acc = facets.zip() == z,
            CompiledOp::VisitedZip(z) => acc = facets.visited(z),
            CompiledOp::WithinRadius { lat, lon, km } => {
                acc = match user.coordinates {
                    Some((ulat, ulon)) => haversine_km(lat, lon, ulat, ulon) <= km,
                    None => false,
                };
            }
            CompiledOp::InAudience(aud) => acc = audiences.contains(aud, user.id),
            CompiledOp::SkipIfFalse(n) => {
                if !acc {
                    pc += n as usize;
                }
            }
            CompiledOp::SkipIfTrue(n) => {
                if acc {
                    pc += n as usize;
                }
            }
            CompiledOp::Not => acc = !acc,
        }
    }
    acc
}

/// Emits a whole spec — include ∧ ¬exclude — into `ops`. A failed
/// include short-circuits past the exclusion, exactly as the tree's `&&`
/// does.
fn emit_spec(spec: &TargetingSpec, symbols: &mut SymbolTable, ops: &mut Vec<CompiledOp>) {
    emit(&spec.include, symbols, ops);
    if let Some(ex) = &spec.exclude {
        let site = ops.len();
        ops.push(CompiledOp::SkipIfFalse(0));
        emit(ex, symbols, ops);
        ops.push(CompiledOp::Not);
        let skip = (ops.len() - site - 1) as u32;
        ops[site] = CompiledOp::SkipIfFalse(skip);
    }
}

/// Emits ops for `expr`, leaving its value in the accumulator. N-ary
/// `And`/`Or` lower to operand sequences separated by skip ops that are
/// backpatched to jump to the connective's end — short-circuit evaluation
/// in the same operand order as the tree's `all()`/`any()`.
fn emit(expr: &TargetingExpr, symbols: &mut SymbolTable, ops: &mut Vec<CompiledOp>) {
    match expr {
        TargetingExpr::Everyone => ops.push(CompiledOp::ConstTrue),
        TargetingExpr::Attr(a) => {
            let raw = a.raw();
            ops.push(CompiledOp::Attr {
                word: (raw / 64) as u32,
                mask: 1u64 << (raw % 64),
            });
        }
        TargetingExpr::AgeRange { min, max } => ops.push(CompiledOp::AgeRange {
            min: *min,
            max: *max,
        }),
        TargetingExpr::GenderIs(g) => ops.push(CompiledOp::GenderIs(*g)),
        TargetingExpr::InState(s) => ops.push(CompiledOp::StateEq(symbols.intern(s))),
        TargetingExpr::InZip(z) => ops.push(CompiledOp::ZipEq(symbols.intern(z))),
        TargetingExpr::VisitedZip(z) => ops.push(CompiledOp::VisitedZip(symbols.intern(z))),
        TargetingExpr::WithinRadius { lat, lon, km } => ops.push(CompiledOp::WithinRadius {
            lat: *lat,
            lon: *lon,
            km: *km,
        }),
        TargetingExpr::InAudience(a) => ops.push(CompiledOp::InAudience(*a)),
        TargetingExpr::And(subs) => emit_connective(subs, true, symbols, ops),
        TargetingExpr::Or(subs) => emit_connective(subs, false, symbols, ops),
        TargetingExpr::Not(sub) => {
            emit(sub, symbols, ops);
            ops.push(CompiledOp::Not);
        }
    }
}

/// Emits an `And` (`conjunction == true`) or `Or` connective: operands in
/// order, each but the last followed by a skip op backpatched to the end
/// of the connective. An empty connective is its identity element
/// (vacuous truth for `And`, vacuous falsity for `Or`), matching the
/// tree's `all()`/`any()` on an empty list.
fn emit_connective(
    subs: &[TargetingExpr],
    conjunction: bool,
    symbols: &mut SymbolTable,
    ops: &mut Vec<CompiledOp>,
) {
    if subs.is_empty() {
        ops.push(if conjunction {
            CompiledOp::ConstTrue
        } else {
            CompiledOp::ConstFalse
        });
        return;
    }
    let mut sites = Vec::new();
    for (i, sub) in subs.iter().enumerate() {
        emit(sub, symbols, ops);
        if i + 1 < subs.len() {
            sites.push(ops.len());
            ops.push(CompiledOp::SkipIfFalse(0)); // placeholder, backpatched
        }
    }
    let end = ops.len();
    for site in sites {
        let skip = (end - site - 1) as u32;
        ops[site] = if conjunction {
            CompiledOp::SkipIfFalse(skip)
        } else {
            CompiledOp::SkipIfTrue(skip)
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Gender, ProfileStore};
    use adsim_types::{AttributeId, UserId};
    use std::collections::HashSet;

    struct SetResolver(HashSet<(u64, u64)>);
    impl AudienceResolver for SetResolver {
        fn contains(&self, audience: AudienceId, user: UserId) -> bool {
            self.0.contains(&(audience.raw(), user.raw()))
        }
    }

    #[test]
    fn paper_conjunction_compiles_and_matches() {
        let mut store = ProfileStore::new();
        let id = store.register(29, Gender::Female, "Illinois", "60601");
        store.grant_attribute(id, AttributeId(10)).expect("grant");
        store.grant_attribute(id, AttributeId(11)).expect("grant");
        let spec = TargetingSpec::including_excluding(
            TargetingExpr::And(vec![
                TargetingExpr::AgeRange { min: 24, max: 39 },
                TargetingExpr::InZip("60601".into()),
                TargetingExpr::Attr(AttributeId(10)),
                TargetingExpr::Attr(AttributeId(11)),
            ]),
            TargetingExpr::Attr(AttributeId(12)),
        );
        let compiled = CompiledSpec::compile(&spec, store.symbols_mut());
        // 4 leaves + 3 skips, then the exclusion's skip + leaf + Not.
        assert_eq!(compiled.len(), 10);
        let resolver = SetResolver(HashSet::new());
        let user = store.get(id).expect("u");
        assert!(compiled.matches(user, &resolver));
        assert_eq!(
            compiled.matches(user, &resolver),
            spec.matches(user, &resolver)
        );
    }

    #[test]
    fn symbols_are_shared_regardless_of_intern_order() {
        // Spec compiled before the user registers: both sides intern
        // through the same table, so the geo compares still line up.
        let mut store = ProfileStore::new();
        let spec = TargetingSpec::including(TargetingExpr::And(vec![
            TargetingExpr::InState("Ohio".into()),
            TargetingExpr::VisitedZip("10001".into()),
        ]));
        let compiled = CompiledSpec::compile(&spec, store.symbols_mut());
        let id = store.register(30, Gender::Male, "Ohio", "43004");
        store.record_zip_visit(id, "10001").expect("visit");
        let resolver = SetResolver(HashSet::new());
        assert!(compiled.matches(store.get(id).expect("u"), &resolver));
    }

    #[test]
    fn empty_connectives_match_tree_semantics() {
        let mut store = ProfileStore::new();
        let id = store.register(50, Gender::Male, "Iowa", "50301");
        let resolver = SetResolver(HashSet::new());
        let t = CompiledSpec::compile(
            &TargetingSpec::including(TargetingExpr::And(vec![])),
            store.symbols_mut(),
        );
        let f = CompiledSpec::compile(
            &TargetingSpec::including(TargetingExpr::Or(vec![])),
            store.symbols_mut(),
        );
        let user = store.get(id).expect("u");
        assert!(t.matches(user, &resolver));
        assert!(!f.matches(user, &resolver));
    }

    #[test]
    fn wide_or_compiles_flat_and_short_circuits() {
        // A 254-wide OR (the bit-slice reveal shape): one leaf + one skip
        // per operand but the last, and an early hit jumps straight to
        // the end — the same evaluation order as the tree's `any()`.
        let mut store = ProfileStore::new();
        let wide = TargetingExpr::Or(
            (0..254)
                .map(|i| TargetingExpr::Attr(AttributeId(1000 + i)))
                .collect(),
        );
        let compiled = CompiledSpec::compile(&TargetingSpec::including(wide), store.symbols_mut());
        assert_eq!(compiled.len(), 254 + 253);
        let id = store.register(30, Gender::Male, "Ohio", "43004");
        store.grant_attribute(id, AttributeId(1000)).expect("grant");
        let resolver = SetResolver(HashSet::new());
        assert!(compiled.matches(store.get(id).expect("u"), &resolver));
    }

    #[test]
    fn skip_offsets_cover_nested_connectives() {
        // And[Or[a, b], c, Not(d)] with an exclusion: every operand value
        // and every skip path must agree with the tree on all 16 profiles
        // of the 4 referenced attributes.
        let expr = |n: u64| TargetingExpr::Attr(AttributeId(n));
        let spec = TargetingSpec::including_excluding(
            TargetingExpr::And(vec![
                TargetingExpr::Or(vec![expr(1), expr(2)]),
                expr(3),
                TargetingExpr::Not(Box::new(expr(4))),
            ]),
            expr(5),
        );
        let resolver = SetResolver(HashSet::new());
        for bits in 0u32..32 {
            let mut store = ProfileStore::new();
            let compiled = CompiledSpec::compile(&spec, store.symbols_mut());
            let id = store.register(30, Gender::Female, "Ohio", "43004");
            for a in 0..5 {
                if bits >> a & 1 == 1 {
                    store
                        .grant_attribute(id, AttributeId(a + 1))
                        .expect("grant");
                }
            }
            let user = store.get(id).expect("u");
            assert_eq!(
                compiled.matches(user, &resolver),
                spec.matches(user, &resolver),
                "diverged at attribute bits {bits:05b}"
            );
        }
    }

    #[test]
    fn arena_programs_agree_with_standalone_specs() {
        // The arena shares the interpreter with CompiledSpec; what it
        // adds is the span bookkeeping, so adjacent programs (including
        // an exclusion's extra ops) must stay correctly delimited.
        let mut store = ProfileStore::new();
        let specs = [
            TargetingSpec::including(TargetingExpr::Attr(AttributeId(1))),
            TargetingSpec::including_excluding(
                TargetingExpr::Or(vec![
                    TargetingExpr::InState("Ohio".into()),
                    TargetingExpr::VisitedZip("60601".into()),
                ]),
                TargetingExpr::Attr(AttributeId(2)),
            ),
            TargetingSpec::including(TargetingExpr::Everyone),
        ];
        let mut arena = ProgramArena::new();
        for (i, spec) in specs.iter().enumerate() {
            assert_eq!(arena.push(spec, store.symbols_mut()), i);
        }
        assert_eq!(arena.len(), specs.len());
        let a = store.register(30, Gender::Female, "Ohio", "43004");
        store.grant_attribute(a, AttributeId(1)).expect("grant");
        let b = store.register(41, Gender::Male, "Texas", "73301");
        store.record_zip_visit(b, "60601").expect("visit");
        store.grant_attribute(b, AttributeId(2)).expect("grant");
        let resolver = SetResolver(HashSet::new());
        for uid in [a, b] {
            let user = store.get(uid).expect("user");
            for (i, spec) in specs.iter().enumerate() {
                assert_eq!(
                    arena.matches(i, user, &resolver),
                    Some(spec.matches(user, &resolver)),
                    "arena program {i} diverged for user {uid:?}"
                );
            }
            assert_eq!(arena.matches(specs.len(), user, &resolver), None);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::profile::{Gender, ProfileStore};
    use adsim_types::AttributeId;
    use proptest::prelude::*;

    /// Resolver answering membership from a bitmask on the audience id
    /// (pure and user-independent, like a frozen membership set).
    struct MaskResolver(u64);
    impl AudienceResolver for MaskResolver {
        fn contains(&self, audience: AudienceId, _user: adsim_types::UserId) -> bool {
            audience.raw() < 64 && (self.0 >> audience.raw()) & 1 == 1
        }
    }

    /// Expressions over every leaf kind the compiler lowers.
    fn arb_expr() -> impl Strategy<Value = TargetingExpr> {
        let leaf = prop_oneof![
            Just(TargetingExpr::Everyone),
            (1u64..20).prop_map(|a| TargetingExpr::Attr(AttributeId(a))),
            // Out-of-catalog ids exercise the bitset's grow path.
            (900u64..1200).prop_map(|a| TargetingExpr::Attr(AttributeId(a))),
            (18u8..60, 0u8..30).prop_map(|(min, extra)| TargetingExpr::AgeRange {
                min,
                max: min.saturating_add(extra),
            }),
            prop_oneof![
                Just(Gender::Female),
                Just(Gender::Male),
                Just(Gender::Unspecified)
            ]
            .prop_map(TargetingExpr::GenderIs),
            prop_oneof![Just("Ohio"), Just("Texas"), Just("Utah")]
                .prop_map(|s| TargetingExpr::InState(s.into())),
            "[0-9]{2}".prop_map(TargetingExpr::InZip),
            "[0-9]{2}".prop_map(TargetingExpr::VisitedZip),
            (40.0f64..43.0, -75.0f64..-70.0, 1.0f64..400.0)
                .prop_map(|(lat, lon, km)| TargetingExpr::WithinRadius { lat, lon, km }),
            (0u64..8).prop_map(|a| TargetingExpr::InAudience(AudienceId(a))),
        ];
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..4).prop_map(TargetingExpr::And),
                prop::collection::vec(inner.clone(), 0..4).prop_map(TargetingExpr::Or),
                inner.prop_map(|e| TargetingExpr::Not(Box::new(e))),
            ]
        })
    }

    proptest! {
        /// The tentpole equivalence: for random profiles × random specs,
        /// the compiled program and the tree oracle agree — whichever
        /// side interned its strings first.
        #[test]
        fn compiled_equals_tree_oracle(
            include in arb_expr(),
            exclude in prop_oneof![Just(None), arb_expr().prop_map(Some)],
            compile_first in any::<bool>(),
            age in 16u8..80,
            state_ix in 0usize..4,
            zip in "[0-9]{2}",
            attrs in prop::collection::vec(prop_oneof![1u64..20, 900u64..1200], 0..8),
            visited in prop::collection::vec("[0-9]{2}", 0..4),
            coords in prop_oneof![
                Just(None),
                (40.0f64..43.0, -75.0f64..-70.0).prop_map(Some)
            ],
            mask in any::<u64>(),
        ) {
            let spec = TargetingSpec { include, exclude };
            let mut store = ProfileStore::new();
            let register = |store: &mut ProfileStore| {
                let state = ["Ohio", "Texas", "Utah", "Maine"][state_ix];
                let id = store.register(age, Gender::Female, state, &zip);
                for &a in &attrs {
                    store.grant_attribute(id, AttributeId(a)).expect("grant");
                }
                for z in &visited {
                    store.record_zip_visit(id, z).expect("visit");
                }
                if let Some((lat, lon)) = coords {
                    store.set_coordinates(id, lat, lon).expect("coords");
                }
                id
            };
            // Interning order between profile and spec must not matter.
            let (id, compiled) = if compile_first {
                let c = CompiledSpec::compile(&spec, store.symbols_mut());
                (register(&mut store), c)
            } else {
                let id = register(&mut store);
                (id, CompiledSpec::compile(&spec, store.symbols_mut()))
            };
            let resolver = MaskResolver(mask);
            let user = store.get(id).expect("user");
            prop_assert_eq!(
                compiled.matches(user, &resolver),
                spec.matches(user, &resolver),
                "compiled and tree evaluators diverged"
            );
        }
    }
}
