//! Advertiser pages.
//!
//! The paper's validation signed its users up "by liking a Facebook page
//! that we as the transparency provider had created". Pages here are
//! minimal: an advertiser-owned entity users can like; likes feed
//! page-engagement audiences through the `Platform` façade.

use adsim_types::{AccountId, Error, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An advertiser-created page.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Page {
    /// Page id (a bare u64; pages appear in user profiles as liked ids).
    pub id: u64,
    /// Owning advertiser account.
    pub owner: AccountId,
    /// Display name, e.g. `"Know Your Data (transparency provider)"`.
    pub name: String,
}

/// The platform's page registry.
#[derive(Debug, Clone, Default)]
pub struct PageRegistry {
    pages: BTreeMap<u64, Page>,
    next_id: u64,
}

impl PageRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a page owned by `owner`.
    pub fn create(&mut self, owner: AccountId, name: impl Into<String>) -> u64 {
        self.next_id += 1;
        self.pages.insert(
            self.next_id,
            Page {
                id: self.next_id,
                owner,
                name: name.into(),
            },
        );
        self.next_id
    }

    /// Looks up a page.
    pub fn get(&self, id: u64) -> Result<&Page> {
        self.pages
            .get(&id)
            .ok_or_else(|| Error::not_found("page", id))
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True if no pages exist.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_get() {
        let mut reg = PageRegistry::new();
        let id = reg.create(AccountId(3), "Know Your Data");
        let page = reg.get(id).expect("page");
        assert_eq!(page.name, "Know Your Data");
        assert_eq!(page.owner, AccountId(3));
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
    }

    #[test]
    fn missing_page_errors() {
        let reg = PageRegistry::new();
        assert!(reg.get(1).is_err());
    }

    #[test]
    fn ids_are_sequential() {
        let mut reg = PageRegistry::new();
        assert_eq!(reg.create(AccountId(1), "a"), 1);
        assert_eq!(reg.create(AccountId(1), "b"), 2);
    }
}
