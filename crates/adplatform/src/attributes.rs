//! The platform's targeting-attribute catalog.
//!
//! The paper reports that, as of early 2018, Facebook offered U.S.
//! advertisers **614 platform-computed attributes** plus **507 partner
//! categories** sourced from data brokers. This module reproduces that
//! catalog: platform attributes are generated deterministically across the
//! interest/demographic/behaviour families real platforms expose, and
//! partner attributes are registered from a `treads_broker::PartnerCatalog`.
//!
//! The catalog also implements the keyword search the paper mentions
//! (Facebook "allows advertisers to search by particular keywords and
//! select from a list of targeting attributes that match").

use adsim_types::AttributeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Where an attribute's data comes from.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttributeSource {
    /// Computed by the platform from on-platform activity.
    Platform,
    /// Sourced from an external data broker ("partner category").
    Partner {
        /// Broker name, e.g. `"NorthStar Data"`.
        broker: String,
    },
}

impl AttributeSource {
    /// True for broker-sourced partner categories.
    pub fn is_partner(&self) -> bool {
        matches!(self, AttributeSource::Partner { .. })
    }
}

/// One targeting attribute in the platform catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeDef {
    /// Platform-assigned identifier.
    pub id: AttributeId,
    /// Catalog-unique display name.
    pub name: String,
    /// Data source (platform vs partner).
    pub source: AttributeSource,
    /// Mutually-exclusive value group, if any (e.g. `"net_worth"`).
    pub group: Option<String>,
    /// Fraction of platform users holding the attribute, used by the
    /// platform's explanation generator ("most prevalent attribute") and
    /// by workload generation.
    pub prevalence: f64,
}

/// Number of platform-computed attributes the paper reports (early 2018).
pub const PLATFORM_ATTRIBUTE_COUNT: usize = 614;

/// The full attribute catalog.
#[derive(Debug, Clone, Default)]
pub struct AttributeCatalog {
    defs: Vec<AttributeDef>,
    by_name: HashMap<String, AttributeId>,
}

impl AttributeCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the catalog with the paper's U.S. composition: 614 platform
    /// attributes and the given partner catalog (507 attributes for
    /// [`treads_broker::PartnerCatalog::us`]).
    pub fn us_2018(partner: &treads_broker::PartnerCatalog) -> Self {
        let mut catalog = Self::new();
        for (name, group, prevalence) in platform_attribute_specs() {
            catalog.register(name, AttributeSource::Platform, group, prevalence);
        }
        assert_eq!(
            catalog.len(),
            PLATFORM_ATTRIBUTE_COUNT,
            "platform attribute generator must produce exactly {PLATFORM_ATTRIBUTE_COUNT}"
        );
        for attr in partner.attributes() {
            catalog.register(
                attr.name.clone(),
                AttributeSource::Partner {
                    broker: attr.broker.to_string(),
                },
                attr.group.map(str::to_string),
                attr.base_rate,
            );
        }
        catalog
    }

    /// Registers an attribute and returns its id. Panics on duplicate
    /// names — the catalog is constructed once, at platform boot, and a
    /// duplicate means a generator bug.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        source: AttributeSource,
        group: Option<String>,
        prevalence: f64,
    ) -> AttributeId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate attribute registration: {name}"
        );
        let id = AttributeId(self.defs.len() as u64 + 1);
        self.by_name.insert(name.clone(), id);
        self.defs.push(AttributeDef {
            id,
            name,
            source,
            group,
            prevalence,
        });
        id
    }

    /// Number of attributes in the catalog.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True if no attributes are registered.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Resolves an attribute by id.
    pub fn get(&self, id: AttributeId) -> Option<&AttributeDef> {
        let idx = id.raw().checked_sub(1)? as usize;
        self.defs.get(idx)
    }

    /// Resolves an attribute by exact name.
    pub fn id_of(&self, name: &str) -> Option<AttributeId> {
        self.by_name.get(name).copied()
    }

    /// All attributes, in registration order.
    pub fn all(&self) -> &[AttributeDef] {
        &self.defs
    }

    /// All partner-category attributes (the ones the platform's own
    /// transparency page hides).
    pub fn partner_attributes(&self) -> Vec<&AttributeDef> {
        self.defs.iter().filter(|d| d.source.is_partner()).collect()
    }

    /// All platform-computed attributes.
    pub fn platform_attributes(&self) -> Vec<&AttributeDef> {
        self.defs
            .iter()
            .filter(|d| !d.source.is_partner())
            .collect()
    }

    /// Case-insensitive keyword search over attribute names — the
    /// advertiser-facing search box the paper describes.
    pub fn search(&self, keyword: &str) -> Vec<&AttributeDef> {
        let needle = keyword.to_lowercase();
        self.defs
            .iter()
            .filter(|d| d.name.to_lowercase().contains(&needle))
            .collect()
    }

    /// Members of a mutually-exclusive group, in registration order.
    pub fn group(&self, group: &str) -> Vec<&AttributeDef> {
        self.defs
            .iter()
            .filter(|d| d.group.as_deref() == Some(group))
            .collect()
    }
}

/// Deterministic generator for the 614 platform-computed attributes.
///
/// The families mirror what real platforms expose (interests, demographics,
/// behaviours, life events, device usage); names are synthetic. Returns
/// `(name, group, prevalence)` triples.
fn platform_attribute_specs() -> Vec<(String, Option<String>, f64)> {
    let mut out = Vec::with_capacity(PLATFORM_ATTRIBUTE_COUNT);

    // Interests: 18 categories x 20 topics = 360.
    let interest_categories: [(&str, [&str; 20]); 18] = [
        (
            "Sports",
            [
                "soccer",
                "basketball",
                "american football",
                "baseball",
                "tennis",
                "golf",
                "running",
                "cycling",
                "swimming",
                "yoga",
                "martial arts",
                "boxing",
                "skiing",
                "snowboarding",
                "surfing",
                "climbing",
                "hiking",
                "fishing",
                "hunting",
                "esports",
            ],
        ),
        (
            "Music",
            [
                "rock",
                "pop",
                "hip hop",
                "jazz",
                "classical",
                "country",
                "electronic",
                "metal",
                "folk",
                "blues",
                "reggae",
                "latin",
                "k-pop",
                "opera",
                "musicals",
                "salsa dancing",
                "choir",
                "songwriting",
                "djing",
                "vinyl collecting",
            ],
        ),
        (
            "Food & Drink",
            [
                "cooking",
                "baking",
                "grilling",
                "wine",
                "craft beer",
                "coffee",
                "tea",
                "veganism",
                "vegetarianism",
                "organic food",
                "fine dining",
                "street food",
                "sushi",
                "pizza",
                "barbecue",
                "desserts",
                "cocktails",
                "food trucks",
                "farmers markets",
                "meal prep",
            ],
        ),
        (
            "Travel",
            [
                "beach vacations",
                "city breaks",
                "backpacking",
                "luxury travel",
                "cruises",
                "camping",
                "road trips",
                "national parks",
                "theme parks",
                "air travel",
                "train travel",
                "hostels",
                "resorts",
                "adventure travel",
                "ecotourism",
                "travel photography",
                "solo travel",
                "family travel",
                "business travel",
                "travel hacking",
            ],
        ),
        (
            "Technology",
            [
                "smartphones",
                "laptops",
                "gadgets",
                "artificial intelligence",
                "programming",
                "web development",
                "gaming pcs",
                "consoles",
                "virtual reality",
                "drones",
                "smart home",
                "wearables",
                "cryptocurrencies",
                "cybersecurity",
                "robotics",
                "3d printing",
                "open source",
                "tech startups",
                "electric vehicles",
                "space tech",
            ],
        ),
        (
            "Entertainment",
            [
                "movies",
                "television",
                "streaming",
                "documentaries",
                "comedy",
                "drama",
                "science fiction",
                "horror",
                "animation",
                "anime",
                "celebrities",
                "award shows",
                "film festivals",
                "stand-up comedy",
                "theater",
                "ballet",
                "circus",
                "magic",
                "podcasts",
                "audiobooks",
            ],
        ),
        (
            "Fashion & Beauty",
            [
                "fashion",
                "streetwear",
                "luxury brands",
                "sneakers",
                "jewelry",
                "watches",
                "makeup",
                "skincare",
                "haircare",
                "fragrance",
                "nail art",
                "modeling",
                "fashion design",
                "thrifting",
                "sustainable fashion",
                "menswear",
                "womenswear",
                "accessories",
                "tattoos",
                "piercings",
            ],
        ),
        (
            "Home & Garden",
            [
                "interior design",
                "diy projects",
                "woodworking",
                "gardening",
                "houseplants",
                "landscaping",
                "home renovation",
                "furniture",
                "home decor",
                "organization",
                "cleaning hacks",
                "smart appliances",
                "tiny homes",
                "architecture",
                "real estate",
                "feng shui",
                "composting",
                "beekeeping",
                "urban farming",
                "homesteading",
            ],
        ),
        (
            "Health & Fitness",
            [
                "weightlifting",
                "crossfit",
                "pilates",
                "meditation",
                "mindfulness",
                "nutrition",
                "weight loss",
                "marathon training",
                "triathlon",
                "home workouts",
                "gym culture",
                "physical therapy",
                "mental health",
                "sleep optimization",
                "supplements",
                "intermittent fasting",
                "keto diet",
                "paleo diet",
                "wellness retreats",
                "cold plunges",
            ],
        ),
        (
            "Business & Finance",
            [
                "entrepreneurship",
                "investing",
                "stock market",
                "personal finance",
                "budgeting",
                "retirement planning",
                "real estate investing",
                "side hustles",
                "freelancing",
                "marketing",
                "sales",
                "leadership",
                "productivity",
                "networking",
                "economics",
                "accounting",
                "venture capital",
                "small business",
                "e-commerce",
                "dropshipping",
            ],
        ),
        (
            "Family & Relationships",
            [
                "parenting",
                "pregnancy",
                "newborn care",
                "toddlers",
                "homeschooling",
                "adoption",
                "dating",
                "weddings",
                "marriage",
                "grandparenting",
                "family games",
                "family travel planning",
                "co-parenting",
                "foster care",
                "genealogy",
                "family photography",
                "birthday parties",
                "baby names",
                "childcare",
                "family budgeting",
            ],
        ),
        (
            "Vehicles",
            [
                "cars",
                "motorcycles",
                "trucks",
                "classic cars",
                "car restoration",
                "racing",
                "formula 1",
                "nascar",
                "off-roading",
                "boats",
                "rvs",
                "car detailing",
                "car audio",
                "motorcycling gear",
                "car shows",
                "auto repair",
                "car camping",
                "supercars",
                "car reviews",
                "driving",
            ],
        ),
        (
            "Arts & Culture",
            [
                "painting",
                "drawing",
                "sculpture",
                "photography",
                "museums",
                "art history",
                "poetry",
                "creative writing",
                "literature",
                "book clubs",
                "calligraphy",
                "pottery",
                "knitting",
                "quilting",
                "origami",
                "street art",
                "galleries",
                "antiques",
                "philosophy",
                "languages",
            ],
        ),
        (
            "Outdoors & Nature",
            [
                "birdwatching",
                "stargazing",
                "kayaking",
                "canoeing",
                "rafting",
                "sailing",
                "scuba diving",
                "snorkeling",
                "wildlife",
                "conservation",
                "foraging",
                "mushroom hunting",
                "rock collecting",
                "geocaching",
                "trail running",
                "mountaineering",
                "bouldering",
                "paragliding",
                "hot springs",
                "storm watching",
            ],
        ),
        (
            "Games & Hobbies",
            [
                "board games",
                "card games",
                "chess",
                "poker",
                "puzzles",
                "video games",
                "tabletop rpgs",
                "miniature painting",
                "model trains",
                "lego",
                "collectibles",
                "trading cards",
                "arcade games",
                "escape rooms",
                "trivia",
                "karaoke",
                "magic the gathering",
                "speedrunning",
                "game development",
                "cosplay",
            ],
        ),
        (
            "Science & Education",
            [
                "astronomy",
                "physics",
                "biology",
                "chemistry",
                "mathematics",
                "history",
                "archaeology",
                "geography",
                "psychology",
                "neuroscience",
                "climate science",
                "oceanography",
                "geology",
                "paleontology",
                "online courses",
                "test prep",
                "scholarships",
                "study abroad",
                "science museums",
                "citizen science",
            ],
        ),
        (
            "Pets & Animals",
            [
                "dogs",
                "cats",
                "dog training",
                "cat behavior",
                "aquariums",
                "reptiles",
                "birds",
                "horses",
                "rabbits",
                "hamsters",
                "pet adoption",
                "pet grooming",
                "pet photography",
                "exotic pets",
                "pet nutrition",
                "veterinary medicine",
                "animal rescue",
                "dog parks",
                "pet fashion",
                "pet tech",
            ],
        ),
        (
            "News & Society",
            [
                "local news",
                "world news",
                "politics",
                "elections",
                "public policy",
                "social causes",
                "volunteering",
                "activism",
                "charity",
                "community organizing",
                "urban planning",
                "public transit",
                "civic tech",
                "journalism",
                "fact checking",
                "debates",
                "law",
                "human rights",
                "environment",
                "sustainability",
            ],
        ),
    ];
    for (category, topics) in interest_categories {
        for topic in topics {
            out.push((format!("Interest: {topic} ({category})"), None, 0.08));
        }
    }

    // Demographics: 254 attributes with value groups.
    for band in ["18-24", "25-34", "35-44", "45-54", "55-64", "65+"] {
        out.push((
            format!("Age bracket: {band}"),
            Some("age_bracket".into()),
            0.16,
        ));
    }
    for g in ["female", "male", "unspecified"] {
        out.push((format!("Gender: {g}"), Some("gender".into()), 0.33));
    }
    for e in [
        "high school",
        "some college",
        "college degree",
        "graduate degree",
        "doctorate",
    ] {
        out.push((format!("Education: {e}"), Some("education".into()), 0.20));
    }
    for r in [
        "single",
        "in a relationship",
        "engaged",
        "married",
        "separated",
        "widowed",
    ] {
        out.push((
            format!("Relationship: {r}"),
            Some("relationship".into()),
            0.16,
        ));
    }
    for l in [
        "english",
        "spanish",
        "chinese",
        "french",
        "german",
        "portuguese",
        "hindi",
        "arabic",
        "korean",
        "vietnamese",
    ] {
        out.push((format!("Language: {l}"), Some("language".into()), 0.10));
    }
    // 50 US states as "lives in" demographics.
    for state in US_STATES {
        out.push((format!("Lives in: {state}"), Some("state".into()), 0.02));
    }
    // Life events (20).
    for ev in [
        "new job",
        "recently moved",
        "new relationship",
        "newly engaged",
        "newly married",
        "anniversary soon",
        "birthday this month",
        "new pet",
        "new baby",
        "recently graduated",
        "started college",
        "retired recently",
        "bought a home",
        "away from hometown",
        "away from family",
        "long-distance relationship",
        "upcoming travel",
        "recovering from surgery",
        "training for event",
        "starting a business",
    ] {
        out.push((format!("Life event: {ev}"), None, 0.04));
    }
    // Device/usage behaviours (40).
    for d in [
        "ios user",
        "android user",
        "desktop-primary user",
        "mobile-primary user",
        "tablet user",
        "smart tv app user",
        "4g user",
        "5g user",
        "wifi-primary user",
        "new device owner",
        "old device owner",
        "heavy app user",
        "light app user",
        "night-time user",
        "morning user",
        "weekend-heavy user",
        "frequent sharer",
        "frequent commenter",
        "frequent liker",
        "video watcher",
        "live video watcher",
        "stories viewer",
        "marketplace browser",
        "group participant",
        "event attender",
        "page follower (brands)",
        "page follower (news)",
        "page follower (sports)",
        "page follower (entertainment)",
        "messaging-heavy user",
        "photo uploader",
        "check-in user",
        "poll participant",
        "link clicker",
        "ad clicker",
        "in-app shopper",
        "payment user",
        "dating feature user",
        "job-search feature user",
        "gaming feature user",
    ] {
        out.push((format!("Behavior: {d}"), None, 0.12));
    }
    // Digital activity composites (remaining to reach 254 demographic-side):
    for c in [
        "frequent traveler (platform-inferred)",
        "commuter (platform-inferred)",
        "expat (platform-inferred)",
        "returned from trip recently",
        "lives near city center",
        "lives in suburbs",
        "lives in rural area",
        "recently used location services",
        "multi-device user",
        "cross-border friend network",
        "large friend network",
        "small friend network",
        "politically engaged (platform-inferred)",
        "likely early adopter",
        "deal hunter (platform-inferred)",
        "brand engager",
        "content creator",
        "influencer follower",
        "niche community member",
        "local business supporter",
    ] {
        out.push((format!("Inferred: {c}"), None, 0.07));
    }
    // Work: industries (24).
    for ind in [
        "education",
        "healthcare",
        "technology",
        "finance",
        "retail",
        "manufacturing",
        "construction",
        "transportation",
        "hospitality",
        "agriculture",
        "energy",
        "media",
        "government",
        "legal",
        "real estate",
        "telecommunications",
        "pharmaceuticals",
        "aerospace",
        "automotive industry",
        "entertainment industry",
        "nonprofit",
        "military",
        "consulting",
        "logistics",
    ] {
        out.push((format!("Works in: {ind}"), Some("industry".into()), 0.05));
    }
    // Education: fields of study (20).
    for field in [
        "computer science",
        "engineering",
        "business administration",
        "economics",
        "medicine",
        "nursing",
        "law",
        "education studies",
        "psychology",
        "sociology",
        "political science",
        "english literature",
        "history",
        "mathematics",
        "physics",
        "chemistry",
        "biology",
        "art and design",
        "communications",
        "environmental science",
    ] {
        out.push((
            format!("Studied: {field}"),
            Some("field_of_study".into()),
            0.04,
        ));
    }
    // Page-category affinities (30).
    for cat in [
        "local restaurants",
        "national brands",
        "sports teams",
        "musicians",
        "authors",
        "tv shows",
        "movies pages",
        "video game studios",
        "clothing brands",
        "beauty brands",
        "airlines",
        "hotels",
        "universities",
        "museums pages",
        "charities",
        "news outlets",
        "magazines",
        "podcasts pages",
        "fitness studios",
        "grocery chains",
        "coffee chains",
        "fast food chains",
        "car manufacturers",
        "tech companies",
        "financial institutions",
        "insurance companies",
        "telecom providers",
        "streaming services",
        "online retailers",
        "local services",
    ] {
        out.push((format!("Affinity: {cat}"), None, 0.09));
    }
    // Connectivity & account characteristics (20).
    for c in [
        "account age under 1 year",
        "account age 1-5 years",
        "account age over 5 years",
        "verified contact email",
        "verified contact phone",
        "two-factor enrolled",
        "connected instagram-like app",
        "connected messenger-like app",
        "business page admin",
        "group admin",
        "event creator",
        "marketplace seller",
        "developer account",
        "advertiser account holder",
        "creator fund participant",
        "public profile",
        "private profile",
        "high-engagement account",
        "dormant-then-returned account",
        "multilingual account",
    ] {
        out.push((format!("Account: {c}"), account_group(c), 0.10));
    }

    out
}

/// Account-age buckets are mutually exclusive; the rest of the account
/// characteristics are independent flags.
fn account_group(name: &str) -> Option<String> {
    if name.starts_with("account age") {
        Some("account_age".into())
    } else {
        None
    }
}

/// The 50 U.S. state names used for location demographics.
pub const US_STATES: [&str; 50] = [
    "Alabama",
    "Alaska",
    "Arizona",
    "Arkansas",
    "California",
    "Colorado",
    "Connecticut",
    "Delaware",
    "Florida",
    "Georgia",
    "Hawaii",
    "Idaho",
    "Illinois",
    "Indiana",
    "Iowa",
    "Kansas",
    "Kentucky",
    "Louisiana",
    "Maine",
    "Maryland",
    "Massachusetts",
    "Michigan",
    "Minnesota",
    "Mississippi",
    "Missouri",
    "Montana",
    "Nebraska",
    "Nevada",
    "New Hampshire",
    "New Jersey",
    "New Mexico",
    "New York",
    "North Carolina",
    "North Dakota",
    "Ohio",
    "Oklahoma",
    "Oregon",
    "Pennsylvania",
    "Rhode Island",
    "South Carolina",
    "South Dakota",
    "Tennessee",
    "Texas",
    "Utah",
    "Vermont",
    "Virginia",
    "Washington",
    "West Virginia",
    "Wisconsin",
    "Wyoming",
];

#[cfg(test)]
mod tests {
    use super::*;
    use treads_broker::PartnerCatalog;

    #[test]
    fn us_2018_catalog_has_paper_composition() {
        let partner = PartnerCatalog::us();
        let catalog = AttributeCatalog::us_2018(&partner);
        assert_eq!(catalog.platform_attributes().len(), 614);
        assert_eq!(catalog.partner_attributes().len(), 507);
        assert_eq!(catalog.len(), 614 + 507);
    }

    #[test]
    fn ids_resolve_round_trip() {
        let partner = PartnerCatalog::us();
        let catalog = AttributeCatalog::us_2018(&partner);
        for def in catalog.all() {
            assert_eq!(catalog.get(def.id).expect("id resolves").name, def.name);
            assert_eq!(catalog.id_of(&def.name), Some(def.id));
        }
        assert!(catalog.get(AttributeId(0)).is_none());
        assert!(catalog.get(AttributeId(99_999)).is_none());
    }

    #[test]
    fn partner_attributes_keep_broker_identity() {
        let partner = PartnerCatalog::us();
        let catalog = AttributeCatalog::us_2018(&partner);
        let id = catalog.id_of("Net worth: $2M+").expect("exists");
        let def = catalog.get(id).expect("resolves");
        match &def.source {
            AttributeSource::Partner { broker } => {
                assert!(treads_broker::catalog::BROKERS.contains(&broker.as_str()));
            }
            other => panic!("expected partner source, got {other:?}"),
        }
        assert!(def.source.is_partner());
    }

    #[test]
    fn keyword_search_matches_paper_example() {
        // The paper's running example targets people interested in Salsa
        // dancing — searchable by keyword.
        let partner = PartnerCatalog::us();
        let catalog = AttributeCatalog::us_2018(&partner);
        let hits = catalog.search("salsa");
        assert!(hits.iter().any(|d| d.name.contains("salsa dancing")));
        // Search is case-insensitive.
        assert_eq!(catalog.search("SALSA").len(), hits.len());
        // And scoped: nonsense finds nothing.
        assert!(catalog.search("xyzzy-no-such-topic").is_empty());
    }

    #[test]
    fn groups_span_platform_and_partner_attributes() {
        let partner = PartnerCatalog::us();
        let catalog = AttributeCatalog::us_2018(&partner);
        assert_eq!(catalog.group("age_bracket").len(), 6);
        assert_eq!(catalog.group("net_worth").len(), 9);
        assert_eq!(catalog.group("state").len(), 50);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute registration")]
    fn duplicate_registration_panics() {
        let mut catalog = AttributeCatalog::new();
        catalog.register("X", AttributeSource::Platform, None, 0.1);
        catalog.register("X", AttributeSource::Platform, None, 0.1);
    }

    #[test]
    fn empty_catalog_behaves() {
        let catalog = AttributeCatalog::new();
        assert!(catalog.is_empty());
        assert_eq!(catalog.len(), 0);
        assert!(catalog.search("anything").is_empty());
    }
}
