//! The platform's fallible-API error surface.
//!
//! [`PlatformError`] wraps the workspace's domain [`Error`] with the two
//! failure classes a *production* ad platform adds on top of domain rules:
//! transient unavailability (API brownouts, rate limiting) and internal
//! invariant violations. The resilience layer's fault injector produces
//! `Unavailable` errors, and the provider-side retry loop keys its
//! retry-vs-give-up decision on [`PlatformError::is_transient`].

use adsim_types::{Duration, Error};

/// An error returned by a fallible platform API call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// The API is transiently unavailable (brownout / rate limit). Safe to
    /// retry after the suggested simulated delay.
    Unavailable {
        /// Platform-suggested minimum wait before retrying.
        retry_in: Duration,
    },
    /// A domain-rule rejection (policy violation, suspended account,
    /// unknown entity…). Retrying the identical call cannot succeed.
    Api(Error),
    /// An internal invariant was violated; the call's effects (if any)
    /// must be considered lost.
    Internal {
        /// Which invariant broke.
        what: String,
    },
}

impl PlatformError {
    /// True if retrying the same call can succeed (only transient
    /// unavailability qualifies — domain rejections are deterministic).
    pub fn is_transient(&self) -> bool {
        matches!(self, PlatformError::Unavailable { .. })
    }
}

impl From<Error> for PlatformError {
    fn from(e: Error) -> Self {
        match e {
            Error::Internal { what } => PlatformError::Internal { what },
            other => PlatformError::Api(other),
        }
    }
}

impl std::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlatformError::Unavailable { retry_in } => {
                write!(f, "platform API unavailable, retry in {} ms", retry_in.0)
            }
            PlatformError::Api(e) => write!(f, "{e}"),
            PlatformError::Internal { what } => {
                write!(f, "platform internal invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_classification() {
        assert!(PlatformError::Unavailable {
            retry_in: Duration(100)
        }
        .is_transient());
        assert!(!PlatformError::Api(Error::invalid("x")).is_transient());
        assert!(!PlatformError::Internal { what: "x".into() }.is_transient());
    }

    #[test]
    fn internal_domain_errors_map_to_internal() {
        let e: PlatformError = Error::Internal { what: "w".into() }.into();
        assert_eq!(e, PlatformError::Internal { what: "w".into() });
        let e: PlatformError = Error::invalid("bad").into();
        assert!(matches!(e, PlatformError::Api(_)));
    }
}
