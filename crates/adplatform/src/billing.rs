//! CPM billing.
//!
//! Every won impression charges the winning campaign `clearing_cpm / 1000`.
//! The ledger tracks spend per account, campaign, and ad, and enforces
//! campaign budgets.
//!
//! The **small-spend waiver** reproduces the paper's observation that its
//! validation "ads had zero cost since too few users were reached":
//! platforms do not invoice trace amounts, so campaigns whose total accrued
//! spend stays under the waiver threshold are billed $0 at invoice time.

use adsim_types::{AccountId, AdId, CampaignId, Money};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An account invoice.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Invoice {
    /// The invoiced account.
    pub account: AccountId,
    /// Sum of all accrued charges.
    pub gross: Money,
    /// Charges waived under the small-spend rule.
    pub waived: Money,
    /// Amount actually due (`gross - waived`).
    pub due: Money,
}

/// Read-only budget information, as seen by the eligibility check.
///
/// The live [`BillingLedger`] implements this, and so does the frozen
/// [`BudgetSnapshot`] the parallel engine hands its shards: eligibility is
/// a pure read, so the decide path never needs the mutable ledger.
pub trait BudgetView {
    /// True if a campaign with `budget` has spending room left.
    fn within_budget(&self, campaign: CampaignId, budget: Option<Money>) -> bool;
}

/// A frozen copy of per-campaign spend, taken at a tick boundary.
///
/// Shards check budgets against this snapshot while the tick's charges
/// accumulate in event batches, so every shard — and every shard *count* —
/// sees the same budget state for the same simulated tick.
#[derive(Debug, Clone, Default)]
pub struct BudgetSnapshot {
    campaign_spend: BTreeMap<CampaignId, Money>,
}

impl BudgetView for BudgetSnapshot {
    fn within_budget(&self, campaign: CampaignId, budget: Option<Money>) -> bool {
        match budget {
            None => true,
            Some(b) => {
                self.campaign_spend
                    .get(&campaign)
                    .copied()
                    .unwrap_or(Money::ZERO)
                    < b
            }
        }
    }
}

/// The platform's billing ledger.
#[derive(Debug, Clone, Default)]
pub struct BillingLedger {
    account_spend: BTreeMap<AccountId, Money>,
    campaign_spend: BTreeMap<CampaignId, Money>,
    ad_spend: BTreeMap<AdId, Money>,
    campaign_account: BTreeMap<CampaignId, AccountId>,
    /// Campaigns whose accrued spend is below this are waived at invoicing.
    pub small_spend_waiver: Money,
    // Lifetime observability counters, kept as primitives so `Default`
    // derives cleanly and reads are a plain copy.
    impressions_charged: u64,
    charged_micros: i64,
}

impl BillingLedger {
    /// A ledger with the given waiver threshold.
    pub fn new(small_spend_waiver: Money) -> Self {
        Self {
            small_spend_waiver,
            ..Self::default()
        }
    }

    /// Charges one impression at the given clearing CPM.
    pub fn charge_impression(
        &mut self,
        account: AccountId,
        campaign: CampaignId,
        ad: AdId,
        clearing_cpm: Money,
    ) -> Money {
        let price = clearing_cpm.cpm_per_impression();
        *self.account_spend.entry(account).or_default() += price;
        *self.campaign_spend.entry(campaign).or_default() += price;
        *self.ad_spend.entry(ad).or_default() += price;
        self.campaign_account.insert(campaign, account);
        self.impressions_charged += 1;
        self.charged_micros += price.as_micros();
        price
    }

    /// Lifetime count of impressions this ledger has charged.
    pub fn impressions_charged(&self) -> u64 {
        self.impressions_charged
    }

    /// Lifetime sum of every charge (before waivers).
    pub fn total_charged(&self) -> Money {
        Money::micros(self.charged_micros)
    }

    /// Accrued spend of a campaign.
    pub fn campaign_spend(&self, campaign: CampaignId) -> Money {
        self.campaign_spend
            .get(&campaign)
            .copied()
            .unwrap_or(Money::ZERO)
    }

    /// Accrued spend of an ad.
    pub fn ad_spend(&self, ad: AdId) -> Money {
        self.ad_spend.get(&ad).copied().unwrap_or(Money::ZERO)
    }

    /// Accrued spend of an account.
    pub fn account_spend(&self, account: AccountId) -> Money {
        self.account_spend
            .get(&account)
            .copied()
            .unwrap_or(Money::ZERO)
    }

    /// The account a campaign has billed against, if it has billed at
    /// all (the link is recorded on first charge).
    pub fn campaign_account(&self, campaign: CampaignId) -> Option<AccountId> {
        self.campaign_account.get(&campaign).copied()
    }

    /// True if a campaign with `budget` has spending room left.
    pub fn within_budget(&self, campaign: CampaignId, budget: Option<Money>) -> bool {
        match budget {
            None => true,
            Some(b) => self.campaign_spend(campaign) < b,
        }
    }

    /// Freezes the current per-campaign spend into a [`BudgetSnapshot`].
    pub fn budget_snapshot(&self) -> BudgetSnapshot {
        BudgetSnapshot {
            campaign_spend: self.campaign_spend.clone(),
        }
    }

    /// Exports the full ledger state for checkpointing.
    ///
    /// Every map is flattened to a sorted `Vec` so the encoding is
    /// canonical: two ledgers that compare equal export byte-identical
    /// state regardless of insertion history.
    pub fn export_state(&self) -> LedgerState {
        LedgerState {
            account_spend: self.account_spend.iter().map(|(k, v)| (*k, *v)).collect(),
            campaign_spend: self.campaign_spend.iter().map(|(k, v)| (*k, *v)).collect(),
            ad_spend: self.ad_spend.iter().map(|(k, v)| (*k, *v)).collect(),
            campaign_account: self
                .campaign_account
                .iter()
                .map(|(k, v)| (*k, *v))
                .collect(),
            small_spend_waiver: self.small_spend_waiver,
            impressions_charged: self.impressions_charged,
            charged_micros: self.charged_micros,
        }
    }

    /// Replaces this ledger's contents with a state exported by
    /// [`BillingLedger::export_state`].
    pub fn restore_state(&mut self, state: &LedgerState) {
        self.account_spend = state.account_spend.iter().copied().collect();
        self.campaign_spend = state.campaign_spend.iter().copied().collect();
        self.ad_spend = state.ad_spend.iter().copied().collect();
        self.campaign_account = state.campaign_account.iter().copied().collect();
        self.small_spend_waiver = state.small_spend_waiver;
        self.impressions_charged = state.impressions_charged;
        self.charged_micros = state.charged_micros;
    }

    /// Produces the account's invoice, applying the small-spend waiver per
    /// campaign.
    pub fn invoice(&self, account: AccountId) -> Invoice {
        let mut gross = Money::ZERO;
        let mut waived = Money::ZERO;
        for (&campaign, &spend) in &self.campaign_spend {
            if self.campaign_account.get(&campaign) != Some(&account) {
                continue;
            }
            gross += spend;
            if spend < self.small_spend_waiver {
                waived += spend;
            }
        }
        Invoice {
            account,
            gross,
            waived,
            due: gross - waived,
        }
    }
}

/// A flattened, canonical copy of a [`BillingLedger`], as stored in an
/// engine checkpoint.
///
/// All maps are exported as `Vec`s sorted by key (the source maps are
/// `BTreeMap`s, so iteration order is already canonical).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LedgerState {
    /// Accrued spend per account, sorted by account id.
    pub account_spend: Vec<(AccountId, Money)>,
    /// Accrued spend per campaign, sorted by campaign id.
    pub campaign_spend: Vec<(CampaignId, Money)>,
    /// Accrued spend per ad, sorted by ad id.
    pub ad_spend: Vec<(AdId, Money)>,
    /// Campaign → owning account, sorted by campaign id.
    pub campaign_account: Vec<(CampaignId, AccountId)>,
    /// The waiver threshold in force when the checkpoint was taken.
    pub small_spend_waiver: Money,
    /// Lifetime impressions charged.
    pub impressions_charged: u64,
    /// Lifetime charged micro-dollars.
    pub charged_micros: i64,
}

impl BudgetView for BillingLedger {
    fn within_budget(&self, campaign: CampaignId, budget: Option<Money>) -> bool {
        BillingLedger::within_budget(self, campaign, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accrue_at_cpm_over_1000() {
        let mut ledger = BillingLedger::new(Money::cents(1));
        let price =
            ledger.charge_impression(AccountId(1), CampaignId(1), AdId(1), Money::dollars(2));
        assert_eq!(price, Money::micros(2_000)); // $0.002
        assert_eq!(ledger.ad_spend(AdId(1)), Money::micros(2_000));
        assert_eq!(ledger.campaign_spend(CampaignId(1)), Money::micros(2_000));
        assert_eq!(ledger.account_spend(AccountId(1)), Money::micros(2_000));
        assert_eq!(ledger.impressions_charged(), 1);
        assert_eq!(ledger.total_charged(), Money::micros(2_000));
    }

    #[test]
    fn lifetime_counters_span_accounts_and_campaigns() {
        let mut ledger = BillingLedger::new(Money::ZERO);
        ledger.charge_impression(AccountId(1), CampaignId(1), AdId(1), Money::dollars(2));
        ledger.charge_impression(AccountId(2), CampaignId(2), AdId(2), Money::dollars(4));
        assert_eq!(ledger.impressions_charged(), 2);
        assert_eq!(ledger.total_charged(), Money::micros(6_000));
    }

    #[test]
    fn budget_enforcement() {
        let mut ledger = BillingLedger::new(Money::ZERO);
        assert!(ledger.within_budget(CampaignId(1), Some(Money::cents(1))));
        assert!(ledger.within_budget(CampaignId(1), None));
        // Spend 10 impressions at $1 CPM = $0.01 total.
        for _ in 0..10 {
            ledger.charge_impression(AccountId(1), CampaignId(1), AdId(1), Money::dollars(1));
        }
        assert!(!ledger.within_budget(CampaignId(1), Some(Money::cents(1))));
        assert!(ledger.within_budget(CampaignId(1), Some(Money::cents(2))));
    }

    #[test]
    fn small_spend_waiver_zeroes_validation_scale_campaigns() {
        // The paper's validation: a handful of impressions to 2 users at
        // $10 CPM accrues ~cents, which the platform never invoices.
        let mut ledger = BillingLedger::new(Money::cents(5));
        for _ in 0..3 {
            ledger.charge_impression(AccountId(1), CampaignId(1), AdId(1), Money::dollars(10));
        }
        let invoice = ledger.invoice(AccountId(1));
        assert_eq!(invoice.gross, Money::cents(3));
        assert_eq!(invoice.waived, Money::cents(3));
        assert_eq!(invoice.due, Money::ZERO);
    }

    #[test]
    fn large_campaigns_are_invoiced_in_full() {
        let mut ledger = BillingLedger::new(Money::cents(5));
        for _ in 0..1_000 {
            ledger.charge_impression(AccountId(1), CampaignId(1), AdId(1), Money::dollars(2));
        }
        let invoice = ledger.invoice(AccountId(1));
        assert_eq!(invoice.gross, Money::dollars(2));
        assert_eq!(invoice.waived, Money::ZERO);
        assert_eq!(invoice.due, Money::dollars(2));
    }

    #[test]
    fn invoices_are_per_account() {
        let mut ledger = BillingLedger::new(Money::ZERO);
        ledger.charge_impression(AccountId(1), CampaignId(1), AdId(1), Money::dollars(1));
        ledger.charge_impression(AccountId(2), CampaignId(2), AdId(2), Money::dollars(1));
        assert_eq!(ledger.invoice(AccountId(1)).gross, Money::micros(1_000));
        assert_eq!(ledger.invoice(AccountId(2)).gross, Money::micros(1_000));
        // An account with no activity owes nothing.
        let empty = ledger.invoice(AccountId(3));
        assert_eq!(empty.due, Money::ZERO);
        assert_eq!(empty.gross, Money::ZERO);
    }

    #[test]
    fn snapshot_agrees_with_ledger_until_later_charges() {
        let mut ledger = BillingLedger::new(Money::ZERO);
        for _ in 0..5 {
            ledger.charge_impression(AccountId(1), CampaignId(1), AdId(1), Money::dollars(1));
        }
        let snap = ledger.budget_snapshot();
        let budget = Some(Money::micros(6_000));
        assert_eq!(
            BudgetView::within_budget(&snap, CampaignId(1), budget),
            ledger.within_budget(CampaignId(1), budget)
        );
        assert!(snap.within_budget(CampaignId(2), budget)); // unseen campaign
        assert!(snap.within_budget(CampaignId(1), None));
        // Charges after the snapshot do not move it.
        ledger.charge_impression(AccountId(1), CampaignId(1), AdId(1), Money::dollars(1));
        assert!(!ledger.within_budget(CampaignId(1), budget));
        assert!(BudgetView::within_budget(&snap, CampaignId(1), budget));
    }

    #[test]
    fn mixed_waiver_per_campaign() {
        let mut ledger = BillingLedger::new(Money::cents(5));
        // Campaign 1: big spender. Campaign 2: trace spend.
        for _ in 0..100 {
            ledger.charge_impression(AccountId(1), CampaignId(1), AdId(1), Money::dollars(2));
        }
        ledger.charge_impression(AccountId(1), CampaignId(2), AdId(2), Money::dollars(2));
        let invoice = ledger.invoice(AccountId(1));
        assert_eq!(invoice.gross, Money::cents(20) + Money::micros(2_000));
        assert_eq!(invoice.waived, Money::micros(2_000));
        assert_eq!(invoice.due, Money::cents(20));
    }
}
