//! The platform's user store.
//!
//! Each user carries demographics, the set of targeting attributes the
//! platform holds about them (platform-computed and partner-sourced), page
//! likes, and **hashed PII with provenance**. PII provenance models the
//! finding the paper cites (Venkatadri et al., PETS 2019) that platforms
//! use PII from surprising sources — phone numbers provided for two-factor
//! authentication, numbers synced from friends' address books — for ad
//! targeting; experiment E7 surfaces exactly that.

use adsim_types::hash::{hash_pii, Digest};
use adsim_types::{AttributeId, Error, Result, Symbol, SymbolTable, UserId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Self-reported gender (used for demographic targeting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gender {
    /// Female.
    Female,
    /// Male.
    Male,
    /// Not specified.
    Unspecified,
}

/// How a piece of PII reached the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PiiProvenance {
    /// The user typed it into their own profile.
    UserProvided,
    /// Provided for two-factor authentication / account security.
    TwoFactor,
    /// Synced from a friend's contact list — the user never gave it.
    ContactSync,
}

/// Kind of personally-identifying identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PiiKind {
    /// An email address.
    Email,
    /// A phone number.
    Phone,
}

/// A hashed PII record attached to a user.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PiiRecord {
    /// The normalized, hashed identifier.
    pub digest: Digest,
    /// What kind of identifier this is.
    pub kind: PiiKind,
    /// How the platform obtained it.
    pub provenance: PiiProvenance,
}

/// The fixed-width evaluation sidecar of one user profile: what the
/// compiled targeting evaluator ([`crate::compiled::CompiledSpec`]) probes
/// instead of the string/`BTreeSet` fields it mirrors.
///
/// * attributes → a bitset indexed by raw [`AttributeId`] (one bit per
///   catalog slot, pre-sized to the catalog and grown on demand for
///   out-of-catalog ids), so an attribute test is one word load + mask;
/// * home state and ZIP → [`Symbol`]s from the store's [`SymbolTable`],
///   so a geo test is one `u32` compare;
/// * recently-visited ZIPs → a sorted symbol list, so a visited-ZIP test
///   is a binary search over `u32`s.
///
/// Maintained **incrementally** by [`ProfileStore`] on every mutation
/// ([`ProfileStore::register`], [`ProfileStore::grant_attribute`],
/// [`ProfileStore::record_zip_visit`]) — never rebuilt at decide time —
/// so delivery evaluates with zero allocation. The mirrored tree fields
/// stay authoritative for the `EvalMode::Tree` oracle; the equivalence
/// proptests hold the two views identical.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfileFacets {
    /// Attribute bitset: bit `id.raw()` of word `id.raw() / 64`.
    attr_words: Vec<u64>,
    /// Interned home state.
    state_sym: Symbol,
    /// Interned home ZIP.
    zip_sym: Symbol,
    /// Interned recently-visited ZIPs, sorted by symbol.
    visited_zips: Vec<Symbol>,
}

impl ProfileFacets {
    /// True if the attribute bit is set — the compiled counterpart of
    /// [`UserProfile::has_attribute`].
    #[inline]
    pub fn has_attribute(&self, attr: AttributeId) -> bool {
        let raw = attr.raw();
        match self.attr_words.get((raw / 64) as usize) {
            Some(word) => word & (1u64 << (raw % 64)) != 0,
            None => false,
        }
    }

    /// The interned home state.
    #[inline]
    pub fn state(&self) -> Symbol {
        self.state_sym
    }

    /// The interned home ZIP.
    #[inline]
    pub fn zip(&self) -> Symbol {
        self.zip_sym
    }

    /// True if the user was recently located in the ZIP behind `zip`.
    #[inline]
    pub fn visited(&self, zip: Symbol) -> bool {
        self.visited_zips.binary_search(&zip).is_ok()
    }

    /// The raw bitset words (checkpoint serialization).
    pub fn attr_words(&self) -> &[u64] {
        &self.attr_words
    }

    /// The sorted visited-ZIP symbols (checkpoint serialization).
    pub fn visited_zip_symbols(&self) -> &[Symbol] {
        &self.visited_zips
    }

    /// Rebuilds facets from their checkpoint-serialized parts.
    pub fn from_parts(
        attr_words: Vec<u64>,
        state_sym: Symbol,
        zip_sym: Symbol,
        visited_zips: Vec<Symbol>,
    ) -> Self {
        Self {
            attr_words,
            state_sym,
            zip_sym,
            visited_zips,
        }
    }

    /// Sets the attribute bit, growing the bitset for out-of-catalog
    /// ids. Returns true if the bit was newly set.
    fn grant(&mut self, attr: AttributeId) -> bool {
        let raw = attr.raw();
        let word = (raw / 64) as usize;
        if word >= self.attr_words.len() {
            self.attr_words.resize(word + 1, 0);
        }
        let mask = 1u64 << (raw % 64);
        let newly = self.attr_words[word] & mask == 0;
        self.attr_words[word] |= mask;
        newly
    }

    /// Inserts a visited-ZIP symbol, keeping the list sorted. Returns
    /// true if the symbol was new.
    fn record_visit(&mut self, zip: Symbol) -> bool {
        match self.visited_zips.binary_search(&zip) {
            Ok(_) => false,
            Err(pos) => {
                self.visited_zips.insert(pos, zip);
                true
            }
        }
    }
}

/// One platform user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// Platform-assigned id.
    pub id: UserId,
    /// Age in years.
    pub age: u8,
    /// Self-reported gender.
    pub gender: Gender,
    /// U.S. state of residence.
    pub state: String,
    /// ZIP code of residence.
    pub zip: String,
    /// Targeting attributes the platform holds for this user.
    pub attributes: BTreeSet<AttributeId>,
    /// Hashed PII records with provenance.
    pub pii: Vec<PiiRecord>,
    /// Pages this user has liked (page ids are advertiser-created; see
    /// `crate::pages`).
    pub liked_pages: BTreeSet<u64>,
    /// ZIP codes the platform has recently located the user in (the paper
    /// notes platforms let advertisers target "users in a ZIP code" and
    /// reveal "whether a user is determined to have recently visited a
    /// particular ZIP code").
    pub recent_zips: BTreeSet<String>,
    /// Home coordinates, if the platform has located the user precisely
    /// (degrees). Enables the paper's "within a radius around any latitude
    /// and longitude" targeting.
    pub coordinates: Option<(f64, f64)>,
    /// The fixed-width evaluation sidecar mirroring `attributes`,
    /// `state`, `zip`, and `recent_zips`. Maintained by [`ProfileStore`];
    /// mutate those fields only through the store's methods, or the
    /// compiled evaluator will diverge from the tree oracle.
    pub facets: ProfileFacets,
}

impl UserProfile {
    /// True if the user holds targeting attribute `attr`.
    pub fn has_attribute(&self, attr: AttributeId) -> bool {
        self.attributes.contains(&attr)
    }

    /// The user's hashed emails, in insertion order.
    pub fn hashed_emails(&self) -> Vec<&Digest> {
        self.pii
            .iter()
            .filter(|p| p.kind == PiiKind::Email)
            .map(|p| &p.digest)
            .collect()
    }

    /// The user's hashed phone numbers, in insertion order.
    pub fn hashed_phones(&self) -> Vec<&Digest> {
        self.pii
            .iter()
            .filter(|p| p.kind == PiiKind::Phone)
            .map(|p| &p.digest)
            .collect()
    }

    /// True if the platform holds this exact hashed identifier for the
    /// user, regardless of kind or provenance.
    pub fn holds_pii(&self, digest: &Digest) -> bool {
        self.pii.iter().any(|p| &p.digest == digest)
    }
}

/// The store of all platform users.
#[derive(Debug, Clone, Default)]
pub struct ProfileStore {
    users: BTreeMap<UserId, UserProfile>,
    next_id: u64,
    by_pii: HashMap<Digest, Vec<UserId>>,
    /// The platform-wide interner shared by profile facets and compiled
    /// targeting specs: both sides intern through this one table, so
    /// symbol equality means string equality between them.
    symbols: SymbolTable,
    /// Bitset words new profiles pre-allocate (set from the attribute
    /// catalog size, so catalog attributes never trigger a grow).
    attr_words_capacity: usize,
    /// Monotone count of incremental facet maintenance writes.
    facet_updates: u64,
    /// Users whose facets changed since the last
    /// [`ProfileStore::take_dirty_facets`] drain, recorded at every facet
    /// mutation site so an incremental checkpoint can re-encode only them.
    dirty_facets: BTreeSet<UserId>,
}

impl ProfileStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes new profiles' attribute bitsets for a catalog holding
    /// ids up to `max_attribute_id` (ids beyond it still work — the
    /// bitset grows on demand — they just pay one reallocation).
    pub fn size_attribute_bitsets(&mut self, max_attribute_id: u64) {
        self.attr_words_capacity = (max_attribute_id / 64 + 1) as usize;
    }

    /// Registers a new user and returns their id.
    pub fn register(&mut self, age: u8, gender: Gender, state: &str, zip: &str) -> UserId {
        self.next_id += 1;
        let id = UserId(self.next_id);
        let facets = ProfileFacets {
            attr_words: vec![0; self.attr_words_capacity],
            state_sym: self.symbols.intern(state),
            zip_sym: self.symbols.intern(zip),
            visited_zips: Vec::new(),
        };
        self.facet_updates += 1;
        self.dirty_facets.insert(id);
        self.users.insert(
            id,
            UserProfile {
                id,
                age,
                gender,
                state: state.to_string(),
                zip: zip.to_string(),
                attributes: BTreeSet::new(),
                pii: Vec::new(),
                liked_pages: BTreeSet::new(),
                recent_zips: BTreeSet::new(),
                coordinates: None,
                facets,
            },
        );
        id
    }

    /// Number of registered users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True if no users are registered.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Looks up a user.
    pub fn get(&self, id: UserId) -> Result<&UserProfile> {
        self.users
            .get(&id)
            .ok_or_else(|| Error::not_found("user", id))
    }

    /// Mutable lookup. An escape hatch: mutating `attributes`, `state`,
    /// `zip`, or `recent_zips` through it bypasses the facet sidecar —
    /// use the store's mutation methods for those.
    pub fn get_mut(&mut self, id: UserId) -> Result<&mut UserProfile> {
        self.users
            .get_mut(&id)
            .ok_or_else(|| Error::not_found("user", id))
    }

    /// Iterates over all users in id order.
    pub fn iter(&self) -> impl Iterator<Item = &UserProfile> {
        self.users.values()
    }

    /// All user ids, in order.
    pub fn ids(&self) -> Vec<UserId> {
        self.users.keys().copied().collect()
    }

    /// Grants a targeting attribute to a user.
    pub fn grant_attribute(&mut self, user: UserId, attr: AttributeId) -> Result<()> {
        let profile = self.get_mut(user)?;
        profile.attributes.insert(attr);
        if profile.facets.grant(attr) {
            self.facet_updates += 1;
            self.dirty_facets.insert(user);
        }
        Ok(())
    }

    /// Attaches raw PII to a user: the store normalizes and hashes it, and
    /// indexes the digest for custom-audience matching.
    pub fn attach_pii(
        &mut self,
        user: UserId,
        kind: PiiKind,
        raw: &str,
        provenance: PiiProvenance,
    ) -> Result<Digest> {
        let digest = hash_pii(raw);
        let profile = self.get_mut(user)?;
        if !profile.holds_pii(&digest) {
            profile.pii.push(PiiRecord {
                digest,
                kind,
                provenance,
            });
            self.by_pii.entry(digest).or_default().push(user);
        }
        Ok(digest)
    }

    /// Users matching a hashed identifier — the custom-audience match
    /// primitive. Matches across *all* provenances: this is precisely the
    /// behaviour (2FA numbers being targetable) that E7 exposes.
    pub fn match_pii(&self, digest: &Digest) -> &[UserId] {
        self.by_pii.get(digest).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Records that `user` liked `page`.
    pub fn like_page(&mut self, user: UserId, page: u64) -> Result<()> {
        self.get_mut(user)?.liked_pages.insert(page);
        Ok(())
    }

    /// Records a recent location observation: the platform located `user`
    /// in `zip`.
    pub fn record_zip_visit(&mut self, user: UserId, zip: &str) -> Result<()> {
        let sym = self.symbols.intern(zip);
        let profile = self
            .users
            .get_mut(&user)
            .ok_or_else(|| Error::not_found("user", user))?;
        profile.recent_zips.insert(zip.to_string());
        if profile.facets.record_visit(sym) {
            self.facet_updates += 1;
            self.dirty_facets.insert(user);
        }
        Ok(())
    }

    /// Sets the user's precise home coordinates (degrees).
    pub fn set_coordinates(&mut self, user: UserId, lat: f64, lon: f64) -> Result<()> {
        self.get_mut(user)?.coordinates = Some((lat, lon));
        Ok(())
    }

    /// The platform-wide symbol table (facets and compiled specs share it).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Mutable access to the symbol table, for interning the strings of a
    /// targeting spec at compile time ([`crate::campaign::CampaignStore::create_ad`]).
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.symbols
    }

    /// Monotone count of incremental facet maintenance writes (the
    /// `targeting.facet_updates` telemetry counter).
    pub fn facet_updates(&self) -> u64 {
        self.facet_updates
    }

    /// Drains the set of users whose facets changed since the last drain
    /// (sorted). Incremental checkpoints call this once per delta frame;
    /// a full export implies a drain so the next delta is relative to it.
    pub fn take_dirty_facets(&mut self) -> Vec<UserId> {
        std::mem::take(&mut self.dirty_facets).into_iter().collect()
    }

    /// Freezes the interner and every user's facets into a [`FacetsState`]
    /// for the checkpoint codec.
    pub fn export_facets(&self) -> FacetsState {
        FacetsState {
            symbols: self.symbols.names().to_vec(),
            facet_updates: self.facet_updates,
            users: self
                .users
                .iter()
                .map(|(&id, u)| (id, u.facets.clone()))
                .collect(),
        }
    }

    /// Restores the state frozen by [`Self::export_facets`] onto an
    /// identically-configured store. Users absent from this store are
    /// skipped (a host mismatch the checkpoint's config echo already
    /// guards); a malformed symbol list (duplicates — rejected by the
    /// strict checkpoint decoder before this is reachable from bytes)
    /// leaves the interner untouched.
    pub fn restore_facets(&mut self, state: &FacetsState) {
        if let Ok(table) = SymbolTable::from_names(state.symbols.clone()) {
            self.symbols = table;
        }
        self.facet_updates = state.facet_updates;
        for (id, facets) in &state.users {
            if let Some(u) = self.users.get_mut(id) {
                u.facets = facets.clone();
            }
        }
    }
}

/// The checkpointable slice of the profile store's evaluation state: the
/// interner (in symbol order) plus every user's facet sidecar. Captured
/// into `crate::state::PlatformState` so a resumed run evaluates compiled
/// targeting against byte-identical symbols.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FacetsState {
    /// Interned strings in symbol order (`index == symbol`).
    pub symbols: Vec<String>,
    /// Monotone facet-write counter at capture time.
    pub facet_updates: u64,
    /// Each user's facets, in user-id order.
    pub users: Vec<(UserId, ProfileFacets)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_user() -> (ProfileStore, UserId) {
        let mut store = ProfileStore::new();
        let id = store.register(34, Gender::Female, "Massachusetts", "02115");
        (store, id)
    }

    #[test]
    fn register_and_lookup() {
        let (store, id) = store_with_user();
        let u = store.get(id).expect("exists");
        assert_eq!(u.age, 34);
        assert_eq!(u.state, "Massachusetts");
        assert_eq!(store.len(), 1);
        assert!(store.get(UserId(999)).is_err());
    }

    #[test]
    fn attribute_grants() {
        let (mut store, id) = store_with_user();
        store.grant_attribute(id, AttributeId(5)).expect("grant");
        store
            .grant_attribute(id, AttributeId(5))
            .expect("idempotent");
        let u = store.get(id).expect("exists");
        assert!(u.has_attribute(AttributeId(5)));
        assert!(!u.has_attribute(AttributeId(6)));
        assert_eq!(u.attributes.len(), 1);
    }

    #[test]
    fn pii_attach_and_match() {
        let (mut store, id) = store_with_user();
        let digest = store
            .attach_pii(
                id,
                PiiKind::Email,
                "Alice@Example.com ",
                PiiProvenance::UserProvided,
            )
            .expect("attach");
        // Matching is on normalized hashes.
        assert_eq!(store.match_pii(&hash_pii("alice@example.com")), &[id]);
        assert_eq!(digest, hash_pii("alice@example.com"));
        // Unknown digests match nothing.
        assert!(store.match_pii(&hash_pii("nobody@example.com")).is_empty());
    }

    #[test]
    fn pii_attach_is_idempotent_per_digest() {
        let (mut store, id) = store_with_user();
        store
            .attach_pii(
                id,
                PiiKind::Email,
                "a@example.com",
                PiiProvenance::UserProvided,
            )
            .expect("attach");
        store
            .attach_pii(
                id,
                PiiKind::Email,
                "A@EXAMPLE.COM",
                PiiProvenance::ContactSync,
            )
            .expect("attach dup");
        let u = store.get(id).expect("exists");
        assert_eq!(u.pii.len(), 1, "same normalized digest stored once");
        assert_eq!(store.match_pii(&hash_pii("a@example.com")).len(), 1);
    }

    #[test]
    fn two_factor_phone_is_matchable() {
        // The PETS 2019 finding the paper cites: PII provided for account
        // security is still used for ad targeting.
        let (mut store, id) = store_with_user();
        store
            .attach_pii(
                id,
                PiiKind::Phone,
                "+1-617-555-0100",
                PiiProvenance::TwoFactor,
            )
            .expect("attach");
        assert_eq!(store.match_pii(&hash_pii("+1-617-555-0100")), &[id]);
        let u = store.get(id).expect("exists");
        assert_eq!(u.pii[0].provenance, PiiProvenance::TwoFactor);
        assert_eq!(u.hashed_phones().len(), 1);
        assert!(u.hashed_emails().is_empty());
    }

    #[test]
    fn shared_pii_matches_multiple_users() {
        // A shared household landline attached to two accounts.
        let mut store = ProfileStore::new();
        let a = store.register(40, Gender::Male, "Ohio", "43004");
        let b = store.register(38, Gender::Female, "Ohio", "43004");
        store
            .attach_pii(
                a,
                PiiKind::Phone,
                "+1-614-555-0199",
                PiiProvenance::UserProvided,
            )
            .expect("attach a");
        store
            .attach_pii(
                b,
                PiiKind::Phone,
                "+1-614-555-0199",
                PiiProvenance::ContactSync,
            )
            .expect("attach b");
        assert_eq!(store.match_pii(&hash_pii("+1-614-555-0199")), &[a, b]);
    }

    #[test]
    fn page_likes() {
        let (mut store, id) = store_with_user();
        store.like_page(id, 42).expect("like");
        store.like_page(id, 42).expect("idempotent");
        assert!(store.get(id).expect("exists").liked_pages.contains(&42));
    }

    #[test]
    fn coordinates_are_settable() {
        let (mut store, id) = store_with_user();
        assert!(store.get(id).expect("exists").coordinates.is_none());
        store.set_coordinates(id, 42.36, -71.06).expect("set");
        assert_eq!(
            store.get(id).expect("exists").coordinates,
            Some((42.36, -71.06))
        );
    }

    #[test]
    fn recent_zip_visits_accumulate() {
        let (mut store, id) = store_with_user();
        store.record_zip_visit(id, "10001").expect("record");
        store.record_zip_visit(id, "10001").expect("idempotent");
        store.record_zip_visit(id, "94103").expect("record");
        let u = store.get(id).expect("exists");
        assert_eq!(u.recent_zips.len(), 2);
        assert!(u.recent_zips.contains("94103"));
    }

    #[test]
    fn facets_mirror_profile_mutations() {
        let mut store = ProfileStore::new();
        store.size_attribute_bitsets(128);
        let a = store.register(30, Gender::Female, "Ohio", "43004");
        let b = store.register(31, Gender::Male, "Texas", "43004");
        // Shared strings share symbols; distinct strings never do.
        let fa = &store.get(a).expect("a").facets;
        let fb = &store.get(b).expect("b").facets;
        assert_eq!(fa.zip(), fb.zip());
        assert_ne!(fa.state(), fb.state());
        assert_eq!(store.symbols().resolve(fa.state()), Some("Ohio"));

        // Attribute grants set exactly the granted bit; out-of-catalog
        // ids grow the bitset instead of being dropped.
        store.grant_attribute(a, AttributeId(5)).expect("grant");
        store.grant_attribute(a, AttributeId(999)).expect("grant");
        let fa = &store.get(a).expect("a").facets;
        assert!(fa.has_attribute(AttributeId(5)));
        assert!(fa.has_attribute(AttributeId(999)));
        assert!(!fa.has_attribute(AttributeId(6)));
        assert!(!store
            .get(b)
            .expect("b")
            .facets
            .has_attribute(AttributeId(5)));

        // Visited ZIPs land as sorted symbols; idempotent re-visits and
        // re-grants don't bump the update counter.
        let before = store.facet_updates();
        store.record_zip_visit(a, "10001").expect("visit");
        store.record_zip_visit(a, "10001").expect("idempotent");
        store
            .grant_attribute(a, AttributeId(5))
            .expect("idempotent");
        assert_eq!(store.facet_updates(), before + 1);
        let sym = store.symbols().lookup("10001").expect("interned");
        let fa = &store.get(a).expect("a").facets;
        assert!(fa.visited(sym));
        assert!(!fa.visited(fa.zip()), "home zip is not a recent visit");
    }

    #[test]
    fn facets_export_restore_round_trips() {
        let mut store = ProfileStore::new();
        let a = store.register(30, Gender::Female, "Ohio", "43004");
        store.grant_attribute(a, AttributeId(7)).expect("grant");
        store.record_zip_visit(a, "10001").expect("visit");
        let frozen = store.export_facets();

        // A freshly rebuilt identical host restores to the same state.
        let mut fresh = ProfileStore::new();
        fresh.register(30, Gender::Female, "Ohio", "43004");
        fresh.restore_facets(&frozen);
        assert_eq!(fresh.export_facets(), frozen);
        assert!(fresh
            .get(a)
            .expect("a")
            .facets
            .has_attribute(AttributeId(7)));
    }

    #[test]
    fn iteration_is_in_id_order() {
        let mut store = ProfileStore::new();
        let ids: Vec<UserId> = (0..5)
            .map(|_| store.register(30, Gender::Unspecified, "Texas", "73301"))
            .collect();
        let iterated: Vec<UserId> = store.iter().map(|u| u.id).collect();
        assert_eq!(iterated, ids);
        assert_eq!(store.ids(), ids);
    }
}
