//! Account-level enforcement: detecting transparency-provider-shaped
//! campaigns.
//!
//! The paper's "evading shutdown" discussion (§4) assumes platforms might
//! one day hunt for Treads and suspend the accounts running them, and
//! argues that distributing the Treads across many small advertiser
//! accounts ("crowdsourcing the transparency provider") makes detection
//! hard. To measure that claim (experiment E6) we need a concrete
//! detector, so this module implements the natural one:
//!
//! * **Pattern score** — a transparency provider's footprint is
//!   distinctive: many ads, each targeting a *single attribute*
//!   intersected with the same saved audience, with near-identical
//!   creative templates. An account whose count of such
//!   "attribute-singleton" ads reaches the threshold is flagged
//!   deterministically.
//! * **Random review** — independently, each ad has a small probability of
//!   human review; a reviewed ad that violates policy flags the account.
//!
//! Crowdsourcing defeats the pattern score (each account stays under
//! threshold) but not the random-review channel — which is why E6's curve
//! falls steeply with the number of accounts but never to zero while the
//! creatives remain policy-violating.

use crate::campaign::CampaignStore;
use crate::policy::PolicyEngine;
use adsim_types::AccountId;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Detector parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnforcementConfig {
    /// An account with at least this many attribute-singleton ads sharing a
    /// creative template is flagged.
    pub pattern_threshold: usize,
    /// Per-ad probability of random human review.
    pub review_sample_rate: f64,
}

impl Default for EnforcementConfig {
    fn default() -> Self {
        Self {
            pattern_threshold: 50,
            review_sample_rate: 0.01,
        }
    }
}

/// What the detector concluded about one account.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuspicionReport {
    /// The scanned account.
    pub account: AccountId,
    /// Number of ads targeting exactly one attribute (optionally
    /// intersected with audiences) — the Tread signature.
    pub singleton_attribute_ads: usize,
    /// Size of the largest cluster of those ads sharing one headline
    /// template.
    pub largest_template_cluster: usize,
    /// True if the pattern score crossed the threshold.
    pub pattern_flagged: bool,
    /// True if a random review caught a policy-violating ad.
    pub review_flagged: bool,
}

impl SuspicionReport {
    /// Account should be suspended.
    pub fn flagged(&self) -> bool {
        self.pattern_flagged || self.review_flagged
    }
}

/// Scans one account's ads and produces a [`SuspicionReport`].
///
/// `rng` drives the random-review channel; pass a named substream so runs
/// are reproducible.
pub fn scan_account<R: Rng>(
    account: AccountId,
    campaigns: &CampaignStore,
    policy: &PolicyEngine,
    config: &EnforcementConfig,
    rng: &mut R,
) -> SuspicionReport {
    let ads = campaigns.ads_of_account(account);

    // Pattern channel: attribute-singleton ads clustered by headline.
    let mut clusters: HashMap<&str, usize> = HashMap::new();
    let mut singletons = 0usize;
    for ad in &ads {
        let attrs = ad.targeting.referenced_attributes();
        if attrs.len() == 1 {
            singletons += 1;
            *clusters.entry(ad.creative.headline.as_str()).or_insert(0) += 1;
        }
    }
    let largest_template_cluster = clusters.values().copied().max().unwrap_or(0);
    let pattern_flagged = largest_template_cluster >= config.pattern_threshold;

    // Random-review channel.
    let mut review_flagged = false;
    for ad in &ads {
        if rng.gen::<f64>() < config.review_sample_rate && policy.review(&ad.creative).is_err() {
            review_flagged = true;
            break;
        }
    }

    SuspicionReport {
        account,
        singleton_attribute_ads: singletons,
        largest_template_cluster,
        pattern_flagged,
        review_flagged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::AdCreative;
    use crate::policy::Strictness;
    use crate::targeting::{TargetingExpr, TargetingSpec};
    use adsim_types::rng::substream;
    use adsim_types::{AttributeId, AudienceId, Money};

    fn tread_like_account(n_ads: usize, headline: &str) -> (CampaignStore, AccountId) {
        let account = AccountId(1);
        let mut store = CampaignStore::new();
        let camp = store.create_campaign(account, "treads", Money::dollars(10), None);
        let mut syms = adsim_types::SymbolTable::new();
        for i in 0..n_ads {
            store
                .create_ad(
                    camp,
                    AdCreative::text(headline, format!("Ref: {i}")),
                    TargetingSpec::including(TargetingExpr::And(vec![
                        TargetingExpr::InAudience(AudienceId(1)),
                        TargetingExpr::Attr(AttributeId(i as u64 + 1)),
                    ])),
                    &mut syms,
                )
                .expect("ad");
        }
        (store, account)
    }

    fn no_review_config(threshold: usize) -> EnforcementConfig {
        EnforcementConfig {
            pattern_threshold: threshold,
            review_sample_rate: 0.0,
        }
    }

    #[test]
    fn large_tread_account_is_pattern_flagged() {
        let (store, account) = tread_like_account(507, "A message from Know Your Data");
        let policy = PolicyEngine::without_catalog(Strictness::Standard);
        let mut rng = substream(1, "enforcement");
        let report = scan_account(account, &store, &policy, &no_review_config(50), &mut rng);
        assert_eq!(report.singleton_attribute_ads, 507);
        assert_eq!(report.largest_template_cluster, 507);
        assert!(report.pattern_flagged);
        assert!(report.flagged());
    }

    #[test]
    fn small_slice_stays_under_threshold() {
        // Crowdsourced: an account running only 40 of the 507 Treads.
        let (store, account) = tread_like_account(40, "A message from Know Your Data");
        let policy = PolicyEngine::without_catalog(Strictness::Standard);
        let mut rng = substream(2, "enforcement");
        let report = scan_account(account, &store, &policy, &no_review_config(50), &mut rng);
        assert!(!report.pattern_flagged);
        assert!(!report.flagged());
    }

    #[test]
    fn varied_headlines_defeat_template_clustering() {
        let account = AccountId(1);
        let mut store = CampaignStore::new();
        let camp = store.create_campaign(account, "treads", Money::dollars(10), None);
        let mut syms = adsim_types::SymbolTable::new();
        for i in 0..200usize {
            store
                .create_ad(
                    camp,
                    // Distinct headline per ad.
                    AdCreative::text(format!("Message {i}"), "Ref"),
                    TargetingSpec::including(TargetingExpr::Attr(AttributeId(i as u64 + 1))),
                    &mut syms,
                )
                .expect("ad");
        }
        let policy = PolicyEngine::without_catalog(Strictness::Standard);
        let mut rng = substream(3, "enforcement");
        let report = scan_account(account, &store, &policy, &no_review_config(50), &mut rng);
        assert_eq!(report.singleton_attribute_ads, 200);
        assert_eq!(report.largest_template_cluster, 1);
        assert!(!report.pattern_flagged);
    }

    #[test]
    fn random_review_catches_violating_creatives() {
        let account = AccountId(1);
        let mut store = CampaignStore::new();
        let camp = store.create_campaign(account, "explicit", Money::dollars(10), None);
        let mut syms = adsim_types::SymbolTable::new();
        for i in 0..10usize {
            store
                .create_ad(
                    camp,
                    // Explicit assertion phrase — violates policy.
                    AdCreative::text("About you", "data collected about you is shown here"),
                    TargetingSpec::including(TargetingExpr::Attr(AttributeId(i as u64 + 1))),
                    &mut syms,
                )
                .expect("ad");
        }
        let policy = PolicyEngine::without_catalog(Strictness::Standard);
        let config = EnforcementConfig {
            pattern_threshold: 1000,
            review_sample_rate: 1.0, // review everything
        };
        let mut rng = substream(4, "enforcement");
        let report = scan_account(account, &store, &policy, &config, &mut rng);
        assert!(report.review_flagged);
        assert!(!report.pattern_flagged);
        assert!(report.flagged());
    }

    #[test]
    fn compliant_creatives_survive_full_review() {
        let (store, account) = tread_like_account(10, "A message");
        let policy = PolicyEngine::without_catalog(Strictness::Standard);
        let config = EnforcementConfig {
            pattern_threshold: 1000,
            review_sample_rate: 1.0,
        };
        let mut rng = substream(5, "enforcement");
        let report = scan_account(account, &store, &policy, &config, &mut rng);
        assert!(!report.flagged());
    }

    #[test]
    fn empty_account_is_clean() {
        let store = CampaignStore::new();
        let policy = PolicyEngine::without_catalog(Strictness::Standard);
        let mut rng = substream(6, "enforcement");
        let report = scan_account(
            AccountId(42),
            &store,
            &policy,
            &EnforcementConfig::default(),
            &mut rng,
        );
        assert_eq!(report.singleton_attribute_ads, 0);
        assert!(!report.flagged());
    }
}
