//! Tracking pixels.
//!
//! An advertiser creates a pixel, embeds it on an external website, and the
//! platform records which *platform users* loaded pages carrying it. The
//! advertiser never learns who visited — only that a visitor audience
//! exists (the anonymity property §3.1's opt-in flow depends on).
//!
//! The registry stores the full visit log platform-side; `websim` generates
//! the visits and the `Platform` façade routes them into pixel audiences.

use adsim_types::{AccountId, Error, PixelId, Result, SimTime, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A registered tracking pixel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pixel {
    /// Platform-assigned id.
    pub id: PixelId,
    /// Owning advertiser account.
    pub owner: AccountId,
    /// Free-form label the advertiser gave the pixel (e.g. which opt-in
    /// page it instruments).
    pub label: String,
}

/// One pixel fire, recorded platform-side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PixelEvent {
    /// Which pixel fired.
    pub pixel: PixelId,
    /// Which platform user loaded the instrumented page.
    pub user: UserId,
    /// When.
    pub at: SimTime,
}

/// The platform's pixel registry and visit log.
#[derive(Debug, Clone, Default)]
pub struct PixelRegistry {
    pixels: BTreeMap<PixelId, Pixel>,
    next_id: u64,
    events: Vec<PixelEvent>,
}

impl PixelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a pixel for an advertiser account.
    pub fn create(&mut self, owner: AccountId, label: impl Into<String>) -> PixelId {
        self.next_id += 1;
        let id = PixelId(self.next_id);
        self.pixels.insert(
            id,
            Pixel {
                id,
                owner,
                label: label.into(),
            },
        );
        id
    }

    /// Looks up a pixel.
    pub fn get(&self, id: PixelId) -> Result<&Pixel> {
        self.pixels
            .get(&id)
            .ok_or_else(|| Error::not_found("pixel", id))
    }

    /// Records a fire. Returns an error for unregistered pixels (a stale
    /// embed on some website).
    pub fn record(&mut self, pixel: PixelId, user: UserId, at: SimTime) -> Result<()> {
        if !self.pixels.contains_key(&pixel) {
            return Err(Error::not_found("pixel", pixel));
        }
        self.events.push(PixelEvent { pixel, user, at });
        Ok(())
    }

    /// Replaces the fire journal with a checkpointed event list. The
    /// registered pixels themselves are static configuration and are
    /// reconstructed by the host, not checkpointed.
    pub fn restore_events(&mut self, events: Vec<PixelEvent>) {
        self.events = events;
    }

    /// Number of registered pixels.
    pub fn len(&self) -> usize {
        self.pixels.len()
    }

    /// True if no pixels are registered.
    pub fn is_empty(&self) -> bool {
        self.pixels.is_empty()
    }

    /// Platform-internal full event log.
    pub fn events(&self) -> &[PixelEvent] {
        &self.events
    }

    /// The number of fires a pixel has recorded. This *is* advertiser
    /// visible (platforms show pixel activity counts) — but never who.
    pub fn fire_count(&self, pixel: PixelId) -> usize {
        self.events.iter().filter(|e| e.pixel == pixel).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_record() {
        let mut reg = PixelRegistry::new();
        let px = reg.create(AccountId(1), "optin-page");
        assert_eq!(reg.get(px).expect("pixel").label, "optin-page");
        reg.record(px, UserId(1), SimTime(10)).expect("record");
        reg.record(px, UserId(2), SimTime(20)).expect("record");
        assert_eq!(reg.fire_count(px), 2);
        assert_eq!(reg.events().len(), 2);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn unknown_pixel_rejected() {
        let mut reg = PixelRegistry::new();
        let err = reg
            .record(PixelId(9), UserId(1), SimTime(0))
            .expect_err("no pixel");
        assert_eq!(err, Error::not_found("pixel", PixelId(9)));
        assert!(reg.get(PixelId(9)).is_err());
        assert!(reg.is_empty());
    }

    #[test]
    fn fire_counts_are_per_pixel() {
        let mut reg = PixelRegistry::new();
        let a = reg.create(AccountId(1), "a");
        let b = reg.create(AccountId(1), "b");
        reg.record(a, UserId(1), SimTime(0)).expect("record");
        reg.record(b, UserId(1), SimTime(0)).expect("record");
        reg.record(b, UserId(2), SimTime(1)).expect("record");
        assert_eq!(reg.fire_count(a), 1);
        assert_eq!(reg.fire_count(b), 2);
    }
}
