//! The platform's **own** transparency mechanisms — the incomplete baseline
//! Treads improve on.
//!
//! Two mechanisms, each with the documented incompleteness the paper cites
//! (Andreou et al., NDSS 2018):
//!
//! * [`ad_preferences`] — the "ad preferences page": lists a user's
//!   targetable attributes, but **omits everything sourced from data
//!   brokers** ("Facebook's advertising platform was recently shown to not
//!   reveal any user information that is sourced from third parties").
//! * [`explain_ad`] — "why am I seeing this?": reveals **at most one**
//!   attribute from the ad's targeting, and chooses the *most prevalent*
//!   (least revealing) one. For PII-audience ads it says only that the
//!   advertiser uploaded a list — never which PII matched.
//!
//! Experiments E1 and E9 compare these against Treads; the completeness
//! helpers at the bottom compute the comparison numbers.

use crate::attributes::AttributeCatalog;
use crate::audience::{AudienceKind, AudienceStore};
use crate::campaign::Ad;
use crate::profile::UserProfile;
use adsim_types::AttributeId;
use serde::{Deserialize, Serialize};

/// The platform-generated explanation for why a user saw an ad.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Explanation {
    /// "You are in this ad's audience because you have `<attribute>`." The
    /// platform reveals at most this one attribute, regardless of how many
    /// the advertiser specified.
    OneAttribute {
        /// The single attribute disclosed (the most prevalent matching
        /// one).
        attribute: AttributeId,
        /// Rendered text shown to the user.
        text: String,
    },
    /// "The advertiser uploaded a list containing your contact info" —
    /// without saying which PII.
    CustomAudience {
        /// Rendered text shown to the user.
        text: String,
    },
    /// "You visited the advertiser's website or used their app."
    ActivityAudience {
        /// Rendered text shown to the user.
        text: String,
    },
    /// Nothing more specific to say (e.g. broad demographic targeting).
    Generic {
        /// Rendered text shown to the user.
        text: String,
    },
}

impl Explanation {
    /// The attribute ids this explanation discloses (0 or 1 — never more;
    /// that is the point).
    pub fn disclosed_attributes(&self) -> Vec<AttributeId> {
        match self {
            Explanation::OneAttribute { attribute, .. } => vec![*attribute],
            _ => Vec::new(),
        }
    }
}

/// The user-facing "ad preferences" page: every attribute the platform
/// holds about the user **except** partner categories, which real platforms
/// were shown to hide. Treads exist to close exactly this gap.
pub fn ad_preferences<'c>(
    user: &UserProfile,
    catalog: &'c AttributeCatalog,
) -> Vec<&'c crate::attributes::AttributeDef> {
    user.attributes
        .iter()
        .filter_map(|&id| catalog.get(id))
        .filter(|def| !def.source.is_partner())
        .collect()
}

/// Generates the platform's explanation for why `user` saw `ad`.
///
/// Selection rule (matching the cited audit findings): if the targeting
/// referenced attributes the user holds, disclose exactly **one** — the
/// most *prevalent* (most common in the population, hence least
/// informative). Otherwise fall back to the audience-based wording, then to
/// a generic one.
pub fn explain_ad(
    ad: &Ad,
    user: &UserProfile,
    catalog: &AttributeCatalog,
    audiences: &AudienceStore,
) -> Explanation {
    // Attributes in the spec that the user actually holds.
    let mut held: Vec<&crate::attributes::AttributeDef> = ad
        .targeting
        .referenced_attributes()
        .into_iter()
        .filter(|&a| user.has_attribute(a))
        .filter_map(|a| catalog.get(a))
        .collect();
    if !held.is_empty() {
        held.sort_by(|a, b| {
            b.prevalence
                .partial_cmp(&a.prevalence)
                .expect("prevalences are finite")
                .then(a.id.cmp(&b.id))
        });
        let chosen = held[0];
        return Explanation::OneAttribute {
            attribute: chosen.id,
            text: format!(
                "You're seeing this ad because the advertiser wants to reach people \
                 interested in \"{}\". There may be other reasons you're seeing this ad.",
                chosen.name
            ),
        };
    }

    // Audience-based targeting: custom beats pixel in specificity.
    for aud_id in ad.targeting.referenced_audiences() {
        if let Ok(aud) = audiences.get(aud_id) {
            match aud.kind {
                AudienceKind::Custom { .. } => {
                    return Explanation::CustomAudience {
                        text: "You're seeing this ad because the advertiser uploaded a contact \
                               list that includes your information."
                            .into(),
                    }
                }
                AudienceKind::PixelVisitors { .. } => {
                    return Explanation::ActivityAudience {
                        text: "You're seeing this ad because you visited the advertiser's \
                               website or used one of their apps."
                            .into(),
                    }
                }
                AudienceKind::PageEngagement { .. } => {
                    return Explanation::ActivityAudience {
                        text: "You're seeing this ad because you interacted with the \
                               advertiser's page."
                            .into(),
                    }
                }
                AudienceKind::CustomIntent { .. } => {
                    // The platform never reveals the advertiser's phrases.
                    return Explanation::ActivityAudience {
                        text: "You're seeing this ad because of your activity and \
                               interests."
                            .into(),
                    };
                }
            }
        }
    }

    Explanation::Generic {
        text: "You're seeing this ad because the advertiser wants to reach people like you.".into(),
    }
}

/// Completeness of the platform's explanation for one (ad, user) pair:
/// the fraction of targeting attributes *the user holds* that the
/// explanation disclosed. Used by E9's comparison table.
pub fn explanation_completeness(
    ad: &Ad,
    user: &UserProfile,
    catalog: &AttributeCatalog,
    audiences: &AudienceStore,
) -> f64 {
    let held: Vec<AttributeId> = ad
        .targeting
        .referenced_attributes()
        .into_iter()
        .filter(|&a| user.has_attribute(a))
        .collect();
    if held.is_empty() {
        return 1.0; // nothing to disclose
    }
    let explained = explain_ad(ad, user, catalog, audiences);
    let disclosed = explained.disclosed_attributes();
    disclosed.iter().filter(|a| held.contains(a)).count() as f64 / held.len() as f64
}

/// Completeness of the ad-preferences page for one user: the fraction of
/// the user's attributes it lists (partner attributes are hidden, so users
/// with partner data always score below 1).
pub fn preferences_completeness(user: &UserProfile, catalog: &AttributeCatalog) -> f64 {
    if user.attributes.is_empty() {
        return 1.0;
    }
    ad_preferences(user, catalog).len() as f64 / user.attributes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::AttributeSource;
    use crate::campaign::AdCreative;
    use crate::profile::{Gender, ProfileStore};
    use crate::targeting::{TargetingExpr, TargetingSpec};
    use adsim_types::{AccountId, AdId, AudienceId, CampaignId, PixelId};

    fn catalog() -> AttributeCatalog {
        let mut c = AttributeCatalog::new();
        // id 1: common platform attribute; id 2: rare platform attribute;
        // id 3: partner attribute.
        c.register("Interest: coffee", AttributeSource::Platform, None, 0.30);
        c.register("Interest: falconry", AttributeSource::Platform, None, 0.01);
        c.register(
            "Net worth: $2M+",
            AttributeSource::Partner {
                broker: "NorthStar Data".into(),
            },
            None,
            0.02,
        );
        c
    }

    fn user_with(attrs: &[u64]) -> (ProfileStore, adsim_types::UserId) {
        let mut store = ProfileStore::new();
        let id = store.register(35, Gender::Female, "Vermont", "05401");
        for &a in attrs {
            store.grant_attribute(id, AttributeId(a)).expect("grant");
        }
        (store, id)
    }

    fn ad_with(spec: TargetingSpec) -> Ad {
        Ad {
            id: AdId(1),
            campaign: CampaignId(1),
            creative: AdCreative::text("h", "b"),
            targeting: spec,
            status: crate::campaign::AdStatus::Approved,
        }
    }

    #[test]
    fn preferences_hide_partner_attributes() {
        let catalog = catalog();
        let (store, id) = user_with(&[1, 2, 3]);
        let user = store.get(id).expect("user");
        let prefs = ad_preferences(user, &catalog);
        let names: Vec<&str> = prefs.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["Interest: coffee", "Interest: falconry"]);
        // Completeness below 1 because the partner attribute is hidden.
        let c = preferences_completeness(user, &catalog);
        assert!((c - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn explanation_reveals_at_most_one_most_prevalent() {
        let catalog = catalog();
        let (store, id) = user_with(&[1, 2]);
        let user = store.get(id).expect("user");
        let audiences = AudienceStore::new(20, 1000, 100);
        // Ad targets BOTH attributes; explanation discloses only the most
        // prevalent (coffee, 0.30 > falconry 0.01).
        let ad = ad_with(TargetingSpec::including(TargetingExpr::And(vec![
            TargetingExpr::Attr(AttributeId(1)),
            TargetingExpr::Attr(AttributeId(2)),
        ])));
        match explain_ad(&ad, user, &catalog, &audiences) {
            Explanation::OneAttribute { attribute, text } => {
                assert_eq!(attribute, AttributeId(1));
                assert!(text.contains("coffee"));
            }
            other => panic!("expected OneAttribute, got {other:?}"),
        }
        // Completeness: 1 of 2 held targeting attributes disclosed.
        let c = explanation_completeness(&ad, user, &catalog, &audiences);
        assert!((c - 0.5).abs() < 1e-9);
    }

    #[test]
    fn custom_audience_explanation_hides_which_pii() {
        let catalog = catalog();
        let (mut store, id) = user_with(&[]);
        store
            .attach_pii(
                id,
                crate::profile::PiiKind::Email,
                "a@example.com",
                crate::profile::PiiProvenance::UserProvided,
            )
            .expect("attach");
        let mut audiences = AudienceStore::new(1, 1000, 100);
        let digest = adsim_types::hash::hash_pii("a@example.com");
        let matcher = |d: &adsim_types::hash::Digest| store.match_pii(d).to_vec();
        let aud = audiences
            .create_custom(AccountId(1), &[digest], matcher)
            .expect("audience");
        let user = store.get(id).expect("user");
        let ad = ad_with(TargetingSpec::including(TargetingExpr::InAudience(aud)));
        match explain_ad(&ad, user, &catalog, &audiences) {
            Explanation::CustomAudience { text } => {
                // The explanation must not contain the email or its hash.
                assert!(!text.contains("a@example.com"));
                assert!(!text.contains(&digest.to_hex()));
            }
            other => panic!("expected CustomAudience, got {other:?}"),
        }
    }

    #[test]
    fn pixel_and_page_audiences_get_activity_wording() {
        let catalog = catalog();
        let (store, id) = user_with(&[]);
        let user = store.get(id).expect("user");
        let mut audiences = AudienceStore::new(20, 1000, 100);
        let px = audiences.create_pixel_audience(AccountId(1), PixelId(1));
        let pg = audiences.create_page_audience(AccountId(1), 5);
        for aud in [px, pg] {
            let ad = ad_with(TargetingSpec::including(TargetingExpr::InAudience(aud)));
            assert!(matches!(
                explain_ad(&ad, user, &catalog, &audiences),
                Explanation::ActivityAudience { .. }
            ));
        }
    }

    #[test]
    fn generic_fallback() {
        let catalog = catalog();
        let (store, id) = user_with(&[]);
        let user = store.get(id).expect("user");
        let audiences = AudienceStore::new(20, 1000, 100);
        let ad = ad_with(TargetingSpec::including(TargetingExpr::AgeRange {
            min: 30,
            max: 40,
        }));
        assert!(matches!(
            explain_ad(&ad, user, &catalog, &audiences),
            Explanation::Generic { .. }
        ));
        // An unknown referenced audience also falls through to generic.
        let ad = ad_with(TargetingSpec::including(TargetingExpr::InAudience(
            AudienceId(99),
        )));
        assert!(matches!(
            explain_ad(&ad, user, &catalog, &audiences),
            Explanation::Generic { .. }
        ));
    }

    #[test]
    fn completeness_is_one_when_nothing_held() {
        let catalog = catalog();
        let (store, id) = user_with(&[]);
        let user = store.get(id).expect("user");
        let audiences = AudienceStore::new(20, 1000, 100);
        let ad = ad_with(TargetingSpec::including(TargetingExpr::Attr(AttributeId(
            1,
        ))));
        assert_eq!(
            explanation_completeness(&ad, user, &catalog, &audiences),
            1.0
        );
        assert_eq!(preferences_completeness(user, &catalog), 1.0);
    }
}
