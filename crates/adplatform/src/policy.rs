//! The ToS policy reviewer.
//!
//! All three platforms the paper quotes ban ads that "assert or imply
//! knowledge of personal attributes" (Facebook), "assert or imply knowledge
//! of personal information" (Twitter), or "imply knowledge of personally
//! identifiable or sensitive information within the ad" (Google). The
//! reviewer here implements that rule the way a real one plausibly does:
//! lexical detection of **second-person assertions** combined with
//! **attribute vocabulary**, applied to the *ad creative only* — platforms
//! do not review external landing pages, which is exactly the loophole the
//! paper's landing-page Treads use (§4).
//!
//! Experiment E5 measures which Tread encodings pass review: explicit
//! in-ad disclosures are rejected; obfuscated encodings (Figure 1b's
//! "2,830,120") and landing-page disclosures pass.

use crate::attributes::AttributeCatalog;
use crate::campaign::AdCreative;
use adsim_types::{Error, Result};
use serde::{Deserialize, Serialize};

/// How aggressively the reviewer matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strictness {
    /// Reject only second-person assertions of attribute vocabulary
    /// ("you are interested in salsa dancing"). The realistic setting.
    Standard,
    /// Reject any mention of attribute vocabulary at all, second person or
    /// not. Used by the E5 ablation.
    Strict,
}

/// The policy engine.
#[derive(Debug, Clone)]
pub struct PolicyEngine {
    /// Matching aggressiveness.
    pub strictness: Strictness,
    /// Lowercased attribute-core vocabulary extracted from the catalog.
    vocabulary: Vec<String>,
}

/// Phrases that always read as asserting personal knowledge, independent of
/// the attribute vocabulary.
const ASSERTION_PHRASES: [&str; 8] = [
    "according to this ad platform",
    "this platform knows",
    "the advertiser knows",
    "we know that you",
    "your net worth",
    "your income",
    "your medical",
    "data collected about you",
];

/// Second-person markers that turn an attribute mention into an assertion.
const SECOND_PERSON: [&str; 6] = [
    "you are", "you're", "your ", "you have", "you live", "you were",
];

impl PolicyEngine {
    /// Builds the engine, deriving attribute vocabulary from the catalog.
    ///
    /// Vocabulary extraction strips taxonomy prefixes ("Interest:",
    /// "Purchase behavior:", …) and category suffixes, keeping the phrase a
    /// human reviewer would recognize ("salsa dancing", "net worth: $2m+" →
    /// "salsa dancing", "$2m+").
    pub fn new(strictness: Strictness, catalog: &AttributeCatalog) -> Self {
        let mut vocabulary = Vec::with_capacity(catalog.len());
        for def in catalog.all() {
            vocabulary.push(attribute_core(&def.name));
        }
        Self {
            strictness,
            vocabulary,
        }
    }

    /// An engine with no catalog vocabulary (assertion phrases only) —
    /// for tests and minimal setups.
    pub fn without_catalog(strictness: Strictness) -> Self {
        Self {
            strictness,
            vocabulary: Vec::new(),
        }
    }

    /// Reviews a creative. `Ok(())` = approved; `Err(PolicyViolation)` with
    /// the reviewer's reason otherwise. Only the creative's visible text is
    /// inspected — images and landing pages are not (the paper's loophole).
    pub fn review(&self, creative: &AdCreative) -> Result<()> {
        let text = creative.visible_text().to_lowercase();

        for phrase in ASSERTION_PHRASES {
            if text.contains(phrase) {
                return Err(Error::PolicyViolation {
                    reason: format!("asserts personal knowledge: contains \"{phrase}\""),
                });
            }
        }

        let second_person = SECOND_PERSON.iter().any(|m| text.contains(m));
        for word in &self.vocabulary {
            if word.len() < 4 {
                // Tiny cores ("ios") would false-positive everywhere.
                continue;
            }
            if text.contains(word.as_str()) {
                match self.strictness {
                    Strictness::Strict => {
                        return Err(Error::PolicyViolation {
                            reason: format!("mentions targeting-attribute vocabulary: \"{word}\""),
                        });
                    }
                    Strictness::Standard if second_person => {
                        return Err(Error::PolicyViolation {
                            reason: format!(
                                "asserts or implies a personal attribute: second-person \
                                 phrasing with \"{word}\""
                            ),
                        });
                    }
                    Strictness::Standard => {}
                }
            }
        }
        Ok(())
    }
}

/// Strips taxonomy prefix and category suffix from an attribute name,
/// lowercased: `"Interest: salsa dancing (Music)"` → `"salsa dancing"`.
pub fn attribute_core(name: &str) -> String {
    let mut core = name;
    if let Some(idx) = core.find(": ") {
        core = &core[idx + 2..];
    }
    if let Some(idx) = core.rfind(" (") {
        if core.ends_with(')') {
            core = &core[..idx];
        }
    }
    core.to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::AttributeSource;

    fn engine(strictness: Strictness) -> PolicyEngine {
        let mut catalog = AttributeCatalog::new();
        catalog.register(
            "Interest: salsa dancing (Music)",
            AttributeSource::Platform,
            None,
            0.05,
        );
        catalog.register(
            "Net worth: $2M+",
            AttributeSource::Partner {
                broker: "NorthStar Data".into(),
            },
            None,
            0.02,
        );
        PolicyEngine::new(strictness, &catalog)
    }

    #[test]
    fn attribute_core_extraction() {
        assert_eq!(
            attribute_core("Interest: salsa dancing (Music)"),
            "salsa dancing"
        );
        assert_eq!(attribute_core("Net worth: $2M+"), "$2m+");
        assert_eq!(attribute_core("plain"), "plain");
    }

    #[test]
    fn explicit_tread_is_rejected() {
        // The paper's explicit example: "You are interested in Salsa
        // dancing according to this ad platform".
        let e = engine(Strictness::Standard);
        let creative = AdCreative::text(
            "About you",
            "You are interested in Salsa dancing according to this ad platform",
        );
        let err = e.review(&creative).expect_err("must reject");
        assert!(matches!(err, Error::PolicyViolation { .. }));
    }

    #[test]
    fn second_person_plus_attribute_is_rejected() {
        let e = engine(Strictness::Standard);
        let creative = AdCreative::text("Hello", "You are into salsa dancing, right?");
        assert!(e.review(&creative).is_err());
    }

    #[test]
    fn attribute_mention_without_second_person_passes_standard() {
        let e = engine(Strictness::Standard);
        // Third-person mention: an ordinary dance-studio ad.
        let creative = AdCreative::text("Salsa dancing classes", "New classes every Tuesday!");
        assert!(e.review(&creative).is_ok());
    }

    #[test]
    fn strict_mode_rejects_any_attribute_mention() {
        let e = engine(Strictness::Strict);
        let creative = AdCreative::text("Salsa dancing classes", "New classes every Tuesday!");
        assert!(e.review(&creative).is_err());
    }

    #[test]
    fn obfuscated_tread_passes() {
        // Figure 1b: the targeting parameter encoded as "2,830,120" —
        // innocuous to a reviewer.
        let e = engine(Strictness::Standard);
        let creative = AdCreative::text("A message from Know Your Data", "Ref: 2,830,120");
        assert!(e.review(&creative).is_ok());
        // Even strict mode passes: no attribute vocabulary appears.
        let strict = engine(Strictness::Strict);
        assert!(strict.review(&creative).is_ok());
    }

    #[test]
    fn landing_page_disclosure_is_not_reviewed() {
        // The creative is innocuous; the disclosure lives on the landing
        // page, which the reviewer does not fetch.
        let e = engine(Strictness::Standard);
        let creative = AdCreative::text("Curious what advertisers know?", "Tap to find out.")
            .with_landing("https://provider.example/reveal?attr=net-worth-2m");
        assert!(e.review(&creative).is_ok());
    }

    #[test]
    fn assertion_phrases_reject_without_vocabulary() {
        let e = PolicyEngine::without_catalog(Strictness::Standard);
        let creative = AdCreative::text("!", "We know that you shop online");
        assert!(e.review(&creative).is_err());
        let creative = AdCreative::text("!", "Your net worth may surprise you");
        assert!(e.review(&creative).is_err());
    }

    #[test]
    fn benign_ads_pass() {
        let e = engine(Strictness::Standard);
        for (h, b) in [
            (
                "Fresh coffee, delivered",
                "Try our beans. 20% off this week.",
            ),
            ("Sneaker sale", "All sizes. Free returns."),
            ("Local news app", "Stay informed about what matters."),
        ] {
            assert!(e.review(&AdCreative::text(h, b)).is_ok(), "rejected: {h}");
        }
    }

    #[test]
    fn review_is_case_insensitive() {
        let e = engine(Strictness::Standard);
        let creative = AdCreative::text("", "YOU ARE INTERESTED IN SALSA DANCING");
        assert!(e.review(&creative).is_err());
    }
}
