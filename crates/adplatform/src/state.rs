//! Checkpointable platform state.
//!
//! An engine run mutates a small, well-defined slice of the platform:
//! the clock, the billing ledger, frequency caps, the impression log,
//! delivery stats, the pixel fire journal, and audience memberships
//! (pixel/page audiences grow as users browse). Everything else —
//! campaigns, profiles, the attribute catalog, policy configuration,
//! accounts — is *host configuration* that the experiment driver
//! reconstructs deterministically from its own setup code, so a
//! checkpoint deliberately excludes it.
//!
//! [`PlatformState`] is the flattened, canonical copy of that mutable
//! slice. "Canonical" matters: the resume contract is byte-identical
//! output, so every map is exported sorted by key and every journal in
//! its original order. The binary encoding itself lives in
//! `treads-resilience` (the platform only defines *what* is state, not
//! how it is framed on disk).

use crate::delivery::DeliveryStats;
use crate::pixel::PixelEvent;
use crate::platform::Platform;
use crate::profile::FacetsState;
use crate::reporting::Impression;
use adsim_types::{AdId, AudienceId, SimTime, UserId};

use crate::billing::LedgerState;

/// The engine-mutable slice of a [`Platform`], in canonical order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlatformState {
    /// The simulated instant the checkpoint was taken (a tick boundary).
    pub clock_now: SimTime,
    /// Full billing ledger contents.
    pub billing: LedgerState,
    /// Platform-side frequency-cap counts, sorted by `(ad, user)`.
    pub freq: Vec<((AdId, UserId), u32)>,
    /// The impression log, in delivery order.
    pub impressions: Vec<Impression>,
    /// Delivery-loop statistics.
    pub stats: DeliveryStats,
    /// The pixel fire journal, in fire order.
    pub pixel_events: Vec<PixelEvent>,
    /// Audience memberships, sorted by audience id.
    pub audience_members: Vec<(AudienceId, Vec<UserId>)>,
    /// The profile store's symbol table and per-user facet sidecars.
    ///
    /// Profiles themselves are host configuration, but the interner and
    /// facets are *run-dependent*: mid-run location visits intern new
    /// ZIPs, and symbol assignment is first-intern order — so a resumed
    /// run must pick the table up exactly where the checkpoint left it
    /// to keep assigning identical symbols.
    pub facets: FacetsState,
}

impl Platform {
    /// Exports the engine-mutable platform state for checkpointing.
    pub fn export_state(&self) -> PlatformState {
        PlatformState {
            clock_now: self.clock.now(),
            billing: self.billing.export_state(),
            freq: self.freq.entries(),
            impressions: self.log.all().to_vec(),
            stats: self.stats,
            pixel_events: self.pixels.events().to_vec(),
            audience_members: self.audiences.memberships(),
            facets: self.profiles.export_facets(),
        }
    }

    /// Restores state exported by [`Platform::export_state`] onto this
    /// platform.
    ///
    /// The platform must be a freshly reconstructed host configuration
    /// (same seed, same campaigns, same audiences) whose clock has not
    /// advanced past the checkpoint instant — the clock is monotone, so
    /// restoring onto a platform that already ran further panics in
    /// `SimClock::advance_to`.
    pub fn restore_state(&mut self, state: &PlatformState) {
        self.clock.advance_to(state.clock_now);
        self.billing.restore_state(&state.billing);
        self.freq.restore_entries(&state.freq);
        self.log.restore(state.impressions.clone());
        self.stats = state.stats;
        self.pixels.restore_events(state.pixel_events.clone());
        self.audiences.restore_memberships(&state.audience_members);
        self.profiles.restore_facets(&state.facets);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformConfig;
    use crate::profile::Gender;

    fn tiny_platform() -> Platform {
        let mut p = Platform::us_2018(PlatformConfig::default());
        p.config.auction.competitor_rate = 0.0;
        p
    }

    #[test]
    fn export_restore_round_trips() {
        let mut p = tiny_platform();
        let u = p.register_user(30, Gender::Female, "Illinois", "60601");
        p.clock.advance_to(SimTime(5));
        p.browse(u).unwrap();
        let state = p.export_state();

        let mut fresh = tiny_platform();
        fresh.register_user(30, Gender::Female, "Illinois", "60601");
        fresh.restore_state(&state);
        assert_eq!(fresh.export_state(), state);
        assert_eq!(fresh.clock.now(), SimTime(5));
    }

    #[test]
    fn export_is_deterministic_across_identical_runs() {
        let run = || {
            let mut p = tiny_platform();
            let u = p.register_user(40, Gender::Male, "Ohio", "43004");
            p.browse(u).unwrap();
            p.export_state()
        };
        assert_eq!(run(), run());
    }
}
