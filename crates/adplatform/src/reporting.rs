//! The impression log and advertiser-facing reporting.
//!
//! The platform records every delivered impression exactly; advertisers see
//! only **aggregates** — impression counts, spend, and a reach estimate
//! rounded to the platform's granularity. This is the second half of the
//! contract Treads rely on (§3.1 threat model: "the transparency provider
//! has access to the performance statistics reported by the advertising
//! platform … this could include estimates about the number of users
//! reached by different ads" — but never *which* users).
//!
//! Experiment E4 runs its linkage attack against this interface, and its
//! ablation sets `reach_granularity = 1` / `reach_floor = 0` to show what
//! breaks when a platform reports exactly.

use adsim_types::{AccountId, AdId, CampaignId, Money, SimTime, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One delivered impression (platform-internal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Impression {
    /// The delivered ad.
    pub ad: AdId,
    /// Its campaign.
    pub campaign: CampaignId,
    /// Its account.
    pub account: AccountId,
    /// The user who saw it.
    pub user: UserId,
    /// When it was delivered.
    pub at: SimTime,
    /// The per-impression price charged.
    pub price: Money,
    /// Canonical digest of the targeting spec the ad was decided under
    /// ([`crate::targeting::TargetingSpec::digest`]); delivery receipts
    /// bind each delivery to it.
    pub spec_digest: u64,
}

/// The platform's exact impression log.
#[derive(Debug, Clone, Default)]
pub struct ImpressionLog {
    records: Vec<Impression>,
}

/// The advertiser-visible performance report for one ad.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdReport {
    /// The reported ad.
    pub ad: AdId,
    /// Total impressions delivered.
    pub impressions: u64,
    /// Estimated unique users reached, rounded down to the reporting
    /// granularity; `0` when below the reporting floor.
    pub estimated_reach: u64,
    /// True when the exact reach was below the reporting floor (the
    /// platform says only "fewer than `floor` people reached").
    pub below_reach_floor: bool,
    /// Total spend accrued by the ad.
    pub spend: Money,
}

impl ImpressionLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an impression.
    pub fn record(&mut self, imp: Impression) {
        self.records.push(imp);
    }

    /// All impressions, in delivery order (platform-internal).
    pub fn all(&self) -> &[Impression] {
        &self.records
    }

    /// Replaces the log's contents with a checkpointed record list.
    /// Delivery order is preserved verbatim — it is part of the
    /// byte-identical resume contract.
    pub fn restore(&mut self, records: Vec<Impression>) {
        self.records = records;
    }

    /// Number of impressions recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing has been delivered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The impressions a given user saw, in order — this is the user's own
    /// ad feed (what `websim`'s browser extension observes client-side).
    pub fn seen_by(&self, user: UserId) -> Vec<&Impression> {
        self.records.iter().filter(|i| i.user == user).collect()
    }

    /// Exact unique reach of an ad (platform-internal).
    pub fn exact_reach(&self, ad: AdId) -> usize {
        let users: BTreeSet<UserId> = self
            .records
            .iter()
            .filter(|i| i.ad == ad)
            .map(|i| i.user)
            .collect();
        users.len()
    }

    /// Builds the advertiser-visible report for an ad, applying the reach
    /// floor and rounding granularity.
    pub fn report_ad(&self, ad: AdId, reach_floor: usize, reach_granularity: usize) -> AdReport {
        let mut impressions = 0u64;
        let mut spend = Money::ZERO;
        let mut users = BTreeSet::new();
        for i in self.records.iter().filter(|i| i.ad == ad) {
            impressions += 1;
            spend += i.price;
            users.insert(i.user);
        }
        let exact = users.len();
        let below = exact < reach_floor;
        let g = reach_granularity.max(1);
        AdReport {
            ad,
            impressions,
            estimated_reach: if below { 0 } else { ((exact / g) * g) as u64 },
            below_reach_floor: below,
            spend,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn imp(ad: u64, user: u64, at: u64) -> Impression {
        Impression {
            ad: AdId(ad),
            campaign: CampaignId(1),
            account: AccountId(1),
            user: UserId(user),
            at: SimTime(at),
            price: Money::micros(2_000),
            spec_digest: 0,
        }
    }

    #[test]
    fn log_records_in_order() {
        let mut log = ImpressionLog::new();
        log.record(imp(1, 1, 0));
        log.record(imp(1, 2, 5));
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
        assert_eq!(log.all()[1].user, UserId(2));
    }

    #[test]
    fn seen_by_is_the_user_feed() {
        let mut log = ImpressionLog::new();
        log.record(imp(1, 1, 0));
        log.record(imp(2, 2, 1));
        log.record(imp(3, 1, 2));
        let feed: Vec<u64> = log.seen_by(UserId(1)).iter().map(|i| i.ad.raw()).collect();
        assert_eq!(feed, vec![1, 3]);
        assert!(log.seen_by(UserId(9)).is_empty());
    }

    #[test]
    fn exact_reach_counts_unique_users() {
        let mut log = ImpressionLog::new();
        log.record(imp(1, 1, 0));
        log.record(imp(1, 1, 1)); // repeat impression
        log.record(imp(1, 2, 2));
        assert_eq!(log.exact_reach(AdId(1)), 2);
        assert_eq!(log.exact_reach(AdId(9)), 0);
    }

    #[test]
    fn report_applies_floor() {
        let mut log = ImpressionLog::new();
        log.record(imp(1, 1, 0));
        log.record(imp(1, 2, 1));
        // Floor of 100: two users reached reports as below-floor, reach 0.
        let r = log.report_ad(AdId(1), 100, 10);
        assert_eq!(r.impressions, 2);
        assert!(r.below_reach_floor);
        assert_eq!(r.estimated_reach, 0);
        assert_eq!(r.spend, Money::micros(4_000));
    }

    #[test]
    fn report_rounds_reach() {
        let mut log = ImpressionLog::new();
        for u in 0..237 {
            log.record(imp(1, u + 1, u));
        }
        let r = log.report_ad(AdId(1), 100, 10);
        assert!(!r.below_reach_floor);
        assert_eq!(r.estimated_reach, 230);
        assert_eq!(r.impressions, 237);
    }

    #[test]
    fn exact_reporting_ablation() {
        // E4's ablation: granularity 1, floor 0 → exact counts leak.
        let mut log = ImpressionLog::new();
        log.record(imp(1, 1, 0));
        log.record(imp(1, 2, 1));
        let r = log.report_ad(AdId(1), 0, 1);
        assert!(!r.below_reach_floor);
        assert_eq!(r.estimated_reach, 2);
    }

    #[test]
    fn report_for_unserved_ad_is_zeroed() {
        let log = ImpressionLog::new();
        let r = log.report_ad(AdId(1), 100, 10);
        assert_eq!(r.impressions, 0);
        assert_eq!(r.spend, Money::ZERO);
        assert!(r.below_reach_floor);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Report invariants for arbitrary impression logs: the rounded
        /// reach never exceeds the exact reach, the exact reach never
        /// exceeds impressions, below-floor reports always show zero
        /// reach, and rounding is to the requested granularity.
        #[test]
        fn report_invariants(
            pairs in prop::collection::vec((1u64..6, 1u64..40), 0..120),
            floor in 0usize..30,
            gran in 1usize..10,
        ) {
            let mut log = ImpressionLog::new();
            for (i, (ad, user)) in pairs.iter().enumerate() {
                log.record(Impression {
                    ad: AdId(*ad),
                    campaign: CampaignId(1),
                    account: AccountId(1),
                    user: UserId(*user),
                    at: SimTime(i as u64),
                    price: Money::micros(2_000),
                    spec_digest: 0,
                });
            }
            for ad in 1u64..6 {
                let exact = log.exact_reach(AdId(ad));
                let report = log.report_ad(AdId(ad), floor, gran);
                prop_assert!(report.estimated_reach as usize <= exact);
                prop_assert!(exact as u64 <= report.impressions);
                if report.below_reach_floor {
                    prop_assert!(exact < floor);
                    prop_assert_eq!(report.estimated_reach, 0);
                } else {
                    prop_assert!(exact >= floor);
                    prop_assert_eq!(report.estimated_reach as usize % gran, 0);
                    prop_assert!((exact - report.estimated_reach as usize) < gran);
                }
                // Spend is exactly price * impressions.
                prop_assert_eq!(
                    report.spend,
                    Money::micros(2_000 * report.impressions as i64)
                );
            }
        }
    }
}
