//! Campaigns, ads, and creatives.
//!
//! A campaign groups ads under one budget and bid; each ad pairs a
//! creative with a targeting spec. The paper's validation is, in these
//! terms: one campaign with a $10 CPM bid cap (5× the recommended $2),
//! containing 507 ads — one per partner attribute — plus one control ad
//! targeting the opted-in audience with no further parameters.

use crate::audience::AudienceResolver;
use crate::compiled::{EvalMode, ProgramArena};
use crate::index::{SelectionMode, TargetingIndex};
use crate::profile::UserProfile;
use crate::targeting::TargetingSpec;
use adsim_types::{AccountId, AdId, CampaignId, Error, Money, Result, SymbolTable};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The visual/textual content of an ad.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdCreative {
    /// Headline shown to the user.
    pub headline: String,
    /// Body text shown to the user.
    pub body: String,
    /// Optional image payload (synthetic pixel buffer; Treads can hide
    /// steganographic disclosures in it).
    pub image: Option<Vec<u8>>,
    /// Optional landing-page URL the ad links to.
    pub landing_url: Option<String>,
}

impl AdCreative {
    /// A text-only creative.
    pub fn text(headline: impl Into<String>, body: impl Into<String>) -> Self {
        Self {
            headline: headline.into(),
            body: body.into(),
            image: None,
            landing_url: None,
        }
    }

    /// Adds a landing URL.
    pub fn with_landing(mut self, url: impl Into<String>) -> Self {
        self.landing_url = Some(url.into());
        self
    }

    /// Adds an image payload.
    pub fn with_image(mut self, image: Vec<u8>) -> Self {
        self.image = Some(image);
        self
    }

    /// All human-readable text of the creative, for policy review.
    pub fn visible_text(&self) -> String {
        format!("{} {}", self.headline, self.body)
    }
}

/// Review/serving status of an ad.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdStatus {
    /// Created, not yet reviewed by policy.
    PendingReview,
    /// Approved and eligible to serve.
    Approved,
    /// Rejected by policy review, with the reviewer's reason.
    Rejected {
        /// Why the reviewer rejected the creative.
        reason: String,
    },
    /// Paused by the advertiser.
    Paused,
}

/// One ad: creative + targeting under a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ad {
    /// Platform-assigned id.
    pub id: AdId,
    /// Owning campaign.
    pub campaign: CampaignId,
    /// The creative.
    pub creative: AdCreative,
    /// The targeting spec.
    pub targeting: TargetingSpec,
    /// Review/serving status.
    pub status: AdStatus,
}

impl Ad {
    /// True if the ad may enter auctions.
    pub fn is_servable(&self) -> bool {
        self.status == AdStatus::Approved
    }
}

/// A budgeted group of ads with one bid cap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    /// Platform-assigned id.
    pub id: CampaignId,
    /// Owning advertiser account.
    pub account: AccountId,
    /// Display name.
    pub name: String,
    /// Bid cap as CPM: the maximum the campaign bids per thousand
    /// impressions (the paper sets $10, 5× the $2 default, to win
    /// auctions).
    pub bid_cpm: Money,
    /// Optional lifetime budget; `None` = unlimited.
    pub budget: Option<Money>,
    /// Ads belonging to this campaign.
    pub ads: Vec<AdId>,
}

/// Store of campaigns and ads.
///
/// Alongside the primary maps the store maintains a
/// [`TargetingIndex`] filing every ad under its anchor signal at
/// creation; [`crate::delivery::eligible_bids`] consults it (or not,
/// per [`SelectionMode`]) to avoid scanning the whole inventory per
/// opportunity. Each ad's targeting spec is also lowered into the
/// store's [`ProgramArena`] at creation; delivery evaluates the
/// compiled program (or the tree oracle, per [`EvalMode`]) per
/// candidate.
#[derive(Debug, Clone, Default)]
pub struct CampaignStore {
    campaigns: BTreeMap<CampaignId, Campaign>,
    /// Dense ad storage: ad ids count up from 1 and are never reused,
    /// so `AdId(n)` lives at slot `n - 1`. Lookups on the delivery hot
    /// path (one per index candidate per opportunity) are an O(1) slot
    /// load instead of a B-tree descent over the whole inventory.
    ads: Vec<Ad>,
    next_campaign: u64,
    next_ad: u64,
    index: TargetingIndex,
    selection: SelectionMode,
    /// Compiled form of each ad's targeting spec, built once at
    /// `create_ad`. Kept beside `ads` (not inside [`Ad`]) so the ad
    /// record stays the advertiser-facing submission, serializable
    /// without the compiled artifact. Ad ids are dense (`next_ad`
    /// counts up from 1, never reused), so the program of `AdId(n)` is
    /// arena program `n - 1` — an O(1) span load plus a contiguous op
    /// slice on the hot path, with no per-ad heap allocation.
    compiled: ProgramArena,
    eval: EvalMode,
    /// Canonical digest of each ad's targeting spec, computed once at
    /// `create_ad` and indexed like `compiled` (the digest of `AdId(n)`
    /// is slot `n - 1`). Delivery stamps it onto every impression so
    /// receipts can bind a delivery to its exact targeting parameters
    /// without re-walking the spec on the hot path.
    spec_digests: Vec<u64>,
}

impl CampaignStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a campaign.
    pub fn create_campaign(
        &mut self,
        account: AccountId,
        name: impl Into<String>,
        bid_cpm: Money,
        budget: Option<Money>,
    ) -> CampaignId {
        self.next_campaign += 1;
        let id = CampaignId(self.next_campaign);
        self.campaigns.insert(
            id,
            Campaign {
                id,
                account,
                name: name.into(),
                bid_cpm,
                budget,
                ads: Vec::new(),
            },
        );
        id
    }

    /// Creates an ad under a campaign, initially pending review.
    ///
    /// The targeting spec is lowered into the [`ProgramArena`] here, interning
    /// its state/ZIP strings into `symbols` — pass the platform's shared
    /// table (the one its profile store interns through) so compiled geo
    /// compares line up with profile facets.
    pub fn create_ad(
        &mut self,
        campaign: CampaignId,
        creative: AdCreative,
        targeting: TargetingSpec,
        symbols: &mut SymbolTable,
    ) -> Result<AdId> {
        let camp = self
            .campaigns
            .get_mut(&campaign)
            .ok_or_else(|| Error::not_found("campaign", campaign))?;
        self.next_ad += 1;
        let id = AdId(self.next_ad);
        camp.ads.push(id);
        self.index.insert(id, &targeting);
        debug_assert_eq!(self.compiled.len() as u64 + 1, self.next_ad);
        debug_assert_eq!(self.ads.len() as u64 + 1, self.next_ad);
        debug_assert_eq!(self.spec_digests.len() as u64 + 1, self.next_ad);
        self.spec_digests.push(targeting.digest());
        self.compiled.push(&targeting, symbols);
        self.ads.push(Ad {
            id,
            campaign,
            creative,
            targeting,
            status: AdStatus::PendingReview,
        });
        Ok(id)
    }

    /// Looks up a campaign.
    pub fn campaign(&self, id: CampaignId) -> Result<&Campaign> {
        self.campaigns
            .get(&id)
            .ok_or_else(|| Error::not_found("campaign", id))
    }

    /// Mutable campaign lookup.
    pub fn campaign_mut(&mut self, id: CampaignId) -> Result<&mut Campaign> {
        self.campaigns
            .get_mut(&id)
            .ok_or_else(|| Error::not_found("campaign", id))
    }

    /// Looks up an ad.
    pub fn ad(&self, id: AdId) -> Result<&Ad> {
        id.raw()
            .checked_sub(1)
            .and_then(|slot| self.ads.get(slot as usize))
            .ok_or_else(|| Error::not_found("ad", id))
    }

    /// Mutable ad lookup.
    pub fn ad_mut(&mut self, id: AdId) -> Result<&mut Ad> {
        id.raw()
            .checked_sub(1)
            .and_then(|slot| self.ads.get_mut(slot as usize))
            .ok_or_else(|| Error::not_found("ad", id))
    }

    /// All ads, in id order.
    pub fn ads(&self) -> impl Iterator<Item = &Ad> {
        self.ads.iter()
    }

    /// All campaigns, in id order.
    pub fn campaigns(&self) -> impl Iterator<Item = &Campaign> {
        self.campaigns.values()
    }

    /// Ads owned by an account (via their campaigns), in id order.
    pub fn ads_of_account(&self, account: AccountId) -> Vec<&Ad> {
        self.ads
            .iter()
            .filter(|ad| {
                self.campaigns
                    .get(&ad.campaign)
                    .map(|c| c.account == account)
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Total number of ads.
    pub fn ad_count(&self) -> usize {
        self.ads.len()
    }

    /// The inverted targeting index over this store's ads.
    pub fn index(&self) -> &TargetingIndex {
        &self.index
    }

    /// How delivery gathers candidate ads from this store.
    pub fn selection_mode(&self) -> SelectionMode {
        self.selection
    }

    /// Switches candidate selection between the indexed path and the
    /// linear-scan oracle. Both produce identical outputs; this exists
    /// for verification and benchmarking.
    pub fn set_selection_mode(&mut self, mode: SelectionMode) {
        self.selection = mode;
    }

    /// The arena holding every ad's compiled targeting program.
    pub fn programs(&self) -> &ProgramArena {
        &self.compiled
    }

    /// The canonical targeting-spec digest of `ad`, or `None` for an ad
    /// this store never created. O(1): computed at [`CampaignStore::create_ad`].
    pub fn spec_digest(&self, ad: AdId) -> Option<u64> {
        self.spec_digests
            .get(ad.raw().checked_sub(1)? as usize)
            .copied()
    }

    /// Evaluates `ad`'s compiled program against `user`, or `None` for
    /// an ad this store never created (every ad created through
    /// [`CampaignStore::create_ad`] has a program).
    pub fn compiled_matches<A: AudienceResolver>(
        &self,
        ad: AdId,
        user: &UserProfile,
        audiences: &A,
    ) -> Option<bool> {
        self.compiled
            .matches(ad.raw().checked_sub(1)? as usize, user, audiences)
    }

    /// How delivery evaluates a candidate ad's targeting spec.
    pub fn eval_mode(&self) -> EvalMode {
        self.eval
    }

    /// Switches targeting evaluation between the compiled programs and
    /// the tree-walking oracle. Both produce identical outputs; this
    /// exists for verification and benchmarking, mirroring
    /// [`CampaignStore::set_selection_mode`].
    pub fn set_eval_mode(&mut self, mode: EvalMode) {
        self.eval = mode;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targeting::TargetingExpr;

    fn spec() -> TargetingSpec {
        TargetingSpec::including(TargetingExpr::Everyone)
    }

    #[test]
    fn campaign_and_ad_lifecycle() {
        let mut s = CampaignStore::new();
        let mut syms = SymbolTable::new();
        let camp = s.create_campaign(AccountId(1), "validation", Money::dollars(10), None);
        let ad = s
            .create_ad(camp, AdCreative::text("h", "b"), spec(), &mut syms)
            .expect("ad");
        assert_eq!(s.campaign(camp).expect("camp").ads, vec![ad]);
        assert_eq!(s.ad(ad).expect("ad").status, AdStatus::PendingReview);
        assert!(!s.ad(ad).expect("ad").is_servable());
        assert_eq!(s.programs().len(), 1);
        assert_eq!(s.spec_digest(ad), Some(spec().digest()));
        assert_eq!(s.spec_digest(AdId(99)), None);
        s.ad_mut(ad).expect("ad").status = AdStatus::Approved;
        assert!(s.ad(ad).expect("ad").is_servable());
        assert_eq!(s.ad_count(), 1);
    }

    #[test]
    fn ad_requires_existing_campaign() {
        let mut s = CampaignStore::new();
        let mut syms = SymbolTable::new();
        let err = s
            .create_ad(CampaignId(9), AdCreative::text("h", "b"), spec(), &mut syms)
            .expect_err("no campaign");
        assert_eq!(err, Error::not_found("campaign", CampaignId(9)));
    }

    #[test]
    fn ads_of_account_filters_by_ownership() {
        let mut s = CampaignStore::new();
        let mut syms = SymbolTable::new();
        let c1 = s.create_campaign(AccountId(1), "one", Money::dollars(2), None);
        let c2 = s.create_campaign(AccountId(2), "two", Money::dollars(2), None);
        let a1 = s
            .create_ad(c1, AdCreative::text("1", ""), spec(), &mut syms)
            .expect("a1");
        let _a2 = s
            .create_ad(c2, AdCreative::text("2", ""), spec(), &mut syms)
            .expect("a2");
        let owned = s.ads_of_account(AccountId(1));
        assert_eq!(owned.len(), 1);
        assert_eq!(owned[0].id, a1);
    }

    #[test]
    fn creative_builder() {
        let c = AdCreative::text("Hello", "World")
            .with_landing("https://provider.example/reveal")
            .with_image(vec![1, 2, 3]);
        assert_eq!(c.visible_text(), "Hello World");
        assert_eq!(
            c.landing_url.as_deref(),
            Some("https://provider.example/reveal")
        );
        assert_eq!(c.image.as_deref(), Some(&[1u8, 2, 3][..]));
    }

    #[test]
    fn rejected_and_paused_ads_do_not_serve() {
        let mut s = CampaignStore::new();
        let mut syms = SymbolTable::new();
        let camp = s.create_campaign(AccountId(1), "c", Money::dollars(2), None);
        let ad = s
            .create_ad(camp, AdCreative::text("h", "b"), spec(), &mut syms)
            .expect("ad");
        s.ad_mut(ad).expect("ad").status = AdStatus::Rejected {
            reason: "asserts personal attributes".into(),
        };
        assert!(!s.ad(ad).expect("ad").is_servable());
        s.ad_mut(ad).expect("ad").status = AdStatus::Paused;
        assert!(!s.ad(ad).expect("ad").is_servable());
    }
}
