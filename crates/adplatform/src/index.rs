//! The inverted targeting index: signal → candidate ads.
//!
//! [`eligible_bids`](crate::delivery::eligible_bids) historically scanned
//! **every** ad in the store for **every** impression opportunity, so
//! per-opportunity cost grew linearly with inventory size — the dominant
//! term in the engine's auction phase once inventories reach the
//! thousands. [`TargetingIndex`] inverts that relationship: each ad is
//! filed under an **anchor key** derived from its targeting expression (an
//! attribute, audience, ZIP, or state the user *must* have for the ad to
//! match), and an opportunity only examines the ads filed under the
//! signals its user actually carries, plus a catch-all list of ads whose
//! expressions admit no anchor. Cost becomes proportional to *plausibly
//! matching* ads, not *all* ads.
//!
//! # Soundness (candidate supersets)
//!
//! An anchor is only ever extracted from a **positive conjunct** of the
//! include expression — a leaf reachable from the root through `And`
//! nodes alone. Such a leaf is a *necessary condition*: if the include
//! expression matches a user, every And-level conjunct matches, so the
//! user holds the anchor signal, so the lookup keyed on that signal
//! returns the ad. Expressions offering no such leaf (`Everyone`,
//! `Or`/`Not` roots, pure demographic ranges) are unanchored and returned
//! for every opportunity. The candidate set is therefore always a
//! superset of the truly matching ads; the unchanged eligibility filter
//! chain does the exact matching. Exclusion clauses only ever *shrink*
//! the matching set, so they never participate in anchoring.
//!
//! # Determinism (bit-identical to the linear scan)
//!
//! Candidates are returned in ascending [`AdId`] order — the same order
//! `CampaignStore::ads()` iterates — and the filter chain is shared with
//! the linear path, so the resulting bid vector is identical expression
//! by expression. Auction RNG draws do not depend on the bid set at all
//! (background competition is sampled first, unconditionally), so
//! switching selection modes never shifts a single random draw: invoices,
//! reports, and decoded Treads are byte-identical either way.
//! `tests/index_equivalence.rs` asserts this across shard counts.
//!
//! # Maintenance
//!
//! Posting lists are **append-only and status-independent**: an ad is
//! filed once, at creation, under an anchor derived from its (immutable)
//! targeting spec. Pausing, policy rejection, budget exhaustion, and
//! account suspension need **no index writes** — those are per-candidate
//! checks in the filter chain, exactly as on the linear path — and user
//! profile mutations need none either, because lookup is driven by the
//! live profile at decide time. This is what lets the engine's shard
//! threads share one `&Platform` (and one index) with no locks and no
//! per-shard reconciliation: during a tick the index is a pure function.
//!
//! # Example
//!
//! ```
//! use adplatform::campaign::{AdCreative, CampaignStore};
//! use adplatform::audience::AudienceStore;
//! use adplatform::profile::{Gender, ProfileStore};
//! use adplatform::targeting::{TargetingExpr, TargetingSpec};
//! use adsim_types::{AccountId, AttributeId, Money};
//!
//! let mut campaigns = CampaignStore::new();
//! let mut profiles = ProfileStore::new();
//! let camp = campaigns.create_campaign(AccountId(1), "c", Money::dollars(2), None);
//! // Anchored on Attr(7): only users holding attribute 7 can match.
//! let jazz = campaigns
//!     .create_ad(
//!         camp,
//!         AdCreative::text("jazz", "ad"),
//!         TargetingSpec::including(TargetingExpr::And(vec![
//!             TargetingExpr::Attr(AttributeId(7)),
//!             TargetingExpr::AgeRange { min: 21, max: 99 },
//!         ])),
//!         profiles.symbols_mut(),
//!     )
//!     .unwrap();
//! // Unanchored: admits every user, so it is a candidate for everyone.
//! let broad = campaigns
//!     .create_ad(
//!         camp,
//!         AdCreative::text("broad", "ad"),
//!         TargetingSpec::including(TargetingExpr::Everyone),
//!         profiles.symbols_mut(),
//!     )
//!     .unwrap();
//!
//! let audiences = AudienceStore::new(20, 1000, 100);
//! let fan = profiles.register(30, Gender::Female, "Ohio", "43004");
//! profiles.grant_attribute(fan, AttributeId(7)).unwrap();
//! let other = profiles.register(30, Gender::Male, "Ohio", "43004");
//!
//! let index = campaigns.index();
//! assert_eq!(
//!     index.candidates(profiles.get(fan).unwrap(), &audiences),
//!     vec![jazz, broad]
//! );
//! // The non-holder never pays for evaluating the jazz ad's expression.
//! assert_eq!(
//!     index.candidates(profiles.get(other).unwrap(), &audiences),
//!     vec![broad]
//! );
//! ```

use crate::audience::AudienceResolver;
use crate::profile::UserProfile;
use crate::targeting::{TargetingExpr, TargetingSpec};
use adsim_types::{AdId, AttributeId, AudienceId};
use std::collections::BTreeMap;

/// How [`crate::delivery::eligible_bids`] gathers its candidate ads.
///
/// Both modes produce byte-identical platform outputs; they differ only
/// in work performed. [`SelectionMode::LinearScan`] is retained as the
/// verification oracle (and for A/B benchmarking) — the equivalence
/// proptests run every workload under both.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SelectionMode {
    /// Consult the [`TargetingIndex`]: examine only the ads whose anchor
    /// signal the user carries, plus the unanchored catch-all list.
    #[default]
    Indexed,
    /// Examine every ad in the store (the original O(inventory) path).
    LinearScan,
}

/// The one signal a user must carry for an ad to possibly match — the key
/// the ad's posting-list entry is filed under.
///
/// Ordered by assumed selectivity: when an expression offers several
/// anchorable conjuncts, [`TargetingIndex`] picks the lowest variant
/// (attributes are rarer than audiences, audiences than location facts).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum AnchorKey {
    /// The user must hold this targeting attribute.
    Attr(AttributeId),
    /// The user must belong to this saved audience.
    Audience(AudienceId),
    /// The platform must have recently located the user in this ZIP.
    VisitedZip(String),
    /// The user's home ZIP must equal this.
    Zip(String),
    /// The user's home state must equal this.
    State(String),
}

/// The inverted index over an ad inventory: anchor signal → posting list
/// of [`AdId`]s, plus the unanchored catch-all. See the [module
/// docs](self) for the soundness and determinism arguments.
///
/// Owned by [`crate::campaign::CampaignStore`], which files every ad at
/// creation; all query methods take `&self` and allocate only the result
/// vector, so shard threads can share one index freely.
#[derive(Debug, Clone, Default)]
pub struct TargetingIndex {
    by_attr: BTreeMap<AttributeId, Vec<AdId>>,
    by_audience: BTreeMap<AudienceId, Vec<AdId>>,
    by_visited_zip: BTreeMap<String, Vec<AdId>>,
    by_zip: BTreeMap<String, Vec<AdId>>,
    by_state: BTreeMap<String, Vec<AdId>>,
    /// Ads whose include expression offers no necessary positive signal;
    /// candidates for every opportunity.
    unanchored: Vec<AdId>,
    /// Reverse map: where each ad was filed (`None` = unanchored).
    anchors: BTreeMap<AdId, Option<AnchorKey>>,
}

impl TargetingIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Files `ad` under the anchor derived from `spec`. Called once per
    /// ad by `CampaignStore::create_ad`; targeting specs are immutable
    /// after creation, so an ad is never re-filed.
    pub fn insert(&mut self, ad: AdId, spec: &TargetingSpec) {
        let anchor = anchor_of(spec);
        let list = match &anchor {
            Some(AnchorKey::Attr(a)) => self.by_attr.entry(*a).or_default(),
            Some(AnchorKey::Audience(a)) => self.by_audience.entry(*a).or_default(),
            Some(AnchorKey::VisitedZip(z)) => self.by_visited_zip.entry(z.clone()).or_default(),
            Some(AnchorKey::Zip(z)) => self.by_zip.entry(z.clone()).or_default(),
            Some(AnchorKey::State(s)) => self.by_state.entry(s.clone()).or_default(),
            None => &mut self.unanchored,
        };
        // Ids are allocated monotonically, so pushing keeps lists sorted;
        // the binary-search insert is defensive against out-of-order use.
        match list.binary_search(&ad) {
            Ok(_) => {}
            Err(pos) => list.insert(pos, ad),
        }
        self.anchors.insert(ad, anchor);
    }

    /// The candidate ads for one opportunity shown to `user`, in
    /// ascending id order: every unanchored ad, plus the posting lists of
    /// each signal the user carries. A superset of the ads whose
    /// targeting matches `user` (see the module docs), and each ad
    /// appears exactly once — an ad has exactly one anchor.
    pub fn candidates<A: AudienceResolver>(&self, user: &UserProfile, audiences: &A) -> Vec<AdId> {
        let mut out = Vec::new();
        self.candidates_into(user, audiences, &mut out);
        out
    }

    /// The allocation-free form of [`TargetingIndex::candidates`]: fills
    /// `out` (cleared first) instead of returning a fresh vector, so a
    /// caller that keeps `out` across opportunities allocates nothing
    /// once it reaches its high-water capacity.
    pub fn candidates_into<A: AudienceResolver>(
        &self,
        user: &UserProfile,
        audiences: &A,
        out: &mut Vec<AdId>,
    ) {
        out.clear();
        out.extend_from_slice(&self.unanchored);
        for attr in &user.attributes {
            if let Some(list) = self.by_attr.get(attr) {
                out.extend_from_slice(list);
            }
        }
        // Audience anchors are few (anchor priority prefers attributes),
        // so probing each anchored audience for membership stays cheap.
        for (aud, list) in &self.by_audience {
            if audiences.contains(*aud, user.id) {
                out.extend_from_slice(list);
            }
        }
        for zip in &user.recent_zips {
            if let Some(list) = self.by_visited_zip.get(zip) {
                out.extend_from_slice(list);
            }
        }
        if let Some(list) = self.by_zip.get(&user.zip) {
            out.extend_from_slice(list);
        }
        if let Some(list) = self.by_state.get(&user.state) {
            out.extend_from_slice(list);
        }
        out.sort_unstable();
    }

    /// The anchor `ad` was filed under (`Some(None)` = filed as
    /// unanchored, outer `None` = never filed).
    pub fn anchor(&self, ad: AdId) -> Option<&Option<AnchorKey>> {
        self.anchors.get(&ad)
    }

    /// Number of ads filed.
    pub fn len(&self) -> usize {
        self.anchors.len()
    }

    /// True if no ads are filed.
    pub fn is_empty(&self) -> bool {
        self.anchors.is_empty()
    }

    /// Number of ads on the catch-all (scanned-for-everyone) list.
    pub fn unanchored_len(&self) -> usize {
        self.unanchored.len()
    }
}

/// Derives the anchor for a targeting spec: the highest-selectivity
/// necessary positive signal of the include expression, or `None` when
/// the expression admits no anchor. Exclusions never anchor — they only
/// shrink the matching set, so ignoring them preserves the superset
/// property.
pub fn anchor_of(spec: &TargetingSpec) -> Option<AnchorKey> {
    let mut leaves = Vec::new();
    collect_anchor_leaves(&spec.include, &mut leaves);
    leaves.into_iter().min()
}

/// Collects the anchorable leaves reachable through `And` nodes only.
/// `Or` and `Not` subtrees are skipped entirely: a disjunct or a negated
/// predicate is not a *necessary* condition of the whole expression.
fn collect_anchor_leaves(expr: &TargetingExpr, out: &mut Vec<AnchorKey>) {
    match expr {
        TargetingExpr::And(subs) => {
            for sub in subs {
                collect_anchor_leaves(sub, out);
            }
        }
        TargetingExpr::Attr(a) => out.push(AnchorKey::Attr(*a)),
        TargetingExpr::InAudience(a) => out.push(AnchorKey::Audience(*a)),
        TargetingExpr::VisitedZip(z) => out.push(AnchorKey::VisitedZip(z.clone())),
        TargetingExpr::InZip(z) => out.push(AnchorKey::Zip(z.clone())),
        TargetingExpr::InState(s) => out.push(AnchorKey::State(s.clone())),
        // Everyone, demographics, radius, Or, Not: no necessary signal a
        // posting list can key on.
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audience::AudienceStore;
    use crate::profile::{Gender, ProfileStore};
    use adsim_types::UserId;

    fn spec(include: TargetingExpr) -> TargetingSpec {
        TargetingSpec::including(include)
    }

    #[test]
    fn anchor_prefers_attributes_over_weaker_signals() {
        let s = spec(TargetingExpr::And(vec![
            TargetingExpr::InState("Ohio".into()),
            TargetingExpr::InZip("43004".into()),
            TargetingExpr::Attr(AttributeId(5)),
            TargetingExpr::InAudience(AudienceId(2)),
        ]));
        assert_eq!(anchor_of(&s), Some(AnchorKey::Attr(AttributeId(5))));
    }

    #[test]
    fn anchor_descends_nested_ands_only() {
        let nested = spec(TargetingExpr::And(vec![
            TargetingExpr::AgeRange { min: 18, max: 65 },
            TargetingExpr::And(vec![TargetingExpr::Attr(AttributeId(9))]),
        ]));
        assert_eq!(anchor_of(&nested), Some(AnchorKey::Attr(AttributeId(9))));

        // A disjunct is not a necessary condition.
        let ored = spec(TargetingExpr::Or(vec![
            TargetingExpr::Attr(AttributeId(1)),
            TargetingExpr::Attr(AttributeId(2)),
        ]));
        assert_eq!(anchor_of(&ored), None);

        // Neither is a negated predicate.
        let negated = spec(TargetingExpr::Not(Box::new(TargetingExpr::Attr(
            AttributeId(1),
        ))));
        assert_eq!(anchor_of(&negated), None);
    }

    #[test]
    fn exclusions_never_anchor() {
        let s = TargetingSpec::including_excluding(
            TargetingExpr::Everyone,
            TargetingExpr::Attr(AttributeId(3)),
        );
        assert_eq!(anchor_of(&s), None);
    }

    #[test]
    fn candidates_come_back_sorted_and_unique() {
        let mut index = TargetingIndex::new();
        index.insert(AdId(3), &spec(TargetingExpr::Everyone));
        index.insert(AdId(1), &spec(TargetingExpr::Attr(AttributeId(7))));
        index.insert(AdId(2), &spec(TargetingExpr::InState("Ohio".into())));

        let mut profiles = ProfileStore::new();
        let u = profiles.register(30, Gender::Female, "Ohio", "43004");
        profiles.grant_attribute(u, AttributeId(7)).expect("grant");
        let audiences = AudienceStore::new(20, 1000, 100);
        let cands = index.candidates(profiles.get(u).expect("u"), &audiences);
        assert_eq!(cands, vec![AdId(1), AdId(2), AdId(3)]);
        assert_eq!(index.len(), 3);
        assert_eq!(index.unanchored_len(), 1);
    }

    #[test]
    fn audience_anchors_probe_membership() {
        let mut index = TargetingIndex::new();
        index.insert(AdId(1), &spec(TargetingExpr::InAudience(AudienceId(1))));

        let mut audiences = AudienceStore::new(20, 1000, 100);
        let aud =
            audiences.create_pixel_audience(adsim_types::AccountId(1), adsim_types::PixelId(1));
        assert_eq!(aud, AudienceId(1));
        audiences.record_pixel_visit(adsim_types::PixelId(1), UserId(1));

        let mut profiles = ProfileStore::new();
        let member = profiles.register(30, Gender::Female, "Ohio", "43004");
        assert_eq!(member, UserId(1));
        let outsider = profiles.register(30, Gender::Male, "Ohio", "43004");

        assert_eq!(
            index.candidates(profiles.get(member).expect("u"), &audiences),
            vec![AdId(1)]
        );
        assert!(index
            .candidates(profiles.get(outsider).expect("u"), &audiences)
            .is_empty());
    }

    #[test]
    fn visited_zip_anchors_use_recent_locations() {
        let mut index = TargetingIndex::new();
        index.insert(AdId(1), &spec(TargetingExpr::VisitedZip("10001".into())));
        index.insert(AdId(2), &spec(TargetingExpr::InZip("10001".into())));

        let mut profiles = ProfileStore::new();
        let u = profiles.register(30, Gender::Male, "New York", "10002");
        profiles.record_zip_visit(u, "10001").expect("visit");
        let audiences = AudienceStore::new(20, 1000, 100);
        // Visited 10001 → the VisitedZip ad; home zip is 10002, so the
        // InZip(10001) ad is correctly pruned.
        assert_eq!(
            index.candidates(profiles.get(u).expect("u"), &audiences),
            vec![AdId(1)]
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::audience::AudienceStore;
    use crate::profile::{Gender, ProfileStore};
    use proptest::prelude::*;

    fn arb_expr() -> impl Strategy<Value = TargetingExpr> {
        let leaf = prop_oneof![
            Just(TargetingExpr::Everyone),
            (1u64..12).prop_map(|a| TargetingExpr::Attr(AttributeId(a))),
            (1u64..4).prop_map(|a| TargetingExpr::InAudience(AudienceId(a))),
            (18u8..60, 0u8..30).prop_map(|(min, extra)| TargetingExpr::AgeRange {
                min,
                max: min.saturating_add(extra),
            }),
            "[0-9]{2}".prop_map(TargetingExpr::InZip),
            "[0-9]{2}".prop_map(TargetingExpr::VisitedZip),
            prop_oneof![Just("Ohio"), Just("Texas"), Just("Utah")]
                .prop_map(|s| TargetingExpr::InState(s.into())),
        ];
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..4).prop_map(TargetingExpr::And),
                prop::collection::vec(inner.clone(), 0..4).prop_map(TargetingExpr::Or),
                inner.prop_map(|e| TargetingExpr::Not(Box::new(e))),
            ]
        })
    }

    proptest! {
        /// The core soundness property: whatever the expression and
        /// whoever the user, a matching ad is always in the candidate
        /// set. (Pruning a matching ad would silently change auction
        /// outcomes; over-inclusion merely costs a filter evaluation.)
        #[test]
        fn matching_ads_are_always_candidates(
            include in arb_expr(),
            exclude in prop_oneof![Just(None), arb_expr().prop_map(Some)],
            attrs in prop::collection::vec(1u64..12, 0..6),
            zip in "[0-9]{2}",
            visited in prop::collection::vec("[0-9]{2}", 0..3),
            in_audience in prop::collection::vec(1u64..4, 0..3),
        ) {
            let spec = TargetingSpec { include, exclude };
            let mut index = TargetingIndex::new();
            index.insert(AdId(1), &spec);

            let mut profiles = ProfileStore::new();
            let u = profiles.register(33, Gender::Female, "Ohio", &zip);
            for a in attrs {
                profiles.grant_attribute(u, AttributeId(a)).expect("grant");
            }
            for z in visited {
                profiles.record_zip_visit(u, &z).expect("visit");
            }
            let mut audiences = AudienceStore::new(20, 1000, 100);
            for i in 1..4u64 {
                let aud = audiences.create_pixel_audience(
                    adsim_types::AccountId(1),
                    adsim_types::PixelId(i),
                );
                if in_audience.contains(&aud.raw()) {
                    audiences.record_pixel_visit(adsim_types::PixelId(i), u);
                }
            }

            let user = profiles.get(u).expect("user");
            if spec.matches(user, &audiences) {
                prop_assert_eq!(
                    index.candidates(user, &audiences),
                    vec![AdId(1)],
                    "index pruned an ad whose targeting matches"
                );
            }
        }
    }
}
