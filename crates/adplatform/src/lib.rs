//! A deterministic, event-driven online ad-platform simulator.
//!
//! This crate is the reproduction's stand-in for the proprietary platform
//! (Facebook in the paper's validation). Treads rely only on the platform
//! *contract*, which this simulator enforces precisely:
//!
//! 1. **Delivery iff targeting match** — a user is shown a targeted ad only
//!    if they satisfy the advertiser's targeting predicate (the property
//!    that makes a received Tread a proof about the user's own profile).
//! 2. **Aggregate-only reporting** — advertisers see impression counts,
//!    rounded reach estimates, and spend; never which users saw an ad.
//!
//! Around that contract sits everything the paper's mechanism touches:
//!
//! * [`attributes`] — the targeting-attribute catalog: 614 platform-computed
//!   attributes plus the 507 data-broker "partner categories" (the paper's
//!   early-2018 Facebook numbers), with keyword search.
//! * [`profile`] — the user store: demographics, attributes, hashed PII
//!   with provenance, page likes.
//! * [`targeting`] — boolean include/exclude targeting expressions and
//!   their evaluator.
//! * [`compiled`] — targeting specs lowered to flat short-circuit
//!   programs (bitmap probes and interned-symbol compares over a single
//!   boolean accumulator; no recursion, no strings) so the delivery hot
//!   path evaluates with zero allocation; the tree evaluator is
//!   retained as the `EvalMode::Tree` oracle.
//! * [`audience`] — saved audiences: PII-based custom audiences (with the
//!   platform's minimum-size rule), tracking-pixel visitor audiences, and
//!   page-engagement audiences; rounded reach estimation.
//! * [`pixel`] / [`pages`] — the two anonymous opt-in channels the paper
//!   describes (visiting a pixel-instrumented site; liking the provider's
//!   page).
//! * [`campaign`] — campaigns, ads, creatives, bid caps, budgets.
//! * [`clicks`] — advertiser-side click logs: what an advertiser learns
//!   about clicking users' cookies (§4), and the required disclosure back.
//! * [`dsl`] — a compact textual language for targeting expressions
//!   (`age 24-39 AND attr:'musicals' AND NOT attr:'in a relationship'`).
//! * [`auction`] — per-impression second-price auction against simulated
//!   background competition (the paper raises its bid cap 5× to win).
//! * [`index`] — the inverted targeting index: signal → candidate ads,
//!   so delivery's per-opportunity cost scales with *plausibly matching*
//!   ads instead of the whole inventory.
//! * [`delivery`] — the event loop turning browsing impressions into
//!   auctions, impressions, frequency capping, and billing.
//! * [`billing`] — CPM accounting with the small-spend waiver that makes
//!   the paper's two-user validation cost $0.
//! * [`reporting`] — advertiser-facing aggregate statistics.
//! * [`transparency`] — the platform's *own* (incomplete) transparency
//!   mechanisms: an ad-preferences page that hides partner attributes, and
//!   at-most-one-attribute ad explanations, per the findings the paper
//!   cites.
//! * [`policy`] — the ToS reviewer ("ads must not assert or imply personal
//!   attributes").
//! * [`enforcement`] — account-level detection of mass personal-attribute
//!   campaigns, for the paper's evading-shutdown discussion.
//! * [`error`] — [`PlatformError`], the fallible-API error surface
//!   (transient unavailability vs. deterministic domain rejections), used
//!   by the resilience layer's retry loops.
//! * [`state`] — [`PlatformState`], the engine-mutable slice of the
//!   platform exported for tick-boundary checkpointing.
//! * [`platform`] — the façade tying the stores together behind the
//!   advertiser- and simulation-facing API.
//!
//! The simulator is single-threaded and deterministic: all randomness comes
//! from named substreams of one experiment seed, and time is the simulated
//! clock from `adsim-types`.
//!
//! # Example
//!
//! ```
//! use adplatform::{Platform, PlatformConfig};
//! use adplatform::campaign::AdCreative;
//! use adplatform::dsl;
//! use adplatform::profile::Gender;
//! use adplatform::targeting::TargetingSpec;
//! use adsim_types::Money;
//!
//! let mut platform = Platform::us_2018(PlatformConfig::default());
//! platform.config.auction.competitor_rate = 0.0;
//!
//! // An advertiser targets salsa-interested users aged 30+.
//! let adv = platform.register_advertiser("Dance studio");
//! let account = platform.open_account(adv).unwrap();
//! let campaign = platform
//!     .create_campaign(account, "classes", Money::dollars(2), None)
//!     .unwrap();
//! let expr = dsl::parse(
//!     "age 30-120 AND attr:'Interest: salsa dancing (Music)'",
//!     &platform.attributes,
//! )
//! .unwrap();
//! let ad = platform
//!     .submit_ad(
//!         campaign,
//!         AdCreative::text("Salsa nights", "Advanced classes."),
//!         TargetingSpec::including(expr),
//!     )
//!     .unwrap();
//!
//! // Delivery contract: only a matching user receives the ad.
//! let salsa = platform.attributes.id_of("Interest: salsa dancing (Music)").unwrap();
//! let dancer = platform.register_user(34, Gender::Female, "Illinois", "60601");
//! platform.profiles.grant_attribute(dancer, salsa).unwrap();
//! let other = platform.register_user(34, Gender::Female, "Illinois", "60601");
//! platform.browse(dancer).unwrap();
//! platform.browse(other).unwrap();
//! assert_eq!(platform.log.exact_reach(ad), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attributes;
pub mod auction;
pub mod audience;
pub mod billing;
pub mod campaign;
pub mod clicks;
pub mod compiled;
pub mod delivery;
pub mod dsl;
pub mod enforcement;
pub mod error;
pub mod index;
pub mod pages;
pub mod pixel;
pub mod platform;
pub mod policy;
pub mod profile;
pub mod reporting;
pub mod state;
pub mod targeting;
pub mod transparency;

pub use attributes::{AttributeCatalog, AttributeDef, AttributeSource};
pub use audience::{Audience, AudienceKind};
pub use campaign::{Ad, AdCreative, AdStatus, Campaign};
pub use compiled::{CompiledSpec, EvalMode, ProgramArena};
pub use error::PlatformError;
pub use index::{AnchorKey, SelectionMode, TargetingIndex};
pub use platform::{Platform, PlatformConfig};
pub use profile::{Gender, PiiProvenance, ProfileFacets, UserProfile};
pub use state::PlatformState;
pub use targeting::{TargetingExpr, TargetingSpec};
