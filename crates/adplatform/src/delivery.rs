//! The delivery engine: impression opportunities → auctions → impressions.
//!
//! When a user generates an impression opportunity (by browsing — `websim`
//! produces these), the engine:
//!
//! 1. collects the **eligible** ads — approved, account active, campaign
//!    within budget, under the per-user frequency cap, and whose targeting
//!    spec matches the user (the delivery contract). Candidates come
//!    either from the [`crate::index`] inverted targeting index (the
//!    default — per-opportunity cost proportional to plausibly-matching
//!    ads) or from a linear scan of the whole store (the verification
//!    oracle); both produce identical bids;
//! 2. runs the second-price [`crate::auction`] against background
//!    competition;
//! 3. on a win, records the impression, charges billing, and bumps the
//!    frequency counter.
//!
//! The "delivery iff targeting match" property is enforced at step 1 and is
//! what makes a received Tread a proof about the recipient's own profile —
//! the integration tests assert it end-to-end.

use crate::auction::{run_auction_traced, AuctionConfig, AuctionOutcome, AuctionTrace, Bid};
use crate::audience::AudienceStore;
use crate::billing::{BillingLedger, BudgetView};
use crate::campaign::{Ad, CampaignStore};
use crate::compiled::EvalMode;
use crate::index::SelectionMode;
use crate::profile::UserProfile;
use crate::reporting::{Impression, ImpressionLog};
use adsim_types::{AccountId, AdId, CampaignId, Money, SimTime, UserId};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// Per-user frequency capping state.
#[derive(Debug, Clone, Default)]
pub struct FrequencyCaps {
    counts: HashMap<(AdId, UserId), u32>,
    /// Maximum impressions of one ad a single user is shown.
    pub cap: u32,
}

impl FrequencyCaps {
    /// Frequency caps with the given per-(ad, user) limit.
    pub fn new(cap: u32) -> Self {
        Self {
            counts: HashMap::new(),
            cap,
        }
    }

    /// True if `ad` may still be shown to `user`.
    pub fn allows(&self, ad: AdId, user: UserId) -> bool {
        self.counts.get(&(ad, user)).copied().unwrap_or(0) < self.cap
    }

    /// Records one more impression of `ad` to `user`.
    pub fn bump(&mut self, ad: AdId, user: UserId) {
        *self.counts.entry((ad, user)).or_insert(0) += 1;
    }

    /// Impressions of `ad` that `user` has seen.
    pub fn count(&self, ad: AdId, user: UserId) -> u32 {
        self.counts.get(&(ad, user)).copied().unwrap_or(0)
    }

    /// Exports every non-zero count, sorted by `(ad, user)` key.
    ///
    /// The backing map is a `HashMap`, so the sort is what makes the
    /// exported form canonical for checkpoint encoding.
    pub fn entries(&self) -> Vec<((AdId, UserId), u32)> {
        let mut entries: Vec<_> = self.counts.iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_unstable();
        entries
    }

    /// Replaces all counts with entries exported by
    /// [`FrequencyCaps::entries`]. The configured `cap` is untouched.
    pub fn restore_entries(&mut self, entries: &[((AdId, UserId), u32)]) {
        self.counts = entries.iter().copied().collect();
    }
}

/// Delivery-loop statistics (per simulation run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveryStats {
    /// Opportunities processed.
    pub opportunities: u64,
    /// Auctions won by one of our advertisers' ads.
    pub won: u64,
    /// Auctions lost to background competition.
    pub lost_to_background: u64,
    /// Opportunities with no bids above reserve.
    pub unfilled: u64,
}

/// An impression the decide phase committed to but has not yet recorded.
///
/// Produced by [`decide_opportunity`]; applied against the mutable stores
/// by [`apply_impression`]. The split is what lets the parallel engine run
/// auctions against read-only state in shard threads and fold the results
/// into billing/logs/caps in a deterministic merge order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingImpression {
    /// The winning ad.
    pub ad: AdId,
    /// Its campaign.
    pub campaign: CampaignId,
    /// Its (charged) account.
    pub account: AccountId,
    /// The user who saw it.
    pub user: UserId,
    /// When it was delivered.
    pub at: SimTime,
    /// The second-price clearing CPM.
    pub clearing_cpm: Money,
    /// Canonical digest of the winning ad's targeting spec (see
    /// [`crate::targeting::TargetingSpec::digest`]) — carried through to
    /// the impression log so delivery receipts bind each delivery to its
    /// exact targeting parameters.
    pub spec_digest: u64,
}

/// What [`decide_opportunity`] concluded for one opportunity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The auction outcome (returned to the caller / the browsing user).
    pub outcome: AuctionOutcome,
    /// The impression to record, when the outcome is a win.
    pub pending: Option<PendingImpression>,
}

/// Why ads did or did not enter one opportunity's auction — a census of
/// the eligibility filter, in filter order.
///
/// Every ad *examined* lands in exactly one bucket (the first filter
/// that rejects it, or `eligible`), so
/// `considered == not_servable + suspended + over_budget +
/// frequency_capped + targeting_mismatch + eligible`.
///
/// Under [`SelectionMode::LinearScan`] every ad in the store is
/// examined and `index_pruned` is zero. Under
/// [`SelectionMode::Indexed`] only the index's candidate set is
/// examined; the rest — ads whose targeting provably cannot match this
/// user — land in `index_pruned`, so
/// `considered + index_pruned == ad_count`. Pruning never changes the
/// bids: a pruned ad lacks a signal its include expression requires, so
/// it would have been filtered (at `targeting_mismatch` or earlier)
/// anyway.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EligibilityBreakdown {
    /// Ads examined by the filter chain (the whole store under
    /// [`SelectionMode::LinearScan`]; the index's candidate set under
    /// [`SelectionMode::Indexed`]).
    pub considered: u32,
    /// Rejected: not approved, or campaign missing.
    pub not_servable: u32,
    /// Rejected: owning account suspended.
    pub suspended: u32,
    /// Rejected: campaign budget exhausted.
    pub over_budget: u32,
    /// Rejected: per-user frequency cap reached.
    pub frequency_capped: u32,
    /// Rejected: targeting spec does not match this user.
    pub targeting_mismatch: u32,
    /// Survived every filter and entered a bid.
    pub eligible: u32,
    /// Skipped without examination: the inverted index proved the ad's
    /// targeting cannot match this user. Always zero under
    /// [`SelectionMode::LinearScan`].
    pub index_pruned: u32,
    /// Targeting checks answered by a [`crate::compiled::CompiledSpec`]
    /// program rather than the expression tree. Not a filter bucket (it
    /// overlaps `targeting_mismatch`/`eligible`); zero under
    /// [`EvalMode::Tree`].
    pub compiled_evals: u32,
}

/// Reusable per-opportunity working memory for the delivery hot path.
///
/// One opportunity needs two growable buffers: the index's candidate
/// list and the surviving bid list. Allocating them per auction made the
/// allocator a measurable slice of the auction phase; instead each
/// engine shard owns one `DeliveryScratch` and threads it through
/// [`decide_opportunity_traced_with_scratch`], so after the first few
/// opportunities the buffers reach their high-water capacity and the
/// steady state allocates nothing. (Compiled targeting evaluation needs
/// no buffer at all — a [`crate::compiled::CompiledSpec`] runs on a
/// single boolean accumulator.)
///
/// The buffers carry no data between calls — every use clears before
/// filling — so a fresh scratch always produces identical results.
#[derive(Debug, Clone, Default)]
pub struct DeliveryScratch {
    /// Candidate ad ids from the index (or unused under linear scan).
    candidates: Vec<AdId>,
    /// Bids that survived the eligibility filter chain.
    bids: Vec<Bid>,
}

impl DeliveryScratch {
    /// Empty scratch; buffers grow to their steady-state size on use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Collects the bids eligible for an opportunity shown to `user`.
///
/// Eligibility = ad approved ∧ owning account active ∧ campaign within
/// budget ∧ frequency cap allows ∧ targeting spec matches the user.
/// Budget state is read through [`BudgetView`], so the check runs equally
/// against the live ledger or a tick-start snapshot.
pub fn eligible_bids<B: BudgetView>(
    user: &UserProfile,
    campaigns: &CampaignStore,
    audiences: &AudienceStore,
    suspended: &BTreeSet<AccountId>,
    billing: &B,
    freq: &FrequencyCaps,
) -> Vec<Bid> {
    eligible_bids_traced(user, campaigns, audiences, suspended, billing, freq).0
}

/// [`eligible_bids`] plus the [`EligibilityBreakdown`] saying where every
/// non-eligible ad was filtered out. The filter logic is shared — the
/// traced and untraced forms can never disagree.
///
/// Allocates a throwaway [`DeliveryScratch`]; hot callers use
/// [`eligible_bids_traced_into`] with a reused one instead.
pub fn eligible_bids_traced<B: BudgetView>(
    user: &UserProfile,
    campaigns: &CampaignStore,
    audiences: &AudienceStore,
    suspended: &BTreeSet<AccountId>,
    billing: &B,
    freq: &FrequencyCaps,
) -> (Vec<Bid>, EligibilityBreakdown) {
    let mut scratch = DeliveryScratch::new();
    let breakdown = eligible_bids_traced_into(
        user,
        campaigns,
        audiences,
        suspended,
        billing,
        freq,
        &mut scratch,
    );
    (scratch.bids, breakdown)
}

/// The allocation-free form of [`eligible_bids_traced`]: fills
/// `scratch.bids` (cleared first) instead of returning a fresh vector
/// and reuses `scratch.candidates` for the index probe.
#[allow(clippy::too_many_arguments)]
pub fn eligible_bids_traced_into<B: BudgetView>(
    user: &UserProfile,
    campaigns: &CampaignStore,
    audiences: &AudienceStore,
    suspended: &BTreeSet<AccountId>,
    billing: &B,
    freq: &FrequencyCaps,
    scratch: &mut DeliveryScratch,
) -> EligibilityBreakdown {
    let DeliveryScratch { candidates, bids } = scratch;
    bids.clear();
    let mut breakdown = EligibilityBreakdown::default();
    let eval = campaigns.eval_mode();
    match campaigns.selection_mode() {
        SelectionMode::LinearScan => {
            for ad in campaigns.ads() {
                consider_ad(
                    ad,
                    user,
                    campaigns,
                    audiences,
                    suspended,
                    billing,
                    freq,
                    eval,
                    bids,
                    &mut breakdown,
                );
            }
        }
        SelectionMode::Indexed => {
            // Candidates come back in ascending ad-id order — the same
            // order `campaigns.ads()` iterates — and are a superset of
            // the targeting-matching ads, so the surviving bid vector is
            // identical to the linear scan's.
            campaigns
                .index()
                .candidates_into(user, audiences, candidates);
            breakdown.index_pruned = (campaigns.ad_count() - candidates.len()) as u32;
            for id in candidates.iter() {
                let ad = campaigns.ad(*id).expect("indexed ads exist in the store");
                consider_ad(
                    ad,
                    user,
                    campaigns,
                    audiences,
                    suspended,
                    billing,
                    freq,
                    eval,
                    bids,
                    &mut breakdown,
                );
            }
        }
    }
    breakdown
}

/// Runs one ad through the eligibility filter chain, pushing a bid if it
/// survives and bucketing it in the breakdown either way. Shared by both
/// selection modes so they can never disagree on filter semantics; the
/// targeting check dispatches on [`EvalMode`] — compiled program or tree
/// oracle — which agree on every (user, spec) pair by construction.
#[allow(clippy::too_many_arguments)]
fn consider_ad<B: BudgetView>(
    ad: &Ad,
    user: &UserProfile,
    campaigns: &CampaignStore,
    audiences: &AudienceStore,
    suspended: &BTreeSet<AccountId>,
    billing: &B,
    freq: &FrequencyCaps,
    eval: EvalMode,
    bids: &mut Vec<Bid>,
    breakdown: &mut EligibilityBreakdown,
) {
    breakdown.considered += 1;
    if !ad.is_servable() {
        breakdown.not_servable += 1;
        return;
    }
    // Targeting runs before the campaign/budget/frequency probes: it
    // rejects the overwhelming majority of ads, needs nothing but the ad
    // and the user, and under compiled evaluation costs a handful of
    // integer compares — so every non-targeted ad skips three map
    // lookups. The surviving filters are order-independent (the bid set
    // is those passing all of them), only the breakdown's
    // first-failing-filter attribution shifts.
    let targeted = match eval {
        EvalMode::Tree => ad.targeting.matches(user, audiences),
        EvalMode::Compiled => match campaigns.compiled_matches(ad.id, user, audiences) {
            Some(hit) => {
                breakdown.compiled_evals += 1;
                hit
            }
            // Every ad created through the store has a program; this arm
            // only covers hand-assembled test stores.
            None => ad.targeting.matches(user, audiences),
        },
    };
    if !targeted {
        breakdown.targeting_mismatch += 1;
        return;
    }
    let campaign = match campaigns.campaign(ad.campaign) {
        Ok(c) => c,
        Err(_) => {
            breakdown.not_servable += 1;
            return;
        }
    };
    if suspended.contains(&campaign.account) {
        breakdown.suspended += 1;
        return;
    }
    if !billing.within_budget(campaign.id, campaign.budget) {
        breakdown.over_budget += 1;
        return;
    }
    if !freq.allows(ad.id, user.id) {
        breakdown.frequency_capped += 1;
        return;
    }
    breakdown.eligible += 1;
    bids.push(Bid {
        ad: ad.id,
        cpm: campaign.bid_cpm,
    });
}

/// The filter chain's verdict for one examined ad — the per-candidate
/// counterpart of the [`EligibilityBreakdown`] census. Produced by
/// [`candidate_verdicts`] for provenance traces and the `explain_delivery`
/// transparency report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateVerdict {
    /// The examined ad.
    pub ad: AdId,
    /// The bucket the ad landed in: the [`EligibilityBreakdown`] field
    /// name of the first filter that rejected it, or `"eligible"`.
    pub verdict: &'static str,
    /// The bid the ad entered (its campaign's bid CPM when eligible,
    /// [`Money::ZERO`] otherwise).
    pub bid_cpm: Money,
}

/// Mirror of [`consider_ad`]'s filter chain that reports *which* bucket an
/// ad lands in instead of counting it. The two must stay in lockstep —
/// the census-agreement test pins them together.
#[allow(clippy::too_many_arguments)]
fn verdict_for<B: BudgetView>(
    ad: &Ad,
    user: &UserProfile,
    campaigns: &CampaignStore,
    audiences: &AudienceStore,
    suspended: &BTreeSet<AccountId>,
    billing: &B,
    freq: &FrequencyCaps,
    eval: EvalMode,
) -> CandidateVerdict {
    let reject = |verdict| CandidateVerdict {
        ad: ad.id,
        verdict,
        bid_cpm: Money::ZERO,
    };
    if !ad.is_servable() {
        return reject("not_servable");
    }
    let targeted = match eval {
        EvalMode::Tree => ad.targeting.matches(user, audiences),
        EvalMode::Compiled => campaigns
            .compiled_matches(ad.id, user, audiences)
            .unwrap_or_else(|| ad.targeting.matches(user, audiences)),
    };
    if !targeted {
        return reject("targeting_mismatch");
    }
    let campaign = match campaigns.campaign(ad.campaign) {
        Ok(c) => c,
        Err(_) => return reject("not_servable"),
    };
    if suspended.contains(&campaign.account) {
        return reject("suspended");
    }
    if !billing.within_budget(campaign.id, campaign.budget) {
        return reject("over_budget");
    }
    if !freq.allows(ad.id, user.id) {
        return reject("frequency_capped");
    }
    CandidateVerdict {
        ad: ad.id,
        verdict: "eligible",
        bid_cpm: campaign.bid_cpm,
    }
}

/// Re-derives the per-ad filter verdicts for one opportunity: the same
/// examined set (index candidates or full scan), the same filter order,
/// the same budget view as [`eligible_bids_traced_into`], but reported
/// per candidate in ascending ad-id order. RNG-free and read-only, so
/// trace builders can call it for sampled requests only without
/// perturbing anything — the decision path never depends on it.
pub fn candidate_verdicts<B: BudgetView>(
    user: &UserProfile,
    campaigns: &CampaignStore,
    audiences: &AudienceStore,
    suspended: &BTreeSet<AccountId>,
    billing: &B,
    freq: &FrequencyCaps,
) -> Vec<CandidateVerdict> {
    let eval = campaigns.eval_mode();
    let examine = |ad: &Ad| {
        verdict_for(
            ad, user, campaigns, audiences, suspended, billing, freq, eval,
        )
    };
    match campaigns.selection_mode() {
        SelectionMode::LinearScan => campaigns.ads().map(examine).collect(),
        SelectionMode::Indexed => {
            let mut candidates = Vec::new();
            campaigns
                .index()
                .candidates_into(user, audiences, &mut candidates);
            candidates
                .iter()
                .map(|id| examine(campaigns.ad(*id).expect("indexed ads exist in the store")))
                .collect()
        }
    }
}

/// A [`Decision`] together with the telemetry the decide phase produced
/// along the way: the eligibility census and the auction trace. Returned
/// by [`decide_opportunity_traced`]; the engine forwards the extras to its
/// metrics registry and flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracedDecision {
    /// The decision itself (what [`decide_opportunity`] returns).
    pub decision: Decision,
    /// Where every considered ad was filtered (or not).
    pub breakdown: EligibilityBreakdown,
    /// The competitive environment of the auction.
    pub auction: AuctionTrace,
}

/// The **decide** half of opportunity handling: eligibility + auction,
/// reading budget, frequency, and audience state without mutating any of
/// it. On a win the returned [`Decision`] carries the fully-resolved
/// [`PendingImpression`]; nothing is charged or logged until
/// [`apply_impression`] runs.
#[allow(clippy::too_many_arguments)]
pub fn decide_opportunity<B: BudgetView, R: Rng>(
    user: &UserProfile,
    at: SimTime,
    campaigns: &CampaignStore,
    audiences: &AudienceStore,
    suspended: &BTreeSet<AccountId>,
    billing: &B,
    freq: &FrequencyCaps,
    auction_cfg: &AuctionConfig,
    rng: &mut R,
) -> Decision {
    decide_opportunity_traced(
        user,
        at,
        campaigns,
        audiences,
        suspended,
        billing,
        freq,
        auction_cfg,
        rng,
    )
    .decision
}

/// [`decide_opportunity`] with full tracing. Same filters, same auction,
/// same RNG consumption — the traced form is the implementation and the
/// untraced form discards the extras. Allocates a throwaway
/// [`DeliveryScratch`]; hot callers use
/// [`decide_opportunity_traced_with_scratch`] with a reused one.
#[allow(clippy::too_many_arguments)]
pub fn decide_opportunity_traced<B: BudgetView, R: Rng>(
    user: &UserProfile,
    at: SimTime,
    campaigns: &CampaignStore,
    audiences: &AudienceStore,
    suspended: &BTreeSet<AccountId>,
    billing: &B,
    freq: &FrequencyCaps,
    auction_cfg: &AuctionConfig,
    rng: &mut R,
) -> TracedDecision {
    let mut scratch = DeliveryScratch::new();
    decide_opportunity_traced_with_scratch(
        user,
        at,
        campaigns,
        audiences,
        suspended,
        billing,
        freq,
        auction_cfg,
        rng,
        &mut scratch,
    )
}

/// The allocation-free form of [`decide_opportunity_traced`]: all working
/// memory comes from `scratch`, which the caller keeps across
/// opportunities. This is the engine shard's entry point — one scratch
/// per shard makes the steady-state decide phase allocation-free.
#[allow(clippy::too_many_arguments)]
pub fn decide_opportunity_traced_with_scratch<B: BudgetView, R: Rng>(
    user: &UserProfile,
    at: SimTime,
    campaigns: &CampaignStore,
    audiences: &AudienceStore,
    suspended: &BTreeSet<AccountId>,
    billing: &B,
    freq: &FrequencyCaps,
    auction_cfg: &AuctionConfig,
    rng: &mut R,
    scratch: &mut DeliveryScratch,
) -> TracedDecision {
    let breakdown = eligible_bids_traced_into(
        user, campaigns, audiences, suspended, billing, freq, scratch,
    );
    let (outcome, auction) = run_auction_traced(&scratch.bids, auction_cfg, rng);
    let pending = match outcome {
        AuctionOutcome::Won { ad, clearing_cpm } => {
            // The ad and campaign must exist: they produced a bid above.
            let campaign = campaigns
                .ad(ad)
                .and_then(|a| campaigns.campaign(a.campaign))
                .expect("winning ad resolves");
            Some(PendingImpression {
                ad,
                campaign: campaign.id,
                account: campaign.account,
                user: user.id,
                at,
                clearing_cpm,
                spec_digest: campaigns.spec_digest(ad).unwrap_or(0),
            })
        }
        AuctionOutcome::LostToBackground | AuctionOutcome::Unfilled => None,
    };
    TracedDecision {
        decision: Decision { outcome, pending },
        breakdown,
        auction,
    }
}

/// The **apply** half: charges billing, bumps the frequency counter, and
/// records the impression. Returns the per-impression price charged.
pub fn apply_impression(
    pending: &PendingImpression,
    billing: &mut BillingLedger,
    freq: &mut FrequencyCaps,
    log: &mut ImpressionLog,
) -> Money {
    let price = billing.charge_impression(
        pending.account,
        pending.campaign,
        pending.ad,
        pending.clearing_cpm,
    );
    freq.bump(pending.ad, pending.user);
    log.record(Impression {
        ad: pending.ad,
        campaign: pending.campaign,
        account: pending.account,
        user: pending.user,
        at: pending.at,
        price,
        spec_digest: pending.spec_digest,
    });
    price
}

/// Processes one impression opportunity end to end (decide + apply
/// immediately, against live state). Returns the auction outcome (the
/// caller can ignore it; all bookkeeping is done here).
#[allow(clippy::too_many_arguments)]
pub fn handle_opportunity<R: Rng>(
    user: &UserProfile,
    at: SimTime,
    campaigns: &CampaignStore,
    audiences: &AudienceStore,
    suspended: &BTreeSet<AccountId>,
    billing: &mut BillingLedger,
    freq: &mut FrequencyCaps,
    log: &mut ImpressionLog,
    stats: &mut DeliveryStats,
    auction_cfg: &AuctionConfig,
    rng: &mut R,
) -> AuctionOutcome {
    stats.opportunities += 1;
    let decision = decide_opportunity(
        user,
        at,
        campaigns,
        audiences,
        suspended,
        &*billing,
        freq,
        auction_cfg,
        rng,
    );
    match decision.outcome {
        AuctionOutcome::Won { .. } => {
            stats.won += 1;
            let pending = decision.pending.expect("win carries an impression");
            apply_impression(&pending, billing, freq, log);
        }
        AuctionOutcome::LostToBackground => stats.lost_to_background += 1,
        AuctionOutcome::Unfilled => stats.unfilled += 1,
    }
    decision.outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{AdCreative, AdStatus};
    use crate::profile::{Gender, ProfileStore};
    use crate::targeting::{TargetingExpr, TargetingSpec};
    use adsim_types::rng::substream;
    use adsim_types::{AttributeId, Money};
    use rand::rngs::StdRng;

    struct Rig {
        profiles: ProfileStore,
        campaigns: CampaignStore,
        audiences: AudienceStore,
        billing: BillingLedger,
        freq: FrequencyCaps,
        log: ImpressionLog,
        stats: DeliveryStats,
        suspended: BTreeSet<AccountId>,
        cfg: AuctionConfig,
        rng: StdRng,
    }

    fn rig() -> Rig {
        Rig {
            profiles: ProfileStore::new(),
            campaigns: CampaignStore::new(),
            audiences: AudienceStore::new(20, 1000, 100),
            billing: BillingLedger::new(Money::ZERO),
            freq: FrequencyCaps::new(2),
            log: ImpressionLog::new(),
            stats: DeliveryStats::default(),
            suspended: BTreeSet::new(),
            // No background competition → deterministic outcomes.
            cfg: AuctionConfig {
                competitor_rate: 0.0,
                ..AuctionConfig::default()
            },
            rng: substream(1, "delivery-test"),
        }
    }

    fn approved_ad(r: &mut Rig, account: u64, bid: Money, targeting: TargetingSpec) -> AdId {
        let camp = r
            .campaigns
            .create_campaign(AccountId(account), "c", bid, None);
        let ad = r
            .campaigns
            .create_ad(
                camp,
                AdCreative::text("h", "b"),
                targeting,
                r.profiles.symbols_mut(),
            )
            .expect("ad");
        r.campaigns.ad_mut(ad).expect("ad").status = AdStatus::Approved;
        ad
    }

    fn drive(r: &mut Rig, user: UserId, at: u64) -> AuctionOutcome {
        let profile = r.profiles.get(user).expect("user").clone();
        handle_opportunity(
            &profile,
            SimTime(at),
            &r.campaigns,
            &r.audiences,
            &r.suspended,
            &mut r.billing,
            &mut r.freq,
            &mut r.log,
            &mut r.stats,
            &r.cfg,
            &mut r.rng,
        )
    }

    #[test]
    fn targeted_ad_delivers_only_to_matching_users() {
        let mut r = rig();
        let matching = r.profiles.register(30, Gender::Female, "Ohio", "43004");
        let other = r.profiles.register(30, Gender::Female, "Ohio", "43004");
        r.profiles
            .grant_attribute(matching, AttributeId(1))
            .expect("grant");
        approved_ad(
            &mut r,
            1,
            Money::dollars(10),
            TargetingSpec::including(TargetingExpr::Attr(AttributeId(1))),
        );
        assert!(matches!(
            drive(&mut r, matching, 0),
            AuctionOutcome::Won { .. }
        ));
        assert!(matches!(drive(&mut r, other, 1), AuctionOutcome::Unfilled));
        // The impression log shows only the matching user.
        assert_eq!(r.log.len(), 1);
        assert_eq!(r.log.all()[0].user, matching);
    }

    #[test]
    fn frequency_cap_limits_repeats() {
        let mut r = rig();
        let user = r.profiles.register(25, Gender::Male, "Texas", "73301");
        approved_ad(
            &mut r,
            1,
            Money::dollars(10),
            TargetingSpec::including(TargetingExpr::Everyone),
        );
        // Cap is 2: third opportunity goes unfilled.
        assert!(matches!(drive(&mut r, user, 0), AuctionOutcome::Won { .. }));
        assert!(matches!(drive(&mut r, user, 1), AuctionOutcome::Won { .. }));
        assert!(matches!(drive(&mut r, user, 2), AuctionOutcome::Unfilled));
        assert_eq!(r.freq.count(AdId(1), user), 2);
    }

    #[test]
    fn budget_exhaustion_stops_delivery() {
        let mut r = rig();
        r.freq = FrequencyCaps::new(100);
        let user = r.profiles.register(25, Gender::Male, "Texas", "73301");
        let camp = r.campaigns.create_campaign(
            AccountId(1),
            "c",
            Money::dollars(10),
            // Budget of one impression at the reserve price (10¢ CPM →
            // $0.0001/imp)… use $0.0001 so a single impression exhausts it.
            Some(Money::micros(100)),
        );
        let ad = r
            .campaigns
            .create_ad(
                camp,
                AdCreative::text("h", "b"),
                TargetingSpec::including(TargetingExpr::Everyone),
                r.profiles.symbols_mut(),
            )
            .expect("ad");
        r.campaigns.ad_mut(ad).expect("ad").status = AdStatus::Approved;
        assert!(matches!(drive(&mut r, user, 0), AuctionOutcome::Won { .. }));
        // Clearing at reserve (10¢ CPM) charges $0.0001, hitting the budget.
        assert!(matches!(drive(&mut r, user, 1), AuctionOutcome::Unfilled));
        assert_eq!(r.stats.won, 1);
        assert_eq!(r.stats.unfilled, 1);
    }

    #[test]
    fn suspended_accounts_do_not_serve() {
        let mut r = rig();
        let user = r.profiles.register(25, Gender::Male, "Texas", "73301");
        approved_ad(
            &mut r,
            1,
            Money::dollars(10),
            TargetingSpec::including(TargetingExpr::Everyone),
        );
        r.suspended.insert(AccountId(1));
        assert!(matches!(drive(&mut r, user, 0), AuctionOutcome::Unfilled));
    }

    #[test]
    fn unapproved_ads_do_not_serve() {
        let mut r = rig();
        let user = r.profiles.register(25, Gender::Male, "Texas", "73301");
        let camp = r
            .campaigns
            .create_campaign(AccountId(1), "c", Money::dollars(10), None);
        r.campaigns
            .create_ad(
                camp,
                AdCreative::text("h", "b"),
                TargetingSpec::including(TargetingExpr::Everyone),
                r.profiles.symbols_mut(),
            )
            .expect("ad");
        // Still PendingReview.
        assert!(matches!(drive(&mut r, user, 0), AuctionOutcome::Unfilled));
    }

    #[test]
    fn highest_bidder_wins_and_pays_second_price() {
        let mut r = rig();
        let user = r.profiles.register(25, Gender::Male, "Texas", "73301");
        let everyone = TargetingSpec::including(TargetingExpr::Everyone);
        approved_ad(&mut r, 1, Money::dollars(2), everyone.clone());
        let high = approved_ad(&mut r, 2, Money::dollars(10), everyone);
        match drive(&mut r, user, 0) {
            AuctionOutcome::Won { ad, clearing_cpm } => {
                assert_eq!(ad, high);
                assert_eq!(clearing_cpm, Money::dollars(2));
            }
            other => panic!("expected win, got {other:?}"),
        }
        // Billing charged $2 CPM / 1000 = $0.002 to account 2.
        assert_eq!(r.billing.account_spend(AccountId(2)), Money::micros(2_000));
        assert_eq!(r.billing.account_spend(AccountId(1)), Money::ZERO);
    }

    #[test]
    fn eligibility_breakdown_buckets_every_ad_once() {
        let mut r = rig();
        // Linear-scan semantics: every ad in the store is examined.
        r.campaigns.set_selection_mode(SelectionMode::LinearScan);
        let user = r.profiles.register(25, Gender::Male, "Texas", "73301");
        let everyone = TargetingSpec::including(TargetingExpr::Everyone);
        // One eligible, one suspended, one frequency-capped, one with a
        // non-matching targeting spec, one unapproved.
        approved_ad(&mut r, 1, Money::dollars(10), everyone.clone());
        approved_ad(&mut r, 2, Money::dollars(5), everyone.clone());
        r.suspended.insert(AccountId(2));
        let capped = approved_ad(&mut r, 3, Money::dollars(5), everyone.clone());
        r.freq.bump(capped, user);
        r.freq.bump(capped, user);
        approved_ad(
            &mut r,
            4,
            Money::dollars(5),
            TargetingSpec::including(TargetingExpr::Attr(AttributeId(99))),
        );
        let camp = r
            .campaigns
            .create_campaign(AccountId(5), "c", Money::dollars(5), None);
        r.campaigns
            .create_ad(
                camp,
                AdCreative::text("h", "b"),
                everyone,
                r.profiles.symbols_mut(),
            )
            .expect("ad"); // stays PendingReview

        let profile = r.profiles.get(user).expect("user").clone();
        let (bids, b) = eligible_bids_traced(
            &profile,
            &r.campaigns,
            &r.audiences,
            &r.suspended,
            &r.billing,
            &r.freq,
        );
        assert_eq!(bids.len(), 1);
        assert_eq!(b.considered, 5);
        assert_eq!(b.not_servable, 1);
        assert_eq!(b.suspended, 1);
        assert_eq!(b.frequency_capped, 1);
        assert_eq!(b.targeting_mismatch, 1);
        assert_eq!(b.eligible, 1);
        assert_eq!(
            b.considered,
            b.not_servable
                + b.suspended
                + b.over_budget
                + b.frequency_capped
                + b.targeting_mismatch
                + b.eligible
        );

        // The traced decision agrees with the untraced one.
        let mut rng_a = substream(77, "delivery-traced");
        let mut rng_b = substream(77, "delivery-traced");
        let traced = decide_opportunity_traced(
            &profile,
            SimTime(0),
            &r.campaigns,
            &r.audiences,
            &r.suspended,
            &r.billing,
            &r.freq,
            &r.cfg,
            &mut rng_a,
        );
        let plain = decide_opportunity(
            &profile,
            SimTime(0),
            &r.campaigns,
            &r.audiences,
            &r.suspended,
            &r.billing,
            &r.freq,
            &r.cfg,
            &mut rng_b,
        );
        assert_eq!(traced.decision, plain);
        assert_eq!(traced.breakdown, b);
        assert_eq!(traced.auction.advertiser_bids, 1);
    }

    #[test]
    fn candidate_verdicts_agree_with_the_breakdown_census() {
        let mut r = rig();
        r.campaigns.set_selection_mode(SelectionMode::LinearScan);
        let user = r.profiles.register(25, Gender::Male, "Texas", "73301");
        let everyone = TargetingSpec::including(TargetingExpr::Everyone);
        let winner = approved_ad(&mut r, 1, Money::dollars(10), everyone.clone());
        approved_ad(&mut r, 2, Money::dollars(5), everyone.clone());
        r.suspended.insert(AccountId(2));
        let capped = approved_ad(&mut r, 3, Money::dollars(5), everyone);
        r.freq.bump(capped, user);
        r.freq.bump(capped, user);
        approved_ad(
            &mut r,
            4,
            Money::dollars(5),
            TargetingSpec::including(TargetingExpr::Attr(AttributeId(99))),
        );

        let profile = r.profiles.get(user).expect("user").clone();
        let verdicts = candidate_verdicts(
            &profile,
            &r.campaigns,
            &r.audiences,
            &r.suspended,
            &r.billing,
            &r.freq,
        );
        let (_, b) = eligible_bids_traced(
            &profile,
            &r.campaigns,
            &r.audiences,
            &r.suspended,
            &r.billing,
            &r.freq,
        );
        let count = |label| verdicts.iter().filter(|v| v.verdict == label).count() as u32;
        assert_eq!(verdicts.len() as u32, b.considered);
        assert_eq!(count("eligible"), b.eligible);
        assert_eq!(count("suspended"), b.suspended);
        assert_eq!(count("frequency_capped"), b.frequency_capped);
        assert_eq!(count("targeting_mismatch"), b.targeting_mismatch);
        assert_eq!(count("over_budget"), b.over_budget);
        let won = verdicts.iter().find(|v| v.ad == winner).expect("winner");
        assert_eq!(won.verdict, "eligible");
        assert_eq!(won.bid_cpm, Money::dollars(10));

        // The indexed examined set gets the same verdicts for every ad it
        // keeps (it only drops provably-mismatching ones).
        r.campaigns.set_selection_mode(SelectionMode::Indexed);
        let indexed = candidate_verdicts(
            &profile,
            &r.campaigns,
            &r.audiences,
            &r.suspended,
            &r.billing,
            &r.freq,
        );
        for v in &indexed {
            let scan = verdicts.iter().find(|s| s.ad == v.ad).expect("examined");
            assert_eq!(scan, v);
        }
    }

    #[test]
    fn indexed_selection_prunes_without_changing_bids() {
        let mut r = rig();
        let user = r.profiles.register(25, Gender::Male, "Texas", "73301");
        let everyone = TargetingSpec::including(TargetingExpr::Everyone);
        approved_ad(&mut r, 1, Money::dollars(10), everyone.clone());
        approved_ad(&mut r, 2, Money::dollars(5), everyone);
        // Anchored on an attribute the user lacks: the index proves it
        // cannot match and never hands it to the filter chain.
        approved_ad(
            &mut r,
            3,
            Money::dollars(5),
            TargetingSpec::including(TargetingExpr::Attr(AttributeId(99))),
        );
        let profile = r.profiles.get(user).expect("user").clone();

        assert_eq!(r.campaigns.selection_mode(), SelectionMode::Indexed);
        let (indexed_bids, ib) = eligible_bids_traced(
            &profile,
            &r.campaigns,
            &r.audiences,
            &r.suspended,
            &r.billing,
            &r.freq,
        );
        assert_eq!(ib.considered, 2);
        assert_eq!(ib.index_pruned, 1);
        assert_eq!(ib.targeting_mismatch, 0);
        assert_eq!(
            ib.considered + ib.index_pruned,
            r.campaigns.ad_count() as u32
        );

        r.campaigns.set_selection_mode(SelectionMode::LinearScan);
        let (scanned_bids, sb) = eligible_bids_traced(
            &profile,
            &r.campaigns,
            &r.audiences,
            &r.suspended,
            &r.billing,
            &r.freq,
        );
        // The modes disagree only on what was examined, never on bids.
        assert_eq!(indexed_bids, scanned_bids);
        assert_eq!(sb.considered, 3);
        assert_eq!(sb.index_pruned, 0);
        assert_eq!(sb.targeting_mismatch, 1);
        assert_eq!(ib.eligible, sb.eligible);
    }

    #[test]
    fn eval_modes_agree_on_bids() {
        let mut r = rig();
        let user = r.profiles.register(25, Gender::Male, "Texas", "73301");
        r.profiles
            .grant_attribute(user, AttributeId(7))
            .expect("grant");
        approved_ad(
            &mut r,
            1,
            Money::dollars(10),
            TargetingSpec::including(TargetingExpr::And(vec![
                TargetingExpr::Attr(AttributeId(7)),
                TargetingExpr::InState("Texas".into()),
            ])),
        );
        // Anchored on a ZIP the user has never touched: index-pruned.
        approved_ad(
            &mut r,
            2,
            Money::dollars(5),
            TargetingSpec::including(TargetingExpr::InZip("99999".into())),
        );
        let profile = r.profiles.get(user).expect("user").clone();

        assert_eq!(r.campaigns.eval_mode(), EvalMode::Compiled);
        let (compiled_bids, cb) = eligible_bids_traced(
            &profile,
            &r.campaigns,
            &r.audiences,
            &r.suspended,
            &r.billing,
            &r.freq,
        );
        assert_eq!(cb.compiled_evals, 1);
        assert_eq!(cb.eligible, 1);

        r.campaigns.set_eval_mode(EvalMode::Tree);
        let (tree_bids, tb) = eligible_bids_traced(
            &profile,
            &r.campaigns,
            &r.audiences,
            &r.suspended,
            &r.billing,
            &r.freq,
        );
        // The modes agree on every bid and differ only in how the
        // targeting check was answered.
        assert_eq!(compiled_bids, tree_bids);
        assert_eq!(tb.compiled_evals, 0);
        assert_eq!(tb.eligible, cb.eligible);
    }

    #[test]
    fn scratch_reuse_is_observationally_pure() {
        let mut r = rig();
        let user = r.profiles.register(25, Gender::Male, "Texas", "73301");
        approved_ad(
            &mut r,
            1,
            Money::dollars(10),
            TargetingSpec::including(TargetingExpr::Everyone),
        );
        let profile = r.profiles.get(user).expect("user").clone();
        let mut scratch = DeliveryScratch::new();
        let mut rng_a = substream(5, "scratch");
        let mut rng_b = substream(5, "scratch");
        // Same scratch across calls vs. a fresh one each call.
        let first = decide_opportunity_traced_with_scratch(
            &profile,
            SimTime(0),
            &r.campaigns,
            &r.audiences,
            &r.suspended,
            &r.billing,
            &r.freq,
            &r.cfg,
            &mut rng_a,
            &mut scratch,
        );
        let second = decide_opportunity_traced_with_scratch(
            &profile,
            SimTime(1),
            &r.campaigns,
            &r.audiences,
            &r.suspended,
            &r.billing,
            &r.freq,
            &r.cfg,
            &mut rng_a,
            &mut scratch,
        );
        let fresh_first = decide_opportunity_traced(
            &profile,
            SimTime(0),
            &r.campaigns,
            &r.audiences,
            &r.suspended,
            &r.billing,
            &r.freq,
            &r.cfg,
            &mut rng_b,
        );
        let fresh_second = decide_opportunity_traced(
            &profile,
            SimTime(1),
            &r.campaigns,
            &r.audiences,
            &r.suspended,
            &r.billing,
            &r.freq,
            &r.cfg,
            &mut rng_b,
        );
        assert_eq!(first, fresh_first);
        assert_eq!(second, fresh_second);
    }

    #[test]
    fn stats_accumulate() {
        let mut r = rig();
        let user = r.profiles.register(25, Gender::Male, "Texas", "73301");
        approved_ad(
            &mut r,
            1,
            Money::dollars(10),
            TargetingSpec::including(TargetingExpr::Everyone),
        );
        drive(&mut r, user, 0);
        drive(&mut r, user, 1);
        drive(&mut r, user, 2); // frequency-capped → unfilled
        assert_eq!(r.stats.opportunities, 3);
        assert_eq!(r.stats.won, 2);
        assert_eq!(r.stats.unfilled, 1);
    }
}
