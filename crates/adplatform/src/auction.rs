//! The per-impression ad auction.
//!
//! Each impression opportunity runs a sealed-bid **second-price auction**
//! among the eligible advertiser ads and simulated background competition.
//! The winner pays the second-highest bid (floored at the reserve), per
//! thousand impressions — standard display-auction mechanics.
//!
//! Background competition is why the paper raises its bid cap to $10 CPM,
//! "five times its default value of $2 CPM for U.S. users, to increase the
//! chances of these ads winning the ad auction": competitor bids are drawn
//! from a log-normal CPM distribution with median near the platform's
//! recommended bid, so a $2 bid wins roughly half its auctions against a
//! single competitor while a $10 bid almost always wins. The
//! `delivery_rate_vs_bid` bench sweeps exactly this curve.

use adsim_types::{AdId, Money};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Auction environment parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuctionConfig {
    /// Reserve price: the minimum clearing CPM.
    pub reserve_cpm: Money,
    /// Mean number of background competitors per opportunity
    /// (Poisson-distributed).
    pub competitor_rate: f64,
    /// Median of the log-normal background-competitor CPM distribution.
    pub competitor_cpm_median: Money,
    /// Log-space standard deviation of the competitor CPM distribution.
    pub competitor_sigma: f64,
}

impl Default for AuctionConfig {
    /// Defaults matched to the paper's numbers: a $2 CPM recommended bid
    /// environment with moderate competition.
    fn default() -> Self {
        Self {
            reserve_cpm: Money::cents(10),
            competitor_rate: 1.0,
            competitor_cpm_median: Money::dollars(2),
            competitor_sigma: 0.5,
        }
    }
}

/// A bid entered by one of our advertiser ads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bid {
    /// The bidding ad.
    pub ad: AdId,
    /// Its bid cap as CPM.
    pub cpm: Money,
}

/// Result of one auction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuctionOutcome {
    /// One of our advertiser ads won; it pays `clearing_cpm` per mille.
    Won {
        /// The winning ad.
        ad: AdId,
        /// Second-price clearing CPM (≥ reserve).
        clearing_cpm: Money,
    },
    /// A background competitor outbid every advertiser ad (the user sees
    /// some unrelated ad).
    LostToBackground,
    /// Nobody bid above the reserve; the slot goes unfilled.
    Unfilled,
}

/// How one auction unfolded — the observability counterpart of
/// [`AuctionOutcome`].
///
/// Produced by [`run_auction_traced`] from exactly the same computation
/// (and RNG draws) as [`run_auction`]; callers that don't need the trace
/// pay nothing extra by using the untraced form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuctionTrace {
    /// Advertiser bids that entered the auction.
    pub advertiser_bids: u32,
    /// Background competitors sampled for this opportunity.
    pub background_competitors: u32,
    /// The strongest background CPM (zero when no competitor bid).
    pub best_background_cpm: Money,
}

/// Samples a log-normal value with the given median and log-space sigma,
/// via the Box–Muller transform (no external distribution crate).
fn sample_lognormal<R: Rng>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    // Box–Muller: two uniforms → one standard normal.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    median * (sigma * z).exp()
}

/// Runs one second-price auction.
///
/// `bids` are the eligible advertiser ads (already filtered for targeting,
/// budget, status). Background competitors are sampled from `config`.
/// Deterministic given the RNG state; ties between our bids break toward
/// the lowest [`AdId`] so reruns are stable.
pub fn run_auction<R: Rng>(bids: &[Bid], config: &AuctionConfig, rng: &mut R) -> AuctionOutcome {
    run_auction_traced(bids, config, rng).0
}

/// [`run_auction`] plus an [`AuctionTrace`] describing the competitive
/// environment. Consumes the RNG identically to the untraced form, so
/// swapping one for the other never perturbs a simulation.
pub fn run_auction_traced<R: Rng>(
    bids: &[Bid],
    config: &AuctionConfig,
    rng: &mut R,
) -> (AuctionOutcome, AuctionTrace) {
    // Sample the background competition (Knuth Poisson; rates are small).
    let n_competitors = sample_poisson(rng, config.competitor_rate);
    let mut best_bg = Money::ZERO;
    for _ in 0..n_competitors {
        let cpm = sample_lognormal(
            rng,
            config.competitor_cpm_median.as_micros() as f64,
            config.competitor_sigma,
        );
        let cpm = Money::micros(cpm as i64);
        if cpm > best_bg {
            best_bg = cpm;
        }
    }

    // Our best bid, deterministic tie-break by ad id.
    let our_best = bids
        .iter()
        .filter(|b| b.cpm >= config.reserve_cpm)
        .max_by(|a, b| a.cpm.cmp(&b.cpm).then(b.ad.cmp(&a.ad)));

    let outcome = match our_best {
        Some(best) if best.cpm >= best_bg => {
            // Second price: max of (best background bid, our runner-up,
            // reserve).
            let runner_up = bids
                .iter()
                .filter(|b| b.ad != best.ad)
                .map(|b| b.cpm)
                .max()
                .unwrap_or(Money::ZERO);
            let clearing = best_bg.max(runner_up).max(config.reserve_cpm);
            AuctionOutcome::Won {
                ad: best.ad,
                clearing_cpm: clearing.min(best.cpm),
            }
        }
        Some(_) => AuctionOutcome::LostToBackground,
        None => {
            if best_bg >= config.reserve_cpm {
                AuctionOutcome::LostToBackground
            } else {
                AuctionOutcome::Unfilled
            }
        }
    };
    let trace = AuctionTrace {
        advertiser_bids: bids.len() as u32,
        background_competitors: n_competitors,
        best_background_cpm: best_bg,
    };
    (outcome, trace)
}

/// Knuth's Poisson sampler (adequate for the small rates used here).
fn sample_poisson<R: Rng>(rng: &mut R, lambda: f64) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        // Hard stop to keep pathological configs from spinning.
        if k > 10_000 {
            return k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsim_types::rng::substream;

    fn quiet_config() -> AuctionConfig {
        // No background competition: outcomes are fully determined by bids.
        AuctionConfig {
            competitor_rate: 0.0,
            ..AuctionConfig::default()
        }
    }

    #[test]
    fn sole_bidder_pays_reserve() {
        let mut rng = substream(1, "auction");
        let bids = [Bid {
            ad: AdId(1),
            cpm: Money::dollars(10),
        }];
        match run_auction(&bids, &quiet_config(), &mut rng) {
            AuctionOutcome::Won { ad, clearing_cpm } => {
                assert_eq!(ad, AdId(1));
                assert_eq!(clearing_cpm, Money::cents(10)); // reserve
            }
            other => panic!("expected win, got {other:?}"),
        }
    }

    #[test]
    fn second_price_between_our_bids() {
        let mut rng = substream(2, "auction");
        let bids = [
            Bid {
                ad: AdId(1),
                cpm: Money::dollars(10),
            },
            Bid {
                ad: AdId(2),
                cpm: Money::dollars(4),
            },
        ];
        match run_auction(&bids, &quiet_config(), &mut rng) {
            AuctionOutcome::Won { ad, clearing_cpm } => {
                assert_eq!(ad, AdId(1));
                assert_eq!(clearing_cpm, Money::dollars(4));
            }
            other => panic!("expected win, got {other:?}"),
        }
    }

    #[test]
    fn below_reserve_bids_are_ignored() {
        let mut rng = substream(3, "auction");
        let bids = [Bid {
            ad: AdId(1),
            cpm: Money::cents(1), // below the 10¢ reserve
        }];
        assert_eq!(
            run_auction(&bids, &quiet_config(), &mut rng),
            AuctionOutcome::Unfilled
        );
    }

    #[test]
    fn no_bids_is_unfilled_without_competition() {
        let mut rng = substream(4, "auction");
        assert_eq!(
            run_auction(&[], &quiet_config(), &mut rng),
            AuctionOutcome::Unfilled
        );
    }

    #[test]
    fn tie_breaks_toward_lowest_ad_id() {
        let mut rng = substream(5, "auction");
        let bids = [
            Bid {
                ad: AdId(7),
                cpm: Money::dollars(5),
            },
            Bid {
                ad: AdId(3),
                cpm: Money::dollars(5),
            },
        ];
        match run_auction(&bids, &quiet_config(), &mut rng) {
            AuctionOutcome::Won { ad, .. } => assert_eq!(ad, AdId(3)),
            other => panic!("expected win, got {other:?}"),
        }
    }

    #[test]
    fn clearing_price_never_exceeds_bid_cap() {
        // Against heavy competition, a winning clearing price is capped at
        // the winner's own bid.
        let config = AuctionConfig {
            competitor_rate: 3.0,
            ..AuctionConfig::default()
        };
        let mut rng = substream(6, "auction");
        let bids = [Bid {
            ad: AdId(1),
            cpm: Money::dollars(3),
        }];
        for _ in 0..500 {
            if let AuctionOutcome::Won { clearing_cpm, .. } = run_auction(&bids, &config, &mut rng)
            {
                assert!(clearing_cpm <= Money::dollars(3));
                assert!(clearing_cpm >= config.reserve_cpm);
            }
        }
    }

    #[test]
    fn higher_bid_wins_more_often() {
        // The paper's rationale for the 5x bid: $10 CPM wins far more
        // auctions than $2 CPM against the same background.
        let config = AuctionConfig::default();
        let win_rate = |cpm: Money, seed: u64| {
            let mut rng = substream(seed, "auction-rate");
            let bids = [Bid { ad: AdId(1), cpm }];
            let mut wins = 0;
            for _ in 0..2_000 {
                if matches!(
                    run_auction(&bids, &config, &mut rng),
                    AuctionOutcome::Won { .. }
                ) {
                    wins += 1;
                }
            }
            wins as f64 / 2_000.0
        };
        let low = win_rate(Money::dollars(2), 7);
        let high = win_rate(Money::dollars(10), 7);
        assert!(high > low + 0.15, "high={high} low={low}");
        assert!(high > 0.9, "a 5x bid should nearly always win: {high}");
    }

    #[test]
    fn traced_auction_matches_untraced_and_counts_competition() {
        let config = AuctionConfig::default();
        let bids = [
            Bid {
                ad: AdId(1),
                cpm: Money::dollars(10),
            },
            Bid {
                ad: AdId(2),
                cpm: Money::dollars(4),
            },
        ];
        for seed in 0..50 {
            // Identical RNG state for both forms → identical outcomes.
            let mut a = substream(seed, "auction-traced");
            let mut b = substream(seed, "auction-traced");
            let plain = run_auction(&bids, &config, &mut a);
            let (traced, trace) = run_auction_traced(&bids, &config, &mut b);
            assert_eq!(plain, traced);
            assert_eq!(trace.advertiser_bids, 2);
            if trace.background_competitors == 0 {
                assert_eq!(trace.best_background_cpm, Money::ZERO);
            }
        }
    }

    #[test]
    fn poisson_sampler_mean_is_close() {
        let mut rng = substream(8, "poisson");
        let n = 20_000;
        let total: u64 = (0..n).map(|_| sample_poisson(&mut rng, 1.5) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1.5).abs() < 0.05, "poisson mean {mean}");
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn lognormal_median_is_close() {
        let mut rng = substream(9, "lognormal");
        let n = 20_001;
        let mut xs: Vec<f64> = (0..n)
            .map(|_| sample_lognormal(&mut rng, 2.0, 0.5))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let median = xs[n / 2];
        assert!((median - 2.0).abs() < 0.1, "lognormal median {median}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use adsim_types::rng::substream;
    use proptest::prelude::*;

    /// One bid per ad id — the invariant `eligible_bids` guarantees (an
    /// ad enters each auction at most once).
    fn arb_bids() -> impl Strategy<Value = Vec<Bid>> {
        prop::collection::btree_map(1u64..100, 1i64..20_000_000, 0..12).prop_map(|m| {
            m.into_iter()
                .map(|(ad, micros)| Bid {
                    ad: AdId(ad),
                    cpm: Money::micros(micros),
                })
                .collect()
        })
    }

    proptest! {
        /// Auction invariants, for arbitrary bids and environments:
        /// a winner's clearing price never exceeds its own bid, never
        /// drops below the reserve, and the winner always bid at least
        /// the reserve.
        #[test]
        fn clearing_price_invariants(
            bids in arb_bids(),
            rate in 0.0f64..3.0,
            seed in 0u64..500,
        ) {
            let config = AuctionConfig {
                competitor_rate: rate,
                ..AuctionConfig::default()
            };
            let mut rng = substream(seed, "auction-prop");
            match run_auction(&bids, &config, &mut rng) {
                AuctionOutcome::Won { ad, clearing_cpm } => {
                    let winner = bids.iter().find(|b| b.ad == ad).expect("winner bid");
                    prop_assert!(clearing_cpm <= winner.cpm);
                    prop_assert!(clearing_cpm >= config.reserve_cpm);
                    prop_assert!(winner.cpm >= config.reserve_cpm);
                    // Nobody else bid strictly more than the winner.
                    for b in &bids {
                        prop_assert!(b.cpm <= winner.cpm || b.ad == ad || b.cpm < config.reserve_cpm);
                    }
                }
                AuctionOutcome::Unfilled => {
                    // Unfilled only when no bid reaches the reserve.
                    prop_assert!(bids.iter().all(|b| b.cpm < config.reserve_cpm));
                }
                AuctionOutcome::LostToBackground => {}
            }
        }

        /// With zero background competition, outcomes are a pure function
        /// of the bids (replays agree).
        #[test]
        fn quiet_auctions_are_deterministic(bids in arb_bids(), seed in 0u64..100) {
            let config = AuctionConfig {
                competitor_rate: 0.0,
                ..AuctionConfig::default()
            };
            let mut a = substream(seed, "auction-det-a");
            let mut b = substream(seed ^ 0xdead, "auction-det-b");
            prop_assert_eq!(
                run_auction(&bids, &config, &mut a),
                run_auction(&bids, &config, &mut b)
            );
        }
    }
}
