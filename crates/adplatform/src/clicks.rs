//! Ad clicks and what advertisers learn from them.
//!
//! §4 of the paper: "advertisers can often learn information about users
//! who click on their ads (e.g., by associating the targeting parameters
//! of the ad with the user's cookie); advertisers could be required to
//! reveal the learnt information to users."
//!
//! The mechanics: when a user clicks an ad, their browser fetches the
//! advertiser's landing page, presenting (or receiving) an
//! advertiser-domain cookie. The advertiser's server now holds a log
//! entry *(cookie, ad)* — and since the advertiser knows its own ad's
//! targeting parameters, it has effectively attached those parameters to
//! the cookie. This module records exactly that advertiser-side
//! knowledge, so experiment E12 can (a) quantify the leak and (b) run the
//! paper's remedy: a disclosure back to the user of everything the
//! advertiser learned about their cookie.

use crate::campaign::CampaignStore;
use adsim_types::{AdId, AttributeId, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One click as the advertiser's server sees it: a cookie fetched the
/// landing page of a known ad. No platform user id — the advertiser never
/// gets one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClickRecord {
    /// The clicked ad.
    pub ad: AdId,
    /// The advertiser-domain cookie the browser presented (None if the
    /// user blocks cookies — then the click teaches nothing durable).
    pub cookie: Option<String>,
    /// When.
    pub at: SimTime,
}

/// The advertiser-side click log and the knowledge derivable from it.
#[derive(Debug, Clone, Default)]
pub struct ClickLog {
    records: Vec<ClickRecord>,
}

impl ClickLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a click.
    pub fn record(&mut self, click: ClickRecord) {
        self.records.push(click);
    }

    /// All recorded clicks.
    pub fn records(&self) -> &[ClickRecord] {
        &self.records
    }

    /// Number of clicks recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was clicked.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// What the advertiser has learned, per cookie: the union of the
    /// targeting attributes of every ad that cookie clicked. This is the
    /// §4 leak — each clicked ad's targeting parameters are facts about
    /// the cookie's owner (they satisfied the predicate, or the ad would
    /// not have been shown).
    pub fn learned_by_cookie(
        &self,
        campaigns: &CampaignStore,
    ) -> BTreeMap<String, Vec<AttributeId>> {
        let mut learned: BTreeMap<String, Vec<AttributeId>> = BTreeMap::new();
        for rec in &self.records {
            let Some(cookie) = &rec.cookie else { continue };
            let Ok(ad) = campaigns.ad(rec.ad) else {
                continue;
            };
            let entry = learned.entry(cookie.clone()).or_default();
            for attr in ad.targeting.referenced_attributes() {
                if !entry.contains(&attr) {
                    entry.push(attr);
                }
            }
        }
        learned
    }

    /// The §4 remedy: the disclosure an advertiser would be *required* to
    /// return to the holder of `cookie` — everything it learned about
    /// them from their clicks.
    pub fn disclosure_for_cookie(
        &self,
        cookie: &str,
        campaigns: &CampaignStore,
        attribute_name: impl Fn(AttributeId) -> Option<String>,
    ) -> Vec<String> {
        self.learned_by_cookie(campaigns)
            .remove(cookie)
            .unwrap_or_default()
            .into_iter()
            .filter_map(attribute_name)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::AdCreative;
    use crate::targeting::{TargetingExpr, TargetingSpec};
    use adsim_types::{AccountId, Money};

    fn store_with_ads() -> (CampaignStore, AdId, AdId) {
        let mut store = CampaignStore::new();
        let mut syms = adsim_types::SymbolTable::new();
        let camp = store.create_campaign(AccountId(1), "c", Money::dollars(2), None);
        let a = store
            .create_ad(
                camp,
                AdCreative::text("a", ""),
                TargetingSpec::including(TargetingExpr::And(vec![
                    TargetingExpr::Attr(AttributeId(1)),
                    TargetingExpr::Attr(AttributeId(2)),
                ])),
                &mut syms,
            )
            .expect("ad a");
        let b = store
            .create_ad(
                camp,
                AdCreative::text("b", ""),
                TargetingSpec::including(TargetingExpr::Attr(AttributeId(3))),
                &mut syms,
            )
            .expect("ad b");
        (store, a, b)
    }

    #[test]
    fn clicks_accumulate_learned_attributes_per_cookie() {
        let (store, a, b) = store_with_ads();
        let mut log = ClickLog::new();
        log.record(ClickRecord {
            ad: a,
            cookie: Some("c-1".into()),
            at: SimTime(1),
        });
        log.record(ClickRecord {
            ad: b,
            cookie: Some("c-1".into()),
            at: SimTime(2),
        });
        log.record(ClickRecord {
            ad: b,
            cookie: Some("c-2".into()),
            at: SimTime(3),
        });
        let learned = log.learned_by_cookie(&store);
        assert_eq!(
            learned["c-1"],
            vec![AttributeId(1), AttributeId(2), AttributeId(3)]
        );
        assert_eq!(learned["c-2"], vec![AttributeId(3)]);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn cookieless_clicks_teach_nothing_durable() {
        let (store, a, _) = store_with_ads();
        let mut log = ClickLog::new();
        log.record(ClickRecord {
            ad: a,
            cookie: None,
            at: SimTime(1),
        });
        assert!(log.learned_by_cookie(&store).is_empty());
        assert!(!log.is_empty());
    }

    #[test]
    fn repeated_clicks_do_not_duplicate() {
        let (store, a, _) = store_with_ads();
        let mut log = ClickLog::new();
        for t in 0..3 {
            log.record(ClickRecord {
                ad: a,
                cookie: Some("c-1".into()),
                at: SimTime(t),
            });
        }
        assert_eq!(
            log.learned_by_cookie(&store)["c-1"],
            vec![AttributeId(1), AttributeId(2)]
        );
    }

    #[test]
    fn disclosure_names_the_learned_attributes() {
        let (store, a, _) = store_with_ads();
        let mut log = ClickLog::new();
        log.record(ClickRecord {
            ad: a,
            cookie: Some("c-1".into()),
            at: SimTime(1),
        });
        let names =
            log.disclosure_for_cookie("c-1", &store, |id| Some(format!("Attribute #{}", id.raw())));
        assert_eq!(names, vec!["Attribute #1", "Attribute #2"]);
        assert!(log
            .disclosure_for_cookie("c-unknown", &store, |_| None)
            .is_empty());
    }

    #[test]
    fn clicks_on_deleted_ads_are_skipped() {
        let (store, _, _) = store_with_ads();
        let mut log = ClickLog::new();
        log.record(ClickRecord {
            ad: AdId(999),
            cookie: Some("c-1".into()),
            at: SimTime(1),
        });
        assert!(log.learned_by_cookie(&store).is_empty());
    }
}
