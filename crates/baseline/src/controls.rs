//! Control-account population design.
//!
//! XRay-style systems create fake accounts whose profiles differ in
//! controlled ways: each candidate attribute is assigned to each control
//! account independently (probability ½ by default), so that any
//! ad↔attribute correlation in the exposure matrix is attributable to
//! targeting rather than chance. The paper calls out exactly this cost:
//! "a large number of (fake) control accounts to be created in order to
//! make statistically significant claims".

use adplatform::profile::Gender;
use adplatform::Platform;
use adsim_types::{AttributeId, UserId};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Parameters of the control population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlDesign {
    /// Number of fake accounts to create.
    pub accounts: usize,
    /// Probability each candidate attribute is assigned to each account.
    pub assignment_probability: f64,
}

impl Default for ControlDesign {
    fn default() -> Self {
        Self {
            accounts: 32,
            assignment_probability: 0.5,
        }
    }
}

/// The spawned control population with its ground-truth assignments.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlPopulation {
    /// The fake accounts, in creation order.
    pub accounts: Vec<UserId>,
    /// Ground truth: account → attributes assigned.
    pub assignments: BTreeMap<UserId, Vec<AttributeId>>,
    /// The candidate attributes under study.
    pub candidates: Vec<AttributeId>,
}

impl ControlPopulation {
    /// True if `account` was assigned `attr`.
    pub fn has(&self, account: UserId, attr: AttributeId) -> bool {
        self.assignments
            .get(&account)
            .map(|v| v.contains(&attr))
            .unwrap_or(false)
    }

    /// Accounts assigned a given attribute.
    pub fn holders(&self, attr: AttributeId) -> Vec<UserId> {
        self.accounts
            .iter()
            .filter(|&&a| self.has(a, attr))
            .copied()
            .collect()
    }
}

/// Registers `design.accounts` fake users on the platform and assigns each
/// candidate attribute independently with the design probability.
pub fn spawn_controls<R: Rng>(
    platform: &mut Platform,
    candidates: &[AttributeId],
    design: &ControlDesign,
    rng: &mut R,
) -> ControlPopulation {
    let mut population = ControlPopulation {
        candidates: candidates.to_vec(),
        ..ControlPopulation::default()
    };
    for i in 0..design.accounts {
        let user = platform.register_user(
            25 + (i % 40) as u8,
            if i % 2 == 0 {
                Gender::Female
            } else {
                Gender::Male
            },
            "California",
            "94103",
        );
        let mut assigned = Vec::new();
        for &attr in candidates {
            if rng.gen::<f64>() < design.assignment_probability {
                platform
                    .profiles
                    .grant_attribute(user, attr)
                    .expect("control user exists");
                assigned.push(attr);
            }
        }
        population.accounts.push(user);
        population.assignments.insert(user, assigned);
    }
    population
}

#[cfg(test)]
mod tests {
    use super::*;
    use adplatform::attributes::{AttributeCatalog, AttributeSource};
    use adplatform::PlatformConfig;
    use adsim_types::rng::substream;

    fn platform_with(n: usize) -> (Platform, Vec<AttributeId>) {
        let mut catalog = AttributeCatalog::new();
        let ids: Vec<AttributeId> = (0..n)
            .map(|i| {
                catalog.register(
                    format!("Candidate {i}"),
                    AttributeSource::Platform,
                    None,
                    0.1,
                )
            })
            .collect();
        (Platform::new(PlatformConfig::default(), catalog), ids)
    }

    #[test]
    fn spawns_requested_population() {
        let (mut p, candidates) = platform_with(8);
        let mut rng = substream(1, "controls");
        let pop = spawn_controls(&mut p, &candidates, &ControlDesign::default(), &mut rng);
        assert_eq!(pop.accounts.len(), 32);
        assert_eq!(p.profiles.len(), 32);
        // Assignments match platform profiles.
        for &account in &pop.accounts {
            let profile = p.profile(account).expect("exists");
            for &attr in &candidates {
                assert_eq!(pop.has(account, attr), profile.has_attribute(attr));
            }
        }
    }

    #[test]
    fn assignment_rate_is_near_design_probability() {
        let (mut p, candidates) = platform_with(10);
        let mut rng = substream(2, "controls");
        let design = ControlDesign {
            accounts: 200,
            assignment_probability: 0.5,
        };
        let pop = spawn_controls(&mut p, &candidates, &design, &mut rng);
        let total: usize = pop.assignments.values().map(Vec::len).sum();
        let rate = total as f64 / (200.0 * 10.0);
        assert!((rate - 0.5).abs() < 0.05, "assignment rate {rate}");
    }

    #[test]
    fn holders_enumerates_ground_truth() {
        let (mut p, candidates) = platform_with(2);
        let mut rng = substream(3, "controls");
        let design = ControlDesign {
            accounts: 50,
            assignment_probability: 0.5,
        };
        let pop = spawn_controls(&mut p, &candidates, &design, &mut rng);
        let holders = pop.holders(candidates[0]);
        assert!(!holders.is_empty() && holders.len() < 50);
        for h in &holders {
            assert!(pop.has(*h, candidates[0]));
        }
    }

    #[test]
    fn zero_probability_assigns_nothing() {
        let (mut p, candidates) = platform_with(3);
        let mut rng = substream(4, "controls");
        let design = ControlDesign {
            accounts: 10,
            assignment_probability: 0.0,
        };
        let pop = spawn_controls(&mut p, &candidates, &design, &mut rng);
        assert!(pop.assignments.values().all(Vec::is_empty));
    }
}
