//! The exposure matrix: which control account saw which ad.
//!
//! The observation half of a correlation system: every control account
//! browses (here: repeated impression opportunities on the simulated
//! platform), and we record ad exposure per account. Row = account,
//! column = ad, cell = saw-it-or-not.

use adplatform::Platform;
use adsim_types::{AdId, UserId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The binary exposure matrix.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExposureMatrix {
    /// Accounts observed (rows).
    pub accounts: Vec<UserId>,
    /// account → set of ads it saw.
    seen: BTreeMap<UserId, BTreeSet<AdId>>,
    /// Total impression opportunities driven.
    pub opportunities: u64,
}

impl ExposureMatrix {
    /// True if `account` saw `ad`.
    pub fn saw(&self, account: UserId, ad: AdId) -> bool {
        self.seen
            .get(&account)
            .map(|s| s.contains(&ad))
            .unwrap_or(false)
    }

    /// Number of accounts that saw `ad`.
    pub fn viewers(&self, ad: AdId) -> usize {
        self.accounts.iter().filter(|&&a| self.saw(a, ad)).count()
    }

    /// Every ad that appears in the matrix.
    pub fn ads(&self) -> BTreeSet<AdId> {
        self.seen.values().flatten().copied().collect()
    }
}

/// Drives `rounds` impression opportunities for every control account and
/// records exposures.
///
/// Each round gives every account one opportunity; auctions, frequency
/// caps, and targeting run exactly as for real users — the baseline gets
/// no shortcuts.
pub fn collect_exposures(
    platform: &mut Platform,
    accounts: &[UserId],
    rounds: usize,
) -> ExposureMatrix {
    let mut matrix = ExposureMatrix {
        accounts: accounts.to_vec(),
        ..ExposureMatrix::default()
    };
    for _ in 0..rounds {
        for &account in accounts {
            matrix.opportunities += 1;
            if let Ok(adplatform::auction::AuctionOutcome::Won { ad, .. }) =
                platform.browse(account)
            {
                matrix.seen.entry(account).or_default().insert(ad);
            }
        }
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use adplatform::attributes::{AttributeCatalog, AttributeSource};
    use adplatform::auction::AuctionConfig;
    use adplatform::campaign::AdCreative;
    use adplatform::profile::Gender;
    use adplatform::targeting::{TargetingExpr, TargetingSpec};
    use adplatform::PlatformConfig;
    use adsim_types::{AttributeId, Money};

    fn rig() -> (Platform, AttributeId) {
        let mut catalog = AttributeCatalog::new();
        let attr = catalog.register("Candidate", AttributeSource::Platform, None, 0.1);
        let p = Platform::new(
            PlatformConfig {
                auction: AuctionConfig {
                    competitor_rate: 0.0,
                    ..AuctionConfig::default()
                },
                frequency_cap: 10,
                ..PlatformConfig::default()
            },
            catalog,
        );
        (p, attr)
    }

    #[test]
    fn exposure_reflects_targeting() {
        let (mut p, attr) = rig();
        let adv = p.register_advertiser("adv");
        let acct = p.open_account(adv).expect("account");
        let camp = p
            .create_campaign(acct, "c", Money::dollars(10), None)
            .expect("campaign");
        let ad = p
            .submit_ad(
                camp,
                AdCreative::text("h", "b"),
                TargetingSpec::including(TargetingExpr::Attr(attr)),
            )
            .expect("ad");
        let with = p.register_user(30, Gender::Female, "Ohio", "43004");
        let without = p.register_user(30, Gender::Male, "Ohio", "43004");
        p.profiles.grant_attribute(with, attr).expect("grant");

        let matrix = collect_exposures(&mut p, &[with, without], 3);
        assert!(matrix.saw(with, ad));
        assert!(!matrix.saw(without, ad));
        assert_eq!(matrix.viewers(ad), 1);
        assert_eq!(matrix.opportunities, 6);
        assert!(matrix.ads().contains(&ad));
    }

    #[test]
    fn empty_platform_yields_empty_matrix() {
        let (mut p, _) = rig();
        let u = p.register_user(30, Gender::Female, "Ohio", "43004");
        let matrix = collect_exposures(&mut p, &[u], 2);
        assert!(matrix.ads().is_empty());
        assert_eq!(matrix.viewers(AdId(1)), 0);
        assert_eq!(matrix.opportunities, 2);
    }
}
