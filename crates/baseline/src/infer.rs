//! Differential-correlation inference.
//!
//! For each (ad, candidate attribute) pair, build the 2×2 contingency
//! table over control accounts —
//!
//! |              | saw ad | did not |
//! |--------------|--------|---------|
//! | has attr     |   a    |    b    |
//! | lacks attr   |   c    |    d    |
//!
//! — test for association (Pearson chi-square), then control for the
//! multiple hypotheses across all pairs (Bonferroni, or Benjamini–Hochberg
//! as Sunlight argues). Surviving associations are the inferred targeting.
//!
//! Precision/recall against ground truth (which attribute each ad really
//! targeted) is what E10 reports as a function of population size.

use crate::controls::ControlPopulation;
use crate::observe::ExposureMatrix;
use adsim_types::stats::{benjamini_hochberg, bonferroni, chi_square_2x2};
use adsim_types::{AdId, AttributeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Multiple-testing correction to apply.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Correction {
    /// Family-wise error control at level `alpha`.
    Bonferroni {
        /// Significance level.
        alpha: f64,
    },
    /// False-discovery-rate control at rate `q` (Sunlight's choice).
    BenjaminiHochberg {
        /// Target FDR.
        q: f64,
    },
}

/// One inferred (ad → attribute) association.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferredTargeting {
    /// The ad.
    pub ad: AdId,
    /// The attribute inferred to drive its targeting.
    pub attribute: AttributeId,
    /// Raw (uncorrected) p-value of the association.
    pub p_value: f64,
}

/// Runs the full inference over an exposure matrix.
///
/// Returns the surviving associations sorted by (ad, attribute). Ads no
/// control account saw produce nothing (you cannot correlate what you
/// never observed — one of the deployment weaknesses the paper notes).
pub fn infer_targeting(
    matrix: &ExposureMatrix,
    population: &ControlPopulation,
    correction: Correction,
) -> Vec<InferredTargeting> {
    // Build all hypothesis tests first.
    let mut tests: Vec<(AdId, AttributeId, f64)> = Vec::new();
    for ad in matrix.ads() {
        for &attr in &population.candidates {
            let mut a = 0f64; // has & saw
            let mut b = 0f64; // has & not
            let mut c = 0f64; // lacks & saw
            let mut d = 0f64; // lacks & not
            for &account in &population.accounts {
                let has = population.has(account, attr);
                let saw = matrix.saw(account, ad);
                match (has, saw) {
                    (true, true) => a += 1.0,
                    (true, false) => b += 1.0,
                    (false, true) => c += 1.0,
                    (false, false) => d += 1.0,
                }
            }
            // Only positive association counts as targeting: seeing the ad
            // must be *more* likely with the attribute.
            let positively_associated = a * d > b * c;
            let (_stat, p) = chi_square_2x2(a, b, c, d);
            let p = if positively_associated { p } else { 1.0 };
            tests.push((ad, attr, p));
        }
    }

    let p_values: Vec<f64> = tests.iter().map(|t| t.2).collect();
    let keep: Vec<bool> = match correction {
        Correction::Bonferroni { alpha } => bonferroni(&p_values)
            .into_iter()
            .map(|p| p <= alpha)
            .collect(),
        Correction::BenjaminiHochberg { q } => benjamini_hochberg(&p_values, q),
    };

    let mut out: Vec<InferredTargeting> = tests
        .into_iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|((ad, attribute, p_value), _)| InferredTargeting {
            ad,
            attribute,
            p_value,
        })
        .collect();
    out.sort_by_key(|i| (i.ad, i.attribute));
    out
}

/// Precision/recall of inferred associations against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Accuracy {
    /// Correct inferences.
    pub true_positives: usize,
    /// Spurious inferences.
    pub false_positives: usize,
    /// Ground-truth associations missed.
    pub false_negatives: usize,
}

impl Accuracy {
    /// Precision (1.0 when nothing was inferred).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall (1.0 when there was nothing to find).
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }
}

/// Scores inferences against the true ad → attribute map.
pub fn score(inferred: &[InferredTargeting], truth: &BTreeMap<AdId, AttributeId>) -> Accuracy {
    let mut tp = 0;
    let mut fp = 0;
    for inf in inferred {
        if truth.get(&inf.ad) == Some(&inf.attribute) {
            tp += 1;
        } else {
            fp += 1;
        }
    }
    let found: std::collections::BTreeSet<(AdId, AttributeId)> =
        inferred.iter().map(|i| (i.ad, i.attribute)).collect();
    let fnn = truth
        .iter()
        .filter(|(&ad, &attr)| !found.contains(&(ad, attr)))
        .count();
    Accuracy {
        true_positives: tp,
        false_positives: fp,
        false_negatives: fnn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controls::{spawn_controls, ControlDesign};
    use crate::observe::collect_exposures;
    use adplatform::attributes::{AttributeCatalog, AttributeSource};
    use adplatform::auction::AuctionConfig;
    use adplatform::campaign::AdCreative;
    use adplatform::targeting::{TargetingExpr, TargetingSpec};
    use adplatform::{Platform, PlatformConfig};
    use adsim_types::rng::substream;
    use adsim_types::Money;

    /// Full pipeline on a platform with `n_attrs` candidates, one targeted
    /// ad per attribute.
    fn pipeline(
        n_attrs: usize,
        n_accounts: usize,
        correction: Correction,
        seed: u64,
    ) -> (Vec<InferredTargeting>, BTreeMap<AdId, AttributeId>) {
        let mut catalog = AttributeCatalog::new();
        let attrs: Vec<AttributeId> = (0..n_attrs)
            .map(|i| catalog.register(format!("Cand {i}"), AttributeSource::Platform, None, 0.1))
            .collect();
        let mut p = Platform::new(
            PlatformConfig {
                auction: AuctionConfig {
                    competitor_rate: 0.0,
                    ..AuctionConfig::default()
                },
                frequency_cap: 5,
                ..PlatformConfig::default()
            },
            catalog,
        );
        let adv = p.register_advertiser("adv");
        let acct = p.open_account(adv).expect("account");
        let camp = p
            .create_campaign(acct, "c", Money::dollars(10), None)
            .expect("campaign");
        let mut truth = BTreeMap::new();
        for &attr in &attrs {
            let ad = p
                .submit_ad(
                    camp,
                    AdCreative::text(format!("ad for {attr}"), "b"),
                    TargetingSpec::including(TargetingExpr::Attr(attr)),
                )
                .expect("ad");
            truth.insert(ad, attr);
        }
        let mut rng = substream(seed, "baseline-test");
        let pop = spawn_controls(
            &mut p,
            &attrs,
            &ControlDesign {
                accounts: n_accounts,
                assignment_probability: 0.5,
            },
            &mut rng,
        );
        let matrix = collect_exposures(&mut p, &pop.accounts, 2 * n_attrs);
        (infer_targeting(&matrix, &pop, correction), truth)
    }

    #[test]
    fn enough_controls_recover_targeting() {
        let (inferred, truth) = pipeline(4, 48, Correction::Bonferroni { alpha: 0.05 }, 1);
        let acc = score(&inferred, &truth);
        assert_eq!(acc.false_positives, 0, "{inferred:?}");
        assert!(
            acc.recall() >= 0.75,
            "recall {} with {inferred:?}",
            acc.recall()
        );
    }

    #[test]
    fn too_few_controls_lack_power() {
        // With 6 accounts the chi-square tests cannot reach Bonferroni
        // significance across 4x4 hypotheses.
        let (inferred, truth) = pipeline(4, 6, Correction::Bonferroni { alpha: 0.05 }, 2);
        let acc = score(&inferred, &truth);
        assert!(
            acc.recall() < 0.5,
            "expected low recall with tiny population, got {}",
            acc.recall()
        );
    }

    #[test]
    fn bh_is_no_stricter_than_bonferroni() {
        let (bonf, _) = pipeline(4, 48, Correction::Bonferroni { alpha: 0.05 }, 3);
        let (bh, _) = pipeline(4, 48, Correction::BenjaminiHochberg { q: 0.05 }, 3);
        assert!(bh.len() >= bonf.len());
    }

    #[test]
    fn unseen_ads_produce_no_inferences() {
        // No browsing: empty matrix, nothing inferred.
        let mut catalog = AttributeCatalog::new();
        let attr = catalog.register("Cand", AttributeSource::Platform, None, 0.1);
        let mut p = Platform::new(PlatformConfig::default(), catalog);
        let mut rng = substream(4, "baseline-test");
        let pop = spawn_controls(
            &mut p,
            &[attr],
            &ControlDesign {
                accounts: 8,
                assignment_probability: 0.5,
            },
            &mut rng,
        );
        let matrix = collect_exposures(&mut p, &pop.accounts, 0);
        assert!(infer_targeting(&matrix, &pop, Correction::Bonferroni { alpha: 0.05 }).is_empty());
    }

    #[test]
    fn accuracy_scoring() {
        let truth: BTreeMap<AdId, AttributeId> =
            [(AdId(1), AttributeId(10)), (AdId(2), AttributeId(20))]
                .into_iter()
                .collect();
        let inferred = vec![
            InferredTargeting {
                ad: AdId(1),
                attribute: AttributeId(10),
                p_value: 0.001,
            },
            InferredTargeting {
                ad: AdId(1),
                attribute: AttributeId(99),
                p_value: 0.01,
            },
        ];
        let acc = score(&inferred, &truth);
        assert_eq!(acc.true_positives, 1);
        assert_eq!(acc.false_positives, 1);
        assert_eq!(acc.false_negatives, 1);
        assert!((acc.precision() - 0.5).abs() < 1e-12);
        assert!((acc.recall() - 0.5).abs() < 1e-12);
        // Degenerate cases.
        let empty = score(&[], &BTreeMap::new());
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
    }
}
