//! Deployment cost of the correlation baseline, for the E10 comparison.
//!
//! The paper's §5 argument is qualitative ("challenging to deploy,
//! requiring … a large number of (fake) control accounts"); this module
//! makes it a number: accounts created and maintained, browsing volume
//! driven, and the statistical-power floor on the population size.

use adsim_types::stats::ln_choose;
use serde::{Deserialize, Serialize};

/// Cost accounting for one baseline deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineCost {
    /// Fake accounts created.
    pub accounts: usize,
    /// Impression opportunities driven across all accounts.
    pub opportunities: u64,
    /// Hypotheses tested (ads × candidate attributes).
    pub hypotheses: usize,
}

impl BaselineCost {
    /// Accounts per attribute studied — the headline deployment-burden
    /// ratio E10 compares against the Treads value of 0 (Treads need no
    /// fake accounts at all).
    pub fn accounts_per_attribute(&self, attributes: usize) -> f64 {
        if attributes == 0 {
            return 0.0;
        }
        self.accounts as f64 / attributes as f64
    }
}

/// The smallest control population for which a perfectly-separating
/// exposure pattern can reach Bonferroni significance.
///
/// With `n` accounts split evenly (p = ½ assignment), the best-case
/// chi-square 2×2 p-value is roughly the Fisher tail
/// `1 / C(n, n/2)`; Bonferroni multiplies it by the number of hypotheses
/// `m`. We return the smallest even `n` with `m / C(n, n/2) ≤ alpha` —
/// the "statistically significant claims" floor the paper alludes to.
pub fn minimum_population(hypotheses: usize, alpha: f64) -> usize {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha in (0,1)");
    let m = hypotheses.max(1) as f64;
    let mut n = 2usize;
    loop {
        let log_tail = -ln_choose(n as u64, n as u64 / 2); // ln(1/C(n, n/2))
        let log_corrected = m.ln() + log_tail;
        if log_corrected <= alpha.ln() {
            return n;
        }
        n += 2;
        assert!(n < 10_000, "no feasible population under 10k accounts");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimum_population_grows_with_hypotheses() {
        let small = minimum_population(4, 0.05);
        let large = minimum_population(507 * 507, 0.05);
        assert!(small >= 6, "min population {small}");
        assert!(large > small);
        // Sanity: C(6,3)=20 → 1/20 = 0.05; with 1 hypothesis the 0.05
        // threshold is reached exactly at n=6.
        assert_eq!(minimum_population(1, 0.05), 6);
    }

    #[test]
    fn accounts_per_attribute_ratio() {
        let cost = BaselineCost {
            accounts: 48,
            opportunities: 4800,
            hypotheses: 16,
        };
        assert!((cost.accounts_per_attribute(4) - 12.0).abs() < 1e-12);
        assert_eq!(cost.accounts_per_attribute(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha in (0,1)")]
    fn invalid_alpha_panics() {
        minimum_population(1, 0.0);
    }
}
