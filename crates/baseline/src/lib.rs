//! Correlation-based targeting inference — the external-transparency
//! baseline Treads are compared against.
//!
//! The paper's related work (§5) describes systems like XRay (USENIX Sec
//! '14) and Sunlight (CCS '15) that "work by correlating information about
//! users with the ads that they see", and notes they are "challenging to
//! deploy, requiring either a large diverse population to sign-up … or a
//! large number of (fake) control accounts … to make statistically
//! significant claims". To make that comparison quantitative (experiment
//! E10), this crate implements the approach from scratch:
//!
//! * [`controls`] — control-account population design: fake platform
//!   accounts with independently randomized attribute assignments.
//! * [`observe`] — the exposure matrix: which control account saw which
//!   ad, collected by driving browsing sessions.
//! * [`infer`] — differential-correlation inference: per (ad, attribute)
//!   association tests (Pearson chi-square on the 2×2 exposure table) with
//!   Bonferroni or Benjamini–Hochberg multiple-testing correction —
//!   Sunlight's methodological core.
//! * [`costmodel`] — what the deployment costs: accounts created,
//!   browsing volume, impressions observed; compared against the Treads
//!   numbers in E10.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controls;
pub mod costmodel;
pub mod infer;
pub mod observe;

pub use controls::{spawn_controls, ControlDesign, ControlPopulation};
pub use costmodel::BaselineCost;
pub use infer::{infer_targeting, Correction, InferredTargeting};
pub use observe::{collect_exposures, ExposureMatrix};
