//! The user-side browser extension.
//!
//! The paper envisions users "potentially sav(ing) these (Treads) using a
//! browser extension", which also holds the obfuscation codebook the
//! provider shares at opt-in. The extension here is the capture half: it
//! records every ad the user's browser rendered (ad id + the creative as
//! displayed). Decoding is done by `treads-core`'s client, which consumes
//! an [`ExtensionLog`].
//!
//! The extension sees only what the user sees — it has no platform-side
//! access, which keeps the threat-model boundaries honest.

use adplatform::campaign::AdCreative;
use adsim_types::{AdId, SimTime, UserId};
use serde::{Deserialize, Serialize};

/// One ad observation captured by the extension.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservedAd {
    /// The rendered ad's id (visible in ad markup on real platforms).
    pub ad: AdId,
    /// The creative as rendered.
    pub creative: AdCreative,
    /// When it was seen.
    pub at: SimTime,
}

/// Per-user capture log.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtensionLog {
    /// The user running the extension.
    pub user: Option<UserId>,
    observations: Vec<ObservedAd>,
}

impl ExtensionLog {
    /// A log for one user.
    pub fn for_user(user: UserId) -> Self {
        Self {
            user: Some(user),
            observations: Vec::new(),
        }
    }

    /// Rebuilds a log from checkpointed parts, preserving capture order.
    pub fn from_parts(user: Option<UserId>, observations: Vec<ObservedAd>) -> Self {
        Self { user, observations }
    }

    /// Records a rendered ad.
    pub fn observe(&mut self, ad: AdId, creative: AdCreative, at: SimTime) {
        self.observations.push(ObservedAd { ad, creative, at });
    }

    /// All observations, in capture order.
    pub fn observations(&self) -> &[ObservedAd] {
        &self.observations
    }

    /// Number of captured ads.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Observations of one specific ad.
    pub fn of_ad(&self, ad: AdId) -> Vec<&ObservedAd> {
        self.observations.iter().filter(|o| o.ad == ad).collect()
    }

    /// Distinct ads seen, in first-seen order.
    pub fn distinct_ads(&self) -> Vec<AdId> {
        let mut seen = Vec::new();
        for o in &self.observations {
            if !seen.contains(&o.ad) {
                seen.push(o.ad);
            }
        }
        seen
    }

    /// Cross-checks the platform's receipt claims against what the
    /// browser actually rendered.
    ///
    /// Claims and observations match as a multiset on `(ad, at)` — a user
    /// shown the same ad twice holds two observations and is owed two
    /// receipts. The audit is symmetric: `unobserved` lists deliveries
    /// the platform claims but the browser never rendered (a forged
    /// receipt), `unreceipted` lists rendered ads the platform issued no
    /// receipt for (a dropped one).
    pub fn verify_claims(&self, claims: &[ReceiptClaim]) -> ClaimAudit {
        let mut pending: Vec<(AdId, SimTime)> =
            self.observations.iter().map(|o| (o.ad, o.at)).collect();
        let mut audit = ClaimAudit::default();
        for claim in claims {
            match pending
                .iter()
                .position(|&(ad, at)| ad == claim.ad && at == claim.at)
            {
                Some(i) => {
                    pending.swap_remove(i);
                    audit.matched += 1;
                }
                None => audit.unobserved.push(*claim),
            }
        }
        pending.sort_unstable_by_key(|&(ad, at)| (at, ad));
        audit.unreceipted = pending;
        audit
    }
}

/// A delivery the platform *claims* it made to this user: an `(ad,
/// instant)` pair lifted from its published receipt ledger.
///
/// Deliberately minimal — the extension sees only what the user's browser
/// sees, so a claim is comparable exactly on the rendered ad identity and
/// instant, never on platform-internal receipt fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReceiptClaim {
    /// The ad the platform says it delivered.
    pub ad: AdId,
    /// When it says it delivered it.
    pub at: SimTime,
}

/// Outcome of [`ExtensionLog::verify_claims`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClaimAudit {
    /// Claims backed by a rendered observation.
    pub matched: u64,
    /// Claims the browser never rendered (forged receipts).
    pub unobserved: Vec<ReceiptClaim>,
    /// Rendered ads the platform issued no receipt for (dropped
    /// receipts), sorted by `(at, ad)`.
    pub unreceipted: Vec<(AdId, SimTime)>,
}

impl ClaimAudit {
    /// True when every claim matched an observation and vice versa.
    pub fn is_clean(&self) -> bool {
        self.unobserved.is_empty() && self.unreceipted.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn creative(n: u32) -> AdCreative {
        AdCreative::text(format!("headline {n}"), "body")
    }

    #[test]
    fn capture_and_query() {
        let mut log = ExtensionLog::for_user(UserId(1));
        log.observe(AdId(10), creative(1), SimTime(5));
        log.observe(AdId(11), creative(2), SimTime(6));
        log.observe(AdId(10), creative(1), SimTime(7));
        assert_eq!(log.len(), 3);
        assert_eq!(log.of_ad(AdId(10)).len(), 2);
        assert_eq!(log.distinct_ads(), vec![AdId(10), AdId(11)]);
        assert_eq!(log.user, Some(UserId(1)));
    }

    #[test]
    fn empty_log() {
        let log = ExtensionLog::default();
        assert!(log.is_empty());
        assert!(log.distinct_ads().is_empty());
        assert!(log.of_ad(AdId(1)).is_empty());
    }

    #[test]
    fn claim_verification_is_a_multiset_match() {
        let mut log = ExtensionLog::for_user(UserId(1));
        log.observe(AdId(10), creative(1), SimTime(5));
        log.observe(AdId(10), creative(1), SimTime(5));
        log.observe(AdId(11), creative(2), SimTime(6));

        // Honest claims: one per rendered ad, duplicates included.
        let honest = vec![
            ReceiptClaim {
                ad: AdId(10),
                at: SimTime(5),
            },
            ReceiptClaim {
                ad: AdId(10),
                at: SimTime(5),
            },
            ReceiptClaim {
                ad: AdId(11),
                at: SimTime(6),
            },
        ];
        let audit = log.verify_claims(&honest);
        assert!(audit.is_clean());
        assert_eq!(audit.matched, 3);

        // A forged claim surfaces as unobserved; a withheld one as
        // unreceipted.
        let tampered = vec![
            ReceiptClaim {
                ad: AdId(10),
                at: SimTime(5),
            },
            ReceiptClaim {
                ad: AdId(10),
                at: SimTime(5),
            },
            ReceiptClaim {
                ad: AdId(99),
                at: SimTime(7),
            },
        ];
        let audit = log.verify_claims(&tampered);
        assert!(!audit.is_clean());
        assert_eq!(audit.matched, 2);
        assert_eq!(
            audit.unobserved,
            vec![ReceiptClaim {
                ad: AdId(99),
                at: SimTime(7),
            }]
        );
        assert_eq!(audit.unreceipted, vec![(AdId(11), SimTime(6))]);
    }

    #[test]
    fn observations_keep_creative_content() {
        let mut log = ExtensionLog::for_user(UserId(2));
        log.observe(AdId(1), AdCreative::text("Ref", "2,830,120"), SimTime(0));
        let obs = &log.observations()[0];
        assert_eq!(obs.creative.body, "2,830,120");
        assert_eq!(obs.at, SimTime(0));
    }
}
