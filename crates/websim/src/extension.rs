//! The user-side browser extension.
//!
//! The paper envisions users "potentially sav(ing) these (Treads) using a
//! browser extension", which also holds the obfuscation codebook the
//! provider shares at opt-in. The extension here is the capture half: it
//! records every ad the user's browser rendered (ad id + the creative as
//! displayed). Decoding is done by `treads-core`'s client, which consumes
//! an [`ExtensionLog`].
//!
//! The extension sees only what the user sees — it has no platform-side
//! access, which keeps the threat-model boundaries honest.

use adplatform::campaign::AdCreative;
use adsim_types::{AdId, SimTime, UserId};
use serde::{Deserialize, Serialize};

/// One ad observation captured by the extension.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservedAd {
    /// The rendered ad's id (visible in ad markup on real platforms).
    pub ad: AdId,
    /// The creative as rendered.
    pub creative: AdCreative,
    /// When it was seen.
    pub at: SimTime,
}

/// Per-user capture log.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtensionLog {
    /// The user running the extension.
    pub user: Option<UserId>,
    observations: Vec<ObservedAd>,
}

impl ExtensionLog {
    /// A log for one user.
    pub fn for_user(user: UserId) -> Self {
        Self {
            user: Some(user),
            observations: Vec::new(),
        }
    }

    /// Rebuilds a log from checkpointed parts, preserving capture order.
    pub fn from_parts(user: Option<UserId>, observations: Vec<ObservedAd>) -> Self {
        Self { user, observations }
    }

    /// Records a rendered ad.
    pub fn observe(&mut self, ad: AdId, creative: AdCreative, at: SimTime) {
        self.observations.push(ObservedAd { ad, creative, at });
    }

    /// All observations, in capture order.
    pub fn observations(&self) -> &[ObservedAd] {
        &self.observations
    }

    /// Number of captured ads.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Observations of one specific ad.
    pub fn of_ad(&self, ad: AdId) -> Vec<&ObservedAd> {
        self.observations.iter().filter(|o| o.ad == ad).collect()
    }

    /// Distinct ads seen, in first-seen order.
    pub fn distinct_ads(&self) -> Vec<AdId> {
        let mut seen = Vec::new();
        for o in &self.observations {
            if !seen.contains(&o.ad) {
                seen.push(o.ad);
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn creative(n: u32) -> AdCreative {
        AdCreative::text(format!("headline {n}"), "body")
    }

    #[test]
    fn capture_and_query() {
        let mut log = ExtensionLog::for_user(UserId(1));
        log.observe(AdId(10), creative(1), SimTime(5));
        log.observe(AdId(11), creative(2), SimTime(6));
        log.observe(AdId(10), creative(1), SimTime(7));
        assert_eq!(log.len(), 3);
        assert_eq!(log.of_ad(AdId(10)).len(), 2);
        assert_eq!(log.distinct_ads(), vec![AdId(10), AdId(11)]);
        assert_eq!(log.user, Some(UserId(1)));
    }

    #[test]
    fn empty_log() {
        let log = ExtensionLog::default();
        assert!(log.is_empty());
        assert!(log.distinct_ads().is_empty());
        assert!(log.of_ad(AdId(1)).is_empty());
    }

    #[test]
    fn observations_keep_creative_content() {
        let mut log = ExtensionLog::for_user(UserId(2));
        log.observe(AdId(1), AdCreative::text("Ref", "2,830,120"), SimTime(0));
        let obs = &log.observations()[0];
        assert_eq!(obs.creative.body, "2,830,120");
        assert_eq!(obs.at, SimTime(0));
    }
}
