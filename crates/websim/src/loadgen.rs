//! Open-loop load generation for the serving front end.
//!
//! A [`SessionSchedule`] models *per-user* browsing; a load test models
//! *offered load* — requests per second arriving whether or not the
//! system keeps up. [`ArrivalSchedule::open_loop`] generates such a
//! stream: a non-homogeneous Poisson process (Lewis–Shedler thinning over
//! a seeded substream) whose rate follows a [`LoadProfile`] — a base
//! request rate, a sinusoidal diurnal curve, and scheduled burst storms.
//! Being open-loop and fully precomputed, the schedule is independent of
//! how fast the system under test answers, so sweeps at different offered
//! loads are comparable and every run is replayable from its seed.
//!
//! [`ArrivalSchedule::from_sessions`] is the bridge back to the batch
//! world: it flattens the engine's own per-user session streams into one
//! time-ordered arrival list, which is what the serving equivalence proofs
//! feed the front end.

use crate::session::{BrowsingEvent, SessionConfig, SessionSchedule};
use adsim_types::rng::substream;
use adsim_types::{SimTime, SiteId, UserId};
use rand::Rng;
use serde::{Deserialize, Serialize};

const DAY_MS: u64 = 86_400_000;

/// A burst storm: between `start_ms` and `start_ms + duration_ms` the
/// offered rate is multiplied by `multiplier`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Burst {
    /// Storm onset, in simulated milliseconds.
    pub start_ms: u64,
    /// Storm length, in simulated milliseconds.
    pub duration_ms: u64,
    /// Rate multiplier while the storm lasts (overlapping storms
    /// compound multiplicatively).
    pub multiplier: f64,
}

impl Burst {
    fn active_at(&self, at_ms: u64) -> bool {
        at_ms >= self.start_ms && at_ms < self.start_ms.saturating_add(self.duration_ms)
    }
}

/// The shape of offered load over simulated time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadProfile {
    /// Mean request rate, in requests per simulated second.
    pub base_rps: f64,
    /// Diurnal swing as a fraction of `base_rps` (0 = flat, 0.5 = rate
    /// oscillates ±50% over each simulated day).
    pub diurnal_amplitude: f64,
    /// Scheduled burst storms.
    pub bursts: Vec<Burst>,
    /// Schedule horizon, in simulated milliseconds.
    pub horizon_ms: u64,
}

impl LoadProfile {
    /// A flat profile: `base_rps` for `horizon_ms`, no diurnal swing, no
    /// storms.
    pub fn flat(base_rps: f64, horizon_ms: u64) -> Self {
        Self {
            base_rps,
            diurnal_amplitude: 0.0,
            bursts: Vec::new(),
            horizon_ms,
        }
    }

    /// The instantaneous offered rate (requests per simulated second) at
    /// `at_ms`.
    pub fn rate_at(&self, at_ms: u64) -> f64 {
        let day_fraction = (at_ms % DAY_MS) as f64 / DAY_MS as f64;
        let diurnal =
            1.0 + self.diurnal_amplitude * (2.0 * std::f64::consts::PI * day_fraction).sin();
        let mut rate = self.base_rps * diurnal;
        for burst in &self.bursts {
            if burst.active_at(at_ms) {
                rate *= burst.multiplier;
            }
        }
        rate.max(0.0)
    }

    /// An upper bound on [`LoadProfile::rate_at`] over the whole horizon
    /// (the thinning envelope). Conservatively assumes every storm can
    /// overlap the diurnal peak.
    pub fn peak_rate(&self) -> f64 {
        let mut peak = self.base_rps * (1.0 + self.diurnal_amplitude.abs());
        for burst in &self.bursts {
            if burst.multiplier > 1.0 {
                peak *= burst.multiplier;
            }
        }
        peak
    }
}

/// One offered request: `user` wants a page on `site` at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arrival {
    /// The requesting user.
    pub user: UserId,
    /// The requested site.
    pub site: SiteId,
    /// The simulated arrival instant.
    pub at: SimTime,
}

/// A precomputed, time-sorted stream of offered requests.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrivalSchedule {
    arrivals: Vec<Arrival>,
}

impl ArrivalSchedule {
    /// Generates an open-loop arrival stream following `profile`.
    ///
    /// Implementation: Lewis–Shedler thinning. Candidate arrivals come
    /// from a homogeneous Poisson process at [`LoadProfile::peak_rate`]
    /// (exponential inter-arrival gaps), and each candidate at `t`
    /// survives with probability `rate_at(t) / peak_rate`. Users and
    /// sites are drawn uniformly per surviving arrival. The stream is a
    /// pure function of `(users, sites, profile, seed)` — the substream
    /// key `"loadgen"` keeps it independent of every other consumer of
    /// `seed`.
    ///
    /// # Panics
    /// Panics if `users` or `sites` is empty.
    pub fn open_loop(users: &[UserId], sites: &[SiteId], profile: &LoadProfile, seed: u64) -> Self {
        assert!(!users.is_empty(), "load generation needs users");
        assert!(!sites.is_empty(), "load generation needs sites");
        let mut rng = substream(seed, "loadgen");
        let peak_per_ms = profile.peak_rate() / 1_000.0;
        let mut arrivals = Vec::new();
        if peak_per_ms > 0.0 {
            let mut t_ms = 0.0_f64;
            loop {
                // Exponential gap at the envelope rate. gen::<f64>() is in
                // [0, 1); flip to (0, 1] so ln() stays finite.
                let u: f64 = 1.0 - rng.gen::<f64>();
                t_ms += -u.ln() / peak_per_ms;
                if t_ms >= profile.horizon_ms as f64 {
                    break;
                }
                let at_ms = t_ms as u64;
                let keep: f64 = rng.gen();
                if keep * profile.peak_rate() >= profile.rate_at(at_ms) {
                    continue;
                }
                let user = users[rng.gen_range(0..users.len())];
                let site = sites[rng.gen_range(0..sites.len())];
                arrivals.push(Arrival {
                    user,
                    site,
                    at: SimTime(at_ms),
                });
            }
        }
        Self { arrivals }
    }

    /// Flattens the batch engine's own workload into an arrival stream:
    /// each user's [`SessionSchedule::generate_day_for_user`] events (the
    /// exact per-user-per-day substreams the engine replays), days
    /// concatenated in order per user and stably sorted by time.
    ///
    /// Feeding this to the serving front end offers the platform the same
    /// opportunity multiset the batch engine simulates — the basis of the
    /// serving-vs-batch equivalence proofs.
    pub fn from_sessions(
        users: &[UserId],
        sites: &[SiteId],
        config: &SessionConfig,
        seed: u64,
    ) -> Self {
        let mut arrivals = Vec::new();
        for &user in users {
            for day in 0..config.days {
                for event in SessionSchedule::generate_day_for_user(user, sites, config, seed, day)
                {
                    let BrowsingEvent::PageView { user, site, at } = event;
                    arrivals.push(Arrival { user, site, at });
                }
            }
        }
        // Stable: same-instant events keep per-user generation order,
        // matching how the engine's shards replay them.
        arrivals.sort_by_key(|a| a.at);
        Self { arrivals }
    }

    /// The time-sorted arrivals.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Number of offered requests.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when the schedule offers nothing.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn users(n: u64) -> Vec<UserId> {
        (0..n).map(UserId).collect()
    }

    fn sites() -> Vec<SiteId> {
        vec![SiteId(1), SiteId(2)]
    }

    #[test]
    fn rate_follows_diurnal_and_bursts() {
        let profile = LoadProfile {
            base_rps: 100.0,
            diurnal_amplitude: 0.5,
            bursts: vec![Burst {
                start_ms: 1_000,
                duration_ms: 500,
                multiplier: 3.0,
            }],
            horizon_ms: DAY_MS,
        };
        // Quarter-day is the sinusoid's crest.
        assert!((profile.rate_at(DAY_MS / 4) - 150.0).abs() < 1e-9);
        // Three-quarter day is its trough.
        assert!((profile.rate_at(3 * DAY_MS / 4) - 50.0).abs() < 1e-9);
        // Inside the burst window the rate is tripled; at the boundary the
        // storm is over.
        assert!(profile.rate_at(1_200) > 290.0);
        assert!(profile.rate_at(1_500) < 110.0);
        // The envelope dominates everywhere.
        for at in (0..DAY_MS).step_by(DAY_MS as usize / 97) {
            assert!(profile.rate_at(at) <= profile.peak_rate() + 1e-9);
        }
    }

    #[test]
    fn open_loop_is_deterministic_and_in_horizon() {
        let profile = LoadProfile::flat(50.0, 60_000);
        let a = ArrivalSchedule::open_loop(&users(10), &sites(), &profile, 7);
        let b = ArrivalSchedule::open_loop(&users(10), &sites(), &profile, 7);
        assert_eq!(a, b, "same seed, same schedule");
        let c = ArrivalSchedule::open_loop(&users(10), &sites(), &profile, 8);
        assert_ne!(a, c, "different seed, different schedule");
        // ~50 rps × 60 s ≈ 3000 arrivals; Poisson noise stays well inside
        // ±5 sigma (±274).
        assert!((2_700..=3_300).contains(&a.len()), "got {}", a.len());
        assert!(a.arrivals().windows(2).all(|w| w[0].at <= w[1].at));
        assert!(a.arrivals().iter().all(|arr| arr.at.0 < 60_000));
    }

    #[test]
    fn bursts_add_arrivals_where_scheduled() {
        let calm = LoadProfile::flat(20.0, 120_000);
        let stormy = LoadProfile {
            bursts: vec![Burst {
                start_ms: 0,
                duration_ms: 60_000,
                multiplier: 4.0,
            }],
            ..calm.clone()
        };
        let base = ArrivalSchedule::open_loop(&users(5), &sites(), &calm, 11);
        let burst = ArrivalSchedule::open_loop(&users(5), &sites(), &stormy, 11);
        let in_window =
            |s: &ArrivalSchedule| s.arrivals().iter().filter(|a| a.at.0 < 60_000).count();
        assert!(
            in_window(&burst) > 2 * in_window(&base),
            "storm window should densify: {} vs {}",
            in_window(&burst),
            in_window(&base)
        );
    }

    #[test]
    fn from_sessions_replays_the_engine_workload() {
        let us = users(6);
        let config = SessionConfig {
            views_per_user_per_day: 10.0,
            days: 2,
        };
        let schedule = ArrivalSchedule::from_sessions(&us, &sites(), &config, 42);
        assert!(schedule.arrivals().windows(2).all(|w| w[0].at <= w[1].at));
        // Per user, the arrival multiset equals that user's own day-keyed
        // session stream — the exact events the engine simulates.
        for &user in &us {
            let own: Vec<_> = (0..config.days)
                .flat_map(|day| {
                    SessionSchedule::generate_day_for_user(user, &sites(), &config, 42, day)
                })
                .collect();
            let mut mine: Vec<_> = schedule
                .arrivals()
                .iter()
                .filter(|a| a.user == user)
                .map(|a| BrowsingEvent::PageView {
                    user: a.user,
                    site: a.site,
                    at: a.at,
                })
                .collect();
            mine.sort_by_key(|e| e.at());
            assert_eq!(mine, own);
        }
    }
}
