//! Provider-hosted landing pages.
//!
//! A Tread can carry its disclosure on an external landing page instead of
//! in the ad creative (§3: "or could be in one of the landing pages that
//! the links within the ad point to") — that variant passes platform
//! policy review, but opens the one leakage channel the paper analyzes:
//! the provider serves the page, so it can set a cookie and log which
//! cookie fetched which disclosure URL.
//!
//! [`LandingServer`] is that provider-side server, with the access log a
//! real web server would have. Experiment E4 inspects the log to show (a)
//! linkage succeeds for cookie-bearing visitors, and (b) the paper's
//! mitigations (clearing or blocking cookies) break the linkage.

use crate::cookies::CookieJar;
use adsim_types::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A landing page hosted by the transparency provider.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LandingPage {
    /// Full URL (also the lookup key).
    pub url: String,
    /// Page content — for landing-page Treads, the disclosure text.
    pub content: String,
    /// Whether the server sets a tracking cookie on visits.
    pub sets_cookie: bool,
}

/// One entry in the provider's access log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VisitRecord {
    /// The URL fetched.
    pub url: String,
    /// The cookie the browser presented (or that the server just set),
    /// if any. **No user id** — a web server never sees one.
    pub cookie: Option<String>,
    /// When.
    pub at: SimTime,
}

/// The provider's landing-page server.
#[derive(Debug, Clone, Default)]
pub struct LandingServer {
    /// The server's cookie domain.
    pub domain: String,
    pages: BTreeMap<String, LandingPage>,
    access_log: Vec<VisitRecord>,
    next_cookie: u64,
}

impl LandingServer {
    /// A server at `domain`.
    pub fn new(domain: impl Into<String>) -> Self {
        Self {
            domain: domain.into(),
            ..Self::default()
        }
    }

    /// Publishes a landing page.
    pub fn publish(&mut self, page: LandingPage) {
        self.pages.insert(page.url.clone(), page);
    }

    /// Number of published pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Serves a request for `url` from a browser with the given cookie
    /// jar. Returns the page content if the URL exists.
    ///
    /// Server-side effects mirror a real web server: the presented cookie
    /// (if the jar has one for our domain) is logged; if the page sets
    /// cookies and the browser has none yet, a fresh identifier is issued
    /// (and stored only if the jar's policy accepts it — the *logged*
    /// value is what the *next* request would present, so a blocked
    /// cookie never reappears).
    pub fn visit(&mut self, url: &str, jar: &mut CookieJar, at: SimTime) -> Option<String> {
        let page = self.pages.get(url)?;
        let presented = jar.get(&self.domain).map(str::to_string);
        let cookie = match presented {
            Some(c) => Some(c),
            None if page.sets_cookie => {
                self.next_cookie += 1;
                let value = format!("pvid-{}", self.next_cookie);
                if jar.set(self.domain.clone(), value.clone()) {
                    Some(value)
                } else {
                    // Browser rejected it: the server handed out a cookie
                    // but will never see it again; log this visit as
                    // anonymous.
                    None
                }
            }
            None => None,
        };
        self.access_log.push(VisitRecord {
            url: url.to_string(),
            cookie,
            at,
        });
        Some(page.content.clone())
    }

    /// The provider's raw access log.
    pub fn access_log(&self) -> &[VisitRecord] {
        &self.access_log
    }

    /// Provider-side linkage attempt: groups disclosure URLs by cookie.
    /// Each entry is one pseudonymous visitor and the set of URLs (hence
    /// disclosed targeting parameters) linked to them.
    pub fn linkage_by_cookie(&self) -> BTreeMap<String, Vec<String>> {
        let mut map: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for rec in &self.access_log {
            if let Some(cookie) = &rec.cookie {
                let urls = map.entry(cookie.clone()).or_default();
                if !urls.contains(&rec.url) {
                    urls.push(rec.url.clone());
                }
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cookies::CookiePolicy;

    fn server_with_pages() -> LandingServer {
        let mut s = LandingServer::new("provider.example");
        for (url, content) in [
            (
                "/reveal/net-worth-2m",
                "Your platform profile includes: Net worth $2M+",
            ),
            ("/reveal/renter", "Your platform profile includes: Renter"),
        ] {
            s.publish(LandingPage {
                url: url.into(),
                content: content.into(),
                sets_cookie: true,
            });
        }
        s
    }

    #[test]
    fn visits_serve_content_and_log() {
        let mut s = server_with_pages();
        let mut jar = CookieJar::default();
        let content = s
            .visit("/reveal/net-worth-2m", &mut jar, SimTime(1))
            .expect("page");
        assert!(content.contains("Net worth"));
        assert_eq!(s.access_log().len(), 1);
        assert_eq!(s.page_count(), 2);
        assert!(s.visit("/no-such-page", &mut jar, SimTime(2)).is_none());
    }

    #[test]
    fn cookie_links_multiple_disclosures() {
        // The leakage the paper warns about: one cookie-bearing visitor
        // fetching two disclosure URLs is linkable across them.
        let mut s = server_with_pages();
        let mut jar = CookieJar::default();
        s.visit("/reveal/net-worth-2m", &mut jar, SimTime(1));
        s.visit("/reveal/renter", &mut jar, SimTime(2));
        let linkage = s.linkage_by_cookie();
        assert_eq!(linkage.len(), 1);
        let urls = linkage.values().next().expect("one visitor");
        assert_eq!(urls.len(), 2);
    }

    #[test]
    fn blocking_cookies_breaks_linkage() {
        let mut s = server_with_pages();
        let mut jar = CookieJar::new(CookiePolicy::Block);
        s.visit("/reveal/net-worth-2m", &mut jar, SimTime(1));
        s.visit("/reveal/renter", &mut jar, SimTime(2));
        assert!(s.linkage_by_cookie().is_empty());
        // Both visits are logged, but anonymously.
        assert_eq!(s.access_log().len(), 2);
        assert!(s.access_log().iter().all(|r| r.cookie.is_none()));
    }

    #[test]
    fn clearing_cookies_splits_identity() {
        let mut s = server_with_pages();
        let mut jar = CookieJar::default();
        s.visit("/reveal/net-worth-2m", &mut jar, SimTime(1));
        jar.clear(); // the paper's mitigation between visits
        s.visit("/reveal/renter", &mut jar, SimTime(2));
        let linkage = s.linkage_by_cookie();
        // Two pseudonymous visitors, one URL each — unlinkable.
        assert_eq!(linkage.len(), 2);
        assert!(linkage.values().all(|urls| urls.len() == 1));
    }

    #[test]
    fn distinct_users_get_distinct_cookies() {
        let mut s = server_with_pages();
        let mut jar_a = CookieJar::default();
        let mut jar_b = CookieJar::default();
        s.visit("/reveal/net-worth-2m", &mut jar_a, SimTime(1));
        s.visit("/reveal/net-worth-2m", &mut jar_b, SimTime(2));
        assert_ne!(jar_a.get("provider.example"), jar_b.get("provider.example"));
        assert_eq!(s.linkage_by_cookie().len(), 2);
    }

    #[test]
    fn pages_without_cookies_log_anonymous_visits() {
        let mut s = LandingServer::new("provider.example");
        s.publish(LandingPage {
            url: "/plain".into(),
            content: "hello".into(),
            sets_cookie: false,
        });
        let mut jar = CookieJar::default();
        s.visit("/plain", &mut jar, SimTime(1));
        assert!(jar.is_empty());
        assert!(s.access_log()[0].cookie.is_none());
    }
}
