//! Publisher sites.
//!
//! A site is somewhere users browse. Each page view renders a number of ad
//! slots (each one an impression opportunity on the ad platform) and fires
//! any tracking pixels embedded on the site. The transparency provider's
//! opt-in website is just a [`Site`] with its pixel embedded and no ad
//! slots.

use adsim_types::{PixelId, SiteId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A publisher website.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Site {
    /// Registry-assigned id.
    pub id: SiteId,
    /// Display name / hostname.
    pub name: String,
    /// Ad slots rendered per page view (0 for sites that show no ads,
    /// e.g. the provider's opt-in page).
    pub ad_slots_per_view: u8,
    /// Tracking pixels embedded on the site; all fire on every page view.
    pub pixels: Vec<PixelId>,
}

/// The registry of browsable sites.
#[derive(Debug, Clone, Default)]
pub struct SiteRegistry {
    sites: BTreeMap<SiteId, Site>,
    next_id: u64,
}

impl SiteRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a site.
    pub fn create(&mut self, name: impl Into<String>, ad_slots_per_view: u8) -> SiteId {
        self.next_id += 1;
        let id = SiteId(self.next_id);
        self.sites.insert(
            id,
            Site {
                id,
                name: name.into(),
                ad_slots_per_view,
                pixels: Vec::new(),
            },
        );
        id
    }

    /// Embeds a tracking pixel on a site. Embedding twice is idempotent.
    pub fn embed_pixel(&mut self, site: SiteId, pixel: PixelId) -> bool {
        match self.sites.get_mut(&site) {
            Some(s) => {
                if !s.pixels.contains(&pixel) {
                    s.pixels.push(pixel);
                }
                true
            }
            None => false,
        }
    }

    /// Looks up a site.
    pub fn get(&self, id: SiteId) -> Option<&Site> {
        self.sites.get(&id)
    }

    /// All site ids, in order.
    pub fn ids(&self) -> Vec<SiteId> {
        self.sites.keys().copied().collect()
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True if no sites exist.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_embed() {
        let mut reg = SiteRegistry::new();
        let feed = reg.create("social-feed.example", 3);
        let optin = reg.create("know-your-data.example/optin", 0);
        assert_eq!(reg.len(), 2);
        assert!(reg.embed_pixel(optin, PixelId(1)));
        assert!(reg.embed_pixel(optin, PixelId(1))); // idempotent
        let site = reg.get(optin).expect("site");
        assert_eq!(site.pixels, vec![PixelId(1)]);
        assert_eq!(site.ad_slots_per_view, 0);
        assert_eq!(reg.get(feed).expect("site").ad_slots_per_view, 3);
    }

    #[test]
    fn embed_on_missing_site_fails() {
        let mut reg = SiteRegistry::new();
        assert!(!reg.embed_pixel(SiteId(7), PixelId(1)));
        assert!(reg.get(SiteId(7)).is_none());
        assert!(reg.is_empty());
    }

    #[test]
    fn ids_are_ordered() {
        let mut reg = SiteRegistry::new();
        let a = reg.create("a", 1);
        let b = reg.create("b", 1);
        assert_eq!(reg.ids(), vec![a, b]);
    }
}
