//! Web browsing simulation.
//!
//! The paper's mechanism touches the web outside the ad platform in three
//! places, all built here:
//!
//! * users **browse** (feed sessions), generating the impression
//!   opportunities the delivery engine auctions ([`site`], [`session`]);
//! * the transparency provider hosts **opt-in pages** carrying platform
//!   tracking pixels, and optionally **landing pages** that disclose
//!   targeting information off-platform ([`landing`]);
//! * users run a **browser extension** that saves and decodes the Treads
//!   they see ([`extension`]) — "users see these Treads while browsing
//!   normally (and can potentially save these using a browser extension)".
//!
//! [`cookies`] models the cookie jar that the paper's privacy analysis
//! (§3.1) worries about: a provider cookie set on a landing page can link a
//! user's visits to the targeting information disclosed there, unless the
//! user clears or disables cookies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cookies;
pub mod extension;
pub mod landing;
pub mod loadgen;
pub mod session;
pub mod site;

pub use cookies::{CookieJar, CookiePolicy};
pub use extension::{ClaimAudit, ExtensionLog, ObservedAd, ReceiptClaim};
pub use landing::{LandingPage, LandingServer, VisitRecord};
pub use loadgen::{Arrival, ArrivalSchedule, Burst, LoadProfile};
pub use session::{BrowsingEvent, SessionConfig, SessionSchedule};
pub use site::{Site, SiteRegistry};
