//! Cookie jars.
//!
//! The paper's privacy analysis (§3.1) notes the one leakage channel of
//! landing-page Treads: "the provider might also be able to associate
//! targeting information with users' cookies (that the provider places on
//! the landing pages)", and that "users can avert any possible leakage by
//! clearing out their cookies and disabling cookies before they start
//! receiving any Treads". [`CookieJar`] models exactly that: per-user
//! cookie storage with a policy switch, so experiment E4 can measure
//! linkage with cookies enabled, cleared, and disabled.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Whether the user's browser accepts cookies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CookiePolicy {
    /// Cookies are stored and replayed (the default browser posture).
    Accept,
    /// Cookies are rejected (the paper's mitigation).
    Block,
}

/// One user's cookie jar.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CookieJar {
    /// Acceptance policy.
    pub policy: CookiePolicy,
    /// Stored cookies: domain → value.
    cookies: BTreeMap<String, String>,
}

impl CookieJar {
    /// A jar with the given policy.
    pub fn new(policy: CookiePolicy) -> Self {
        Self {
            policy,
            cookies: BTreeMap::new(),
        }
    }

    /// Attempts to set a cookie for `domain`. Returns whether it was
    /// stored (false under [`CookiePolicy::Block`]).
    pub fn set(&mut self, domain: impl Into<String>, value: impl Into<String>) -> bool {
        match self.policy {
            CookiePolicy::Accept => {
                self.cookies.insert(domain.into(), value.into());
                true
            }
            CookiePolicy::Block => false,
        }
    }

    /// The cookie the browser would send to `domain`, if any.
    pub fn get(&self, domain: &str) -> Option<&str> {
        self.cookies.get(domain).map(String::as_str)
    }

    /// Clears all stored cookies (the paper's "clearing out their
    /// cookies" mitigation).
    pub fn clear(&mut self) {
        self.cookies.clear();
    }

    /// Number of stored cookies.
    pub fn len(&self) -> usize {
        self.cookies.len()
    }

    /// True if no cookies are stored.
    pub fn is_empty(&self) -> bool {
        self.cookies.is_empty()
    }
}

impl Default for CookieJar {
    fn default() -> Self {
        Self::new(CookiePolicy::Accept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_policy_stores_and_replays() {
        let mut jar = CookieJar::default();
        assert!(jar.set("provider.example", "cookie-abc"));
        assert_eq!(jar.get("provider.example"), Some("cookie-abc"));
        assert_eq!(jar.get("other.example"), None);
        assert_eq!(jar.len(), 1);
    }

    #[test]
    fn block_policy_rejects() {
        let mut jar = CookieJar::new(CookiePolicy::Block);
        assert!(!jar.set("provider.example", "cookie-abc"));
        assert!(jar.is_empty());
        assert_eq!(jar.get("provider.example"), None);
    }

    #[test]
    fn clear_removes_everything() {
        let mut jar = CookieJar::default();
        jar.set("a.example", "1");
        jar.set("b.example", "2");
        jar.clear();
        assert!(jar.is_empty());
        assert_eq!(jar.get("a.example"), None);
    }

    #[test]
    fn overwrite_same_domain() {
        let mut jar = CookieJar::default();
        jar.set("a.example", "old");
        jar.set("a.example", "new");
        assert_eq!(jar.get("a.example"), Some("new"));
        assert_eq!(jar.len(), 1);
    }
}
